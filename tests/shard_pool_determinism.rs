//! Determinism battery for the persistent shard worker pool.
//!
//! The pool is an *execution* detail: sharded phase A runs on long-lived
//! parked workers instead of per-tick spawned scoped threads, but the
//! record-then-commit order is unchanged, so every observable — the
//! bit-exact [`NetworkReport`] digest (latency histogram percentiles
//! included), [`punchsim::noc::PgCounters`], per-router power states —
//! must be byte-identical across shard counts, across the pooled and
//! spawn-per-tick executors, across mid-run reconfiguration (shard
//! resizes, executor toggles, pool teardown/re-create), and across pool
//! lifetimes. The battery also pins the pool-era thread-accounting
//! contract (creations bounded by the shard count, never per tick) and
//! the typed worker-panic error path (a panicking shard surfaces as
//! [`SimError::ShardPanic`], never a hang, and the pool survives it).

use punchsim::prelude::*;

/// Exact digest of a report: every field of [`NetworkReport`] (f64 Debug
/// formatting round-trips, so string equality is bit equality).
fn digest(r: &NetworkReport) -> String {
    format!("{r:?}")
}

#[derive(Debug, Clone, Copy)]
struct Variant {
    exec: ShardExec,
    shards: usize,
}

/// Serial single-shard ticking under the spawn executor: no worker
/// threads of either kind exist, so this is the reference everything
/// else must match bit for bit.
const REFERENCE: Variant = Variant {
    exec: ShardExec::Spawn,
    shards: 1,
};

fn build(cfg: &SimConfig, rate: f64, v: Variant) -> SyntheticSim {
    let mut sim = SyntheticSim::new(cfg.clone(), TrafficPattern::UniformRandom, rate);
    let net = sim.network_mut();
    net.set_shard_exec(v.exec);
    net.set_shards(v.shards).expect("valid shard count");
    sim
}

fn assert_same_state(label: &str, at: u64, a: &SyntheticSim, b: &SyntheticSim) {
    let (an, bn) = (a.network(), b.network());
    assert_eq!(an.cycle(), bn.cycle(), "{label}: clock diverged at {at}");
    for r in 0..an.topology().nodes() {
        let node = NodeId(r as u16);
        assert_eq!(
            an.power_state(node),
            bn.power_state(node),
            "{label} cycle {at}: power state of router {r} diverged"
        );
    }
    let (ar, br) = (an.report(), bn.report());
    assert_eq!(ar.pg, br.pg, "{label} cycle {at}: PgCounters diverged");
    assert_eq!(
        digest(&ar),
        digest(&br),
        "{label} cycle {at}: NetworkReport diverged"
    );
}

/// The full matrix: shards {1,2,4,7} x {pool, per-tick spawn} on mesh and
/// torus under both gating schemes, checkpointed against the serial
/// reference every 200 cycles.
#[test]
fn pooled_execution_is_bit_exact_across_the_matrix() {
    let substrates: [(&str, Substrate); 2] = [
        ("mesh8x8", Mesh::new(8, 8).into()),
        ("torus8x8", Substrate::Torus(Torus::new(8, 8))),
    ];
    let schemes = [SchemeKind::ConvOptPg, SchemeKind::PowerPunchFull];
    let variants: Vec<Variant> = [1usize, 2, 4, 7]
        .iter()
        .flat_map(|&shards| {
            [ShardExec::Pool, ShardExec::Spawn]
                .into_iter()
                .map(move |exec| Variant { exec, shards })
        })
        .collect();
    for (si, &(name, topo)) in substrates.iter().enumerate() {
        for (ki, &scheme) in schemes.iter().enumerate() {
            let mut cfg = SimConfig::with_scheme(scheme);
            cfg.noc.topology = topo;
            cfg.seed = 0xB007 + (si * 2 + ki) as u64;
            let rate = 0.02;
            let mut reference = build(&cfg, rate, REFERENCE);
            let mut subjects: Vec<(String, SyntheticSim)> = variants
                .iter()
                .map(|&v| (format!("{name}/{scheme:?} vs {v:?}"), build(&cfg, rate, v)))
                .collect();
            let (warmup, measure, chunk) = (200u64, 600u64, 200u64);
            reference.run(warmup).unwrap();
            reference.network_mut().reset_stats();
            for (label, s) in &mut subjects {
                s.run(warmup).unwrap();
                s.network_mut().reset_stats();
                assert_same_state(label, warmup, s, &reference);
            }
            let mut at = warmup;
            for _ in 0..(measure / chunk) {
                reference.run(chunk).unwrap();
                at += chunk;
                for (label, s) in &mut subjects {
                    s.run(chunk).unwrap();
                    assert_same_state(label, at, s, &reference);
                }
            }
        }
    }
}

/// Mid-run reconfiguration: shard resizes (pool re-created at the new
/// width) and executor toggles (pool torn down, then lazily re-created)
/// must be seamless — the run must land on the same digest as a serial
/// run that never reconfigured anything.
#[test]
fn midrun_resizes_and_exec_toggles_change_nothing() {
    let run = |reconfigure: bool| {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(8, 8).into();
        cfg.seed = 0x9E512E;
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::Transpose, 0.02);
        // Walk through shard widths (growing, shrinking, re-growing) and
        // flip the executor twice: Pool -> Spawn tears the pool down,
        // Spawn -> Pool re-creates it on the next sharded tick.
        let plan: [(usize, ShardExec); 6] = [
            (1, ShardExec::Pool),
            (2, ShardExec::Pool),
            (7, ShardExec::Pool),
            (4, ShardExec::Spawn),
            (4, ShardExec::Pool),
            (2, ShardExec::Pool),
        ];
        for &(shards, exec) in &plan {
            if reconfigure {
                let net = sim.network_mut();
                net.set_shard_exec(exec);
                net.set_shards(shards).unwrap();
            }
            sim.run(250).unwrap();
        }
        digest(&sim.report())
    };
    assert_eq!(run(false), run(true));
}

/// Pool-era thread accounting: a pooled run creates at most `shards - 1`
/// worker threads over its whole lifetime (versus one per shard per busy
/// tick for the spawn executor), and every pooled sharded tick is counted.
#[test]
fn pooled_runs_create_at_most_shards_threads() {
    let shards = 4usize;
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(8, 8).into();
    cfg.seed = 0x1007;
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.05);
    let net = sim.network_mut();
    net.set_shard_exec(ShardExec::Pool);
    net.set_shards(shards).unwrap();
    sim.run(2_000).unwrap();
    let (spawn_count, _spawn_nanos) = sim.network().spawn_stats();
    let (pool_ticks, _pool_wait) = sim.network().pool_stats();
    assert!(
        pool_ticks > 0,
        "busy run never took the pooled sharded path"
    );
    assert!(
        spawn_count <= shards as u64,
        "pooled run created {spawn_count} threads; \
         the pool must cap creations at shards - 1 = {}",
        shards - 1
    );
    // Resetting stats at a measured-window boundary leaves an
    // already-created pool invisible: the window reports zero creations.
    sim.network_mut().reset_stats();
    sim.run(1_000).unwrap();
    let (windowed, _) = sim.network().spawn_stats();
    assert_eq!(
        windowed, 0,
        "the pool was created during warm-up; the measured window must \
         report zero thread creations"
    );
    let (windowed_ticks, _) = sim.network().pool_stats();
    assert!(windowed_ticks > 0, "pooled ticks continue after the reset");
}

/// A panicking shard worker must surface as the typed
/// [`SimError::ShardPanic`] — not deadlock the barrier, not abort the
/// process — and the pool must survive to run later ticks.
#[test]
fn worker_panic_is_a_typed_error_and_the_pool_survives() {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(8, 8).into();
    cfg.seed = 0xDEAD;
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.05);
    let net = sim.network_mut();
    net.set_shard_exec(ShardExec::Pool);
    net.set_shards(4).unwrap();
    sim.run(100).unwrap();
    // Arm the test hook: the next pooled sharded tick runs its last
    // worker job as a deliberate panic. The worker's unwind is noisy on
    // stderr but must be *contained*.
    sim.network_mut().debug_panic_next_pooled_tick();
    let err = sim
        .run(200)
        .expect_err("the armed tick must fail, not complete");
    match err {
        SimError::ShardPanic { shard, message } => {
            assert!(shard >= 1, "shard 0 is the host thread, never a worker");
            assert!(
                message.contains("injected shard panic"),
                "panic payload must round-trip: {message}"
            );
        }
        other => panic!("expected ShardPanic, got {other:?}"),
    }
    // The barrier was fully drained: later ticks reuse the same pool and
    // dropping the simulation joins every worker without hanging.
    sim.run(200)
        .expect("the pool must survive a contained worker panic");
    let (pool_ticks, _) = sim.network().pool_stats();
    assert!(pool_ticks > 1, "post-panic ticks still run pooled");
}
