//! Cross-crate integration tests: the paper's qualitative results must hold
//! end-to-end (scheme orderings of Figures 7, 9, 10, 11) on synthetic
//! traffic, and basic timing invariants of the substrate must stay exact.

use punchsim::prelude::*;
use punchsim::traffic::InjectionConfig;

fn report(scheme: SchemeKind, rate: f64) -> NetworkReport {
    let mut cfg = SimConfig::with_scheme(scheme);
    cfg.noc.topology = Mesh::new(8, 8).into();
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, rate);
    sim.run_experiment(3_000, 12_000).unwrap()
}

#[test]
fn figure7_latency_ordering() {
    let no = report(SchemeKind::NoPg, 0.005);
    let conv = report(SchemeKind::ConvOptPg, 0.005);
    let pps = report(SchemeKind::PowerPunchSignal, 0.005);
    let ppf = report(SchemeKind::PowerPunchFull, 0.005);
    let (l0, l1, l2, l3) = (
        no.avg_packet_latency(),
        conv.avg_packet_latency(),
        pps.avg_packet_latency(),
        ppf.avg_packet_latency(),
    );
    // No-PG <= PP-PG < PP-Signal < ConvOpt (Figure 7).
    assert!(l0 <= l3 + 0.5, "No-PG {l0} vs PP-PG {l3}");
    assert!(l3 < l2, "PP-PG {l3} vs PP-Signal {l2}");
    assert!(l2 < l1, "PP-Signal {l2} vs ConvOpt {l1}");
    // ConvOpt suffers a large penalty; PowerPunch-PG a tiny one.
    assert!(l1 / l0 > 1.3, "ConvOpt penalty only {}", l1 / l0 - 1.0);
    assert!(l3 / l0 < 1.1, "PP-PG penalty {}", l3 / l0 - 1.0);
}

#[test]
fn figure9_and_10_blocking_orderings() {
    let conv = report(SchemeKind::ConvOptPg, 0.005);
    let pps = report(SchemeKind::PowerPunchSignal, 0.005);
    let ppf = report(SchemeKind::PowerPunchFull, 0.005);
    // Fig 9: encountered powered-off routers drop dramatically.
    assert!(conv.avg_pg_encounters() > 2.0);
    assert!(pps.avg_pg_encounters() < conv.avg_pg_encounters() / 2.0);
    assert!(ppf.avg_pg_encounters() <= pps.avg_pg_encounters());
    // Fig 10: wakeup-wait cycles drop even more for PP-PG (NI slack).
    assert!(conv.avg_wakeup_wait() > 10.0);
    assert!(pps.avg_wakeup_wait() < conv.avg_wakeup_wait() / 2.0);
    assert!(ppf.avg_wakeup_wait() < pps.avg_wakeup_wait());
}

#[test]
fn figure11_energy_ordering() {
    let pm = PowerModel::default_45nm();
    let no = report(SchemeKind::NoPg, 0.005);
    let conv = report(SchemeKind::ConvOptPg, 0.005);
    let ppf = report(SchemeKind::PowerPunchFull, 0.005);
    assert_eq!(pm.static_savings(&no), 0.0);
    // Both gating schemes save the majority of static energy at low load.
    assert!(pm.static_savings(&conv) > 0.5);
    assert!(pm.static_savings(&ppf) > 0.5);
    // Dynamic energy is similar across schemes (same traffic).
    let d0 = pm.breakdown(&no).dynamic_pj;
    let d1 = pm.breakdown(&ppf).dynamic_pj;
    assert!((d1 / d0 - 1.0).abs() < 0.2, "dynamic ratio {}", d1 / d0);
}

#[test]
fn punch_signals_flow_only_under_punch_schemes() {
    let conv = report(SchemeKind::ConvOptPg, 0.01);
    let ppf = report(SchemeKind::PowerPunchFull, 0.01);
    assert_eq!(conv.pg.punch_hops, 0);
    assert!(ppf.pg.punch_hops > 1_000);
    // Conventional gating leans on the WU wire instead.
    assert!(conv.pg.wu_assertions > 0);
}

#[test]
fn saturation_throughput_unaffected_by_power_punch() {
    // §6.4: PowerPunch-PG reaches the same maximum throughput as No-PG.
    let run = |scheme| {
        let mut cfg = SimConfig::with_scheme(scheme);
        cfg.noc.topology = Mesh::new(4, 4).into();
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.6);
        sim.run_experiment(3_000, 8_000).unwrap().throughput()
    };
    let t_no = run(SchemeKind::NoPg);
    let t_pp = run(SchemeKind::PowerPunchFull);
    assert!(
        (t_pp / t_no - 1.0).abs() < 0.08,
        "saturation throughput No-PG {t_no} vs PP {t_pp}"
    );
}

#[test]
fn slack2_fraction_controls_full_scheme_advantage() {
    // With no slack-2 and no slack-1 advantage the two punch schemes
    // should converge; with full slack, PP-PG must win on wait cycles.
    let run = |scheme, slack_frac: f64| {
        let mut cfg = SimConfig::with_scheme(scheme);
        cfg.noc.topology = Mesh::new(8, 8).into();
        let mut inj = InjectionConfig::at_rate(0.004);
        inj.slack2_fraction = slack_frac;
        let mut sim = SyntheticSim::with_injection(cfg, TrafficPattern::UniformRandom, inj);
        sim.run_experiment(3_000, 10_000).unwrap()
    };
    let full = run(SchemeKind::PowerPunchFull, 1.0);
    let signal = run(SchemeKind::PowerPunchSignal, 1.0);
    assert!(full.avg_wakeup_wait() < signal.avg_wakeup_wait());
}

#[test]
fn four_stage_router_still_orders_schemes() {
    let run = |scheme| {
        let mut cfg = SimConfig::with_scheme(scheme);
        cfg.noc.topology = Mesh::new(8, 8).into();
        cfg.noc.router_stages = 4;
        cfg.power.wakeup_latency = 10;
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
        sim.run_experiment(2_000, 8_000).unwrap()
    };
    let no = run(SchemeKind::NoPg);
    let conv = run(SchemeKind::ConvOptPg);
    let ppf = run(SchemeKind::PowerPunchFull);
    assert!(conv.avg_packet_latency() > ppf.avg_packet_latency());
    assert!(ppf.avg_packet_latency() < no.avg_packet_latency() * 1.12);
}

#[test]
fn all_patterns_deliver_under_power_punch() {
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Shuffle,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot(NodeId(27)),
    ] {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(8, 8).into();
        let mut sim = SyntheticSim::new(cfg, pattern, 0.01);
        let r = sim.run_experiment(1_000, 4_000).unwrap();
        assert!(
            r.stats.packets_delivered > 100,
            "{pattern} delivered too few"
        );
    }
}
