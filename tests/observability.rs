//! End-to-end observability: the flight recorder makes failures *legible*.
//!
//! `tests/failure_injection.rs` proves the safety nets keep packets alive;
//! this file proves that when the nets are cut, the wreckage is
//! diagnosable. A stuck-off router with the escalation path disabled must
//! wedge into a [`SimError::Stall`] whose report carries the flight
//! recorder's tail — and that tail must show the missed wakeups (`WU
//! asserted` immediately answered by `fault wu-dropped`), which is exactly
//! the evidence a human needs to find the dead router. The companion tests
//! pin that observation never perturbs simulation results.

use punchsim::core::build_power_manager;
use punchsim::noc::{Message, MsgClass, Network, TickMode};
use punchsim::prelude::{RingSink, Sampler};
use punchsim::types::{
    FaultConfig, Mesh, NodeId, SchemeKind, SimConfig, SimError, StuckEpoch, TraceConfig, VnetId,
};

/// A PowerPunch-PG 4x4 config with router R5 stuck off for effectively
/// the whole run.
fn stuck_router_config() -> SimConfig {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(4, 4).into();
    cfg.faults = FaultConfig {
        seed: 3,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(5),
            start: 10,
            duration: 1_000_000,
        }],
        ..FaultConfig::default()
    };
    cfg
}

/// Acceptance (ISSUE 3): stuck-off router → watchdog stall → the report's
/// event dump shows the missed wakeups.
///
/// With `escalate_after = 0` the watchdog cannot force-wake R5, so a
/// packet routed through it blocks forever and the stall detector fires.
/// The interesting assertion is not the stall itself but its *narrative*:
/// the `last_events` tail must contain the WU assertions toward R5 and the
/// injected `wu-dropped` faults that swallowed them.
#[test]
fn stuck_router_stall_report_dumps_missed_wakeups() {
    let mut cfg = stuck_router_config();
    cfg.noc.watchdog.escalate_after = 0; // cut the safety net
    cfg.noc.watchdog.stall_threshold = 2_000; // fail fast
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    net.set_sink(Box::new(RingSink::new(4096)));

    // Idle long enough for the routers to gate off and the epoch to arm.
    for _ in 0..100 {
        net.tick().expect("idle network must not stall");
    }
    // One packet whose XY route crosses the stuck router: R4 → R5 → R6.
    net.send(Message {
        src: NodeId(4),
        dst: NodeId(6),
        vnet: VnetId(0),
        class: MsgClass::Control,
        payload: 0,
        gen_cycle: 0,
    })
    .expect("in-mesh send");

    let mut guard = 0u32;
    let err = loop {
        match net.tick() {
            Ok(()) => {
                guard += 1;
                assert!(guard < 50_000, "stall watchdog never fired");
            }
            Err(e) => break e,
        }
    };
    let SimError::Stall(report) = err else {
        panic!("expected a stall report, got {err:?}");
    };
    assert!(
        !report.last_events.is_empty(),
        "flight recorder tail missing from the stall report"
    );
    assert!(report.last_events.len() <= 32);
    let text = report.last_events.join("\n");
    assert!(
        text.contains("WU asserted toward R5"),
        "dump should show the blocked flit asking R5 to wake:\n{text}"
    );
    assert!(
        text.contains("fault wu-dropped at R5"),
        "dump should show the injector swallowing those wakeups:\n{text}"
    );
    // The rendered report carries the same evidence for log scrapers.
    let rendered = format!("{report}");
    assert!(rendered.contains("wu-dropped"), "{rendered}");
}

/// With the escalation path left at its default, the same stuck router is
/// force-woken instead of stalling — and the trace records the whole arc:
/// the epoch arming, the swallowed wakeups, then the watchdog's
/// force-wake.
#[test]
fn escalated_recovery_is_visible_in_the_trace() {
    let cfg = stuck_router_config();
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    net.set_sink(Box::new(RingSink::new(8192)));

    for _ in 0..100 {
        net.tick().expect("no stall expected");
    }
    net.send(Message {
        src: NodeId(4),
        dst: NodeId(6),
        vnet: VnetId(0),
        class: MsgClass::Control,
        payload: 0,
        gen_cycle: 0,
    })
    .expect("in-mesh send");
    let mut guard = 0u32;
    while net.in_flight() > 0 {
        net.tick().expect("escalation must prevent the stall");
        guard += 1;
        assert!(guard < 50_000, "network failed to drain");
    }
    assert_eq!(net.take_delivered(NodeId(6)).len(), 1);

    let events = net.take_sink().expect("sink was attached").snapshot();
    let text: Vec<String> = events.iter().map(ToString::to_string).collect();
    let text = text.join("\n");
    assert!(text.contains("fault stuck-epoch at R5"), "{text}");
    assert!(text.contains("fault wu-dropped at R5"), "{text}");
    assert!(text.contains("watchdog force-wakes R5"), "{text}");
}

/// Observation is read-only: enabling the flight recorder must not change
/// a single delivered packet or latency bit.
#[test]
fn tracing_does_not_perturb_results() {
    use punchsim::prelude::{SyntheticSim, TrafficPattern};

    let run = |traced: bool| {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(4, 4).into();
        if traced {
            cfg.trace = TraceConfig::enabled();
        }
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::Transpose, 0.05);
        sim.run_experiment(500, 2_000).expect("run succeeds")
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(
        plain.stats.packets_delivered,
        traced.stats.packets_delivered
    );
    assert_eq!(
        plain.stats.net_latency.mean().to_bits(),
        traced.stats.net_latency.mean().to_bits(),
        "latency distribution diverged under tracing"
    );
    assert_eq!(plain.pg, traced.pg, "power-gating counters diverged");
}

/// Builds a mostly idle PowerPunch-PG network carrying one early burst —
/// quiescent stretches long enough that fast-forward jumps span many
/// sampling intervals.
fn mostly_idle_network(mode: TickMode) -> Network {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(4, 4).into();
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    net.set_tick_mode(mode);
    for (src, dst) in [(0u16, 15u16), (5, 10), (12, 3)] {
        net.send(Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class: MsgClass::Control,
            payload: 0,
            gen_cycle: 0,
        })
        .expect("in-mesh send");
    }
    net
}

/// Skip-ahead must not smear the time axis: `run_hooked` caps every jump
/// at the sampling boundary, so interval rows carry exactly the same
/// `[start, end]` timestamps — and the same deltas — as a cycle-by-cycle
/// run, even when the jump spans many whole intervals.
#[test]
fn sample_timestamps_are_exact_across_fast_forward_jumps() {
    let rows = |mode: TickMode| {
        let mut net = mostly_idle_network(mode);
        let mut sampler = Sampler::new(16);
        sampler.observe(net.obs_sample());
        net.run_hooked(2_500, 100, &mut |n| sampler.observe(n.obs_sample()))
            .expect("idle network must not stall");
        sampler.into_rows()
    };
    let fast = rows(TickMode::Fast);
    let naive = rows(TickMode::Naive);
    assert_eq!(fast.len(), 25, "one row per 100-cycle interval");
    for (i, row) in fast.iter().enumerate() {
        assert_eq!(row.start, i as u64 * 100, "interval {i} start");
        assert_eq!(row.end, (i as u64 + 1) * 100, "interval {i} end");
    }
    assert_eq!(fast, naive, "interval series must be mode-independent");
}

/// The watchdog's stall detector must not fire across a skipped stretch:
/// a quiescent network is *making no progress by design*, and the jump
/// accounts for that. A tiny threshold plus a multi-million-cycle idle
/// run would stall instantly if fast-forward left `last_progress` behind.
#[test]
fn watchdog_sees_no_phantom_stall_across_jumps() {
    let mut cfg = SimConfig::with_scheme(SchemeKind::ConvOptPg);
    cfg.noc.topology = Mesh::new(4, 4).into();
    cfg.noc.watchdog.stall_threshold = 50; // far below the jump spans
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    net.set_tick_mode(TickMode::Fast);
    net.run(2_000_000)
        .expect("idle quiescence is not a stall, even across jumps");
    assert_eq!(net.cycle(), 2_000_000);
    // Real work right after the jump still delivers — and a real stall
    // right after a jump is still caught (the detector stays armed).
    net.send(Message {
        src: NodeId(0),
        dst: NodeId(15),
        vnet: VnetId(0),
        class: MsgClass::Control,
        payload: 0,
        gen_cycle: net.cycle(),
    })
    .expect("in-mesh send");
    net.run(500).expect("post-jump traffic must flow");
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.take_delivered(NodeId(15)).len(), 1);
}
