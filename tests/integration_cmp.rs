//! Full-system integration: the MESI CMP substrate must stay coherent and
//! make forward progress under every power-gating scheme, and execution
//! time must respond to the scheme the way Figure 8 shows.

use punchsim::prelude::*;
use punchsim::types::Mesh;

fn small(bench: Benchmark, scheme: SchemeKind) -> CmpConfig {
    let mut cfg = CmpConfig::new(bench, scheme);
    cfg.sim.noc.topology = Mesh::new(4, 4).into();
    cfg.instr_per_core = 8_000;
    cfg.warmup_instr = 2_000;
    cfg.max_cycles = 3_000_000;
    cfg
}

#[test]
fn coherence_invariant_holds_throughout_a_contended_run() {
    // Canneal-like sharing with a hot set maximizes invalidation races.
    let mut cfg = small(Benchmark::X264, SchemeKind::PowerPunchFull);
    cfg.instr_per_core = 6_000;
    let mut sim = CmpSim::new(cfg);
    for step in 0..400 {
        for _ in 0..200 {
            sim.tick();
        }
        let v = sim.coherence_violations();
        assert!(v.is_empty(), "step {step}: {v:?}");
    }
}

#[test]
fn figure8_execution_time_ordering() {
    let no = CmpSim::new(small(Benchmark::Dedup, SchemeKind::NoPg)).run();
    let conv = CmpSim::new(small(Benchmark::Dedup, SchemeKind::ConvOptPg)).run();
    let ppf = CmpSim::new(small(Benchmark::Dedup, SchemeKind::PowerPunchFull)).run();
    assert!(no.completed && conv.completed && ppf.completed);
    assert!(
        conv.exec_cycles > no.exec_cycles,
        "ConvOpt {} vs No-PG {}",
        conv.exec_cycles,
        no.exec_cycles
    );
    assert!(
        ppf.exec_cycles < conv.exec_cycles,
        "PP-PG {} vs ConvOpt {}",
        ppf.exec_cycles,
        conv.exec_cycles
    );
    // PP-PG execution penalty stays small (paper: 0.4% on the full
    // 64-core system; this shrunken 16-core run is noisier because a
    // single delayed hot-block transaction shifts the critical core).
    let pen = ppf.exec_cycles as f64 / no.exec_cycles as f64 - 1.0;
    assert!(pen < 0.08, "PP-PG execution penalty {pen}");
}

#[test]
fn every_benchmark_completes_under_power_punch() {
    for b in Benchmark::ALL {
        let r = CmpSim::new(small(b, SchemeKind::PowerPunchFull)).run();
        assert!(r.completed, "{b} did not complete");
        assert!(
            r.net.stats.packets_delivered > 0,
            "{b} generated no traffic"
        );
    }
}

#[test]
fn protocol_vnet_separation_is_respected() {
    // All three virtual networks must carry traffic in a sharing workload
    // (requests, forwards/invalidations, responses).
    let mut sim = CmpSim::new(small(Benchmark::Canneal, SchemeKind::NoPg));
    for _ in 0..100_000 {
        sim.tick();
    }
    let r = sim.network().report();
    assert!(r.stats.packets_injected > 500);
}

#[test]
fn deterministic_full_system() {
    let run = || {
        let r = CmpSim::new(small(Benchmark::Ferret, SchemeKind::PowerPunchSignal)).run();
        (
            r.exec_cycles,
            r.net.stats.packets_delivered,
            r.l1_miss_rate.to_bits(),
        )
    };
    assert_eq!(run(), run());
}
