//! Differential conformance suite for the SoA busy-tick kernel and the
//! sharded two-phase tick.
//!
//! Reference: [`BusyKernel::Struct`] + [`TickMode::Naive`] — the
//! object-at-a-time kernel ticking literally every cycle. Every case runs
//! the same experiment under the reference and under the SoA word-sweep
//! kernel at several shard counts (with and without quiescence
//! fast-forward), comparing the clock, per-router power states, PG
//! counters and the full bit-exact [`NetworkReport`] at every checkpoint.
//! Kernel choice and shard count are execution details; any observable
//! divergence is a bug.

use punchsim::prelude::*;
use punchsim::traffic::InjectionConfig;

/// Exact digest of a report: every field of [`NetworkReport`] (f64 Debug
/// formatting round-trips, so string equality is bit equality).
fn digest(r: &NetworkReport) -> String {
    format!("{r:?}")
}

#[derive(Debug, Clone, Copy)]
struct Variant {
    mode: TickMode,
    kernel: BusyKernel,
    shards: usize,
}

const REFERENCE: Variant = Variant {
    mode: TickMode::Naive,
    kernel: BusyKernel::Struct,
    shards: 1,
};

fn build(
    cfg: &SimConfig,
    pattern: TrafficPattern,
    inj: &InjectionConfig,
    v: Variant,
) -> SyntheticSim {
    let mut sim = SyntheticSim::with_injection(cfg.clone(), pattern, inj.clone());
    let net = sim.network_mut();
    net.set_tick_mode(v.mode);
    net.set_busy_kernel(v.kernel);
    net.set_shards(v.shards).expect("valid shard count");
    sim
}

fn assert_same_state(label: &str, at: u64, a: &SyntheticSim, b: &SyntheticSim) {
    let (an, bn) = (a.network(), b.network());
    assert_eq!(an.cycle(), bn.cycle(), "{label}: clock diverged at {at}");
    assert_eq!(
        an.in_flight(),
        bn.in_flight(),
        "{label} cycle {at}: in-flight count diverged"
    );
    for r in 0..an.topology().nodes() {
        let node = NodeId(r as u16);
        assert_eq!(
            an.power_state(node),
            bn.power_state(node),
            "{label} cycle {at}: power state of router {r} diverged"
        );
    }
    let (ar, br) = (an.report(), bn.report());
    assert_eq!(ar.pg, br.pg, "{label} cycle {at}: PgCounters diverged");
    assert_eq!(
        digest(&ar),
        digest(&br),
        "{label} cycle {at}: NetworkReport diverged"
    );
}

/// Mixed-load mesh/torus/cmesh cases: every SoA variant must track the
/// struct+naive reference in lock-step, checkpoint by checkpoint.
#[test]
fn soa_kernel_is_observably_identical_to_struct_reference() {
    let substrates: [(&str, Substrate, RoutingKind); 3] = [
        ("mesh8x8", Mesh::new(8, 8).into(), RoutingKind::Xy),
        (
            "torus8x8",
            Substrate::Torus(Torus::new(8, 8)),
            RoutingKind::Xy,
        ),
        (
            "cmesh4x4c4",
            Substrate::CMesh(CMesh::new(4, 4, 4)),
            RoutingKind::Xy,
        ),
    ];
    let schemes = [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchFull,
    ];
    let variants = [
        Variant {
            mode: TickMode::Naive,
            kernel: BusyKernel::Soa,
            shards: 1,
        },
        Variant {
            mode: TickMode::Fast,
            kernel: BusyKernel::Soa,
            shards: 1,
        },
        Variant {
            mode: TickMode::Fast,
            kernel: BusyKernel::Soa,
            shards: 3,
        },
        Variant {
            mode: TickMode::Fast,
            kernel: BusyKernel::Soa,
            shards: 4,
        },
        Variant {
            mode: TickMode::Fast,
            kernel: BusyKernel::Struct,
            shards: 1,
        },
    ];
    for (i, &(name, topo, routing)) in substrates.iter().enumerate() {
        let scheme = schemes[i % schemes.len()];
        let mut cfg = SimConfig::with_scheme(scheme);
        cfg.noc.topology = topo;
        cfg.noc.routing = routing;
        cfg.seed = 0x50A0 + i as u64;
        // Mixed load: moderate rate with bursts, so the network oscillates
        // between busy sweeps and quiescent gaps (both kernels exercised).
        let mut inj = InjectionConfig::at_rate(0.02);
        inj.burstiness = 0.5;
        inj.slack2_cycles = 6;
        let pattern = TrafficPattern::UniformRandom;
        let mut reference = build(&cfg, pattern, &inj, REFERENCE);
        let mut subjects: Vec<(String, SyntheticSim)> = variants
            .iter()
            .map(|&v| {
                (
                    format!("{name}/{scheme:?} vs {v:?}"),
                    build(&cfg, pattern, &inj, v),
                )
            })
            .collect();
        let (warmup, measure, chunk) = (200u64, 800u64, 100u64);
        reference.run(warmup).unwrap();
        reference.network_mut().reset_stats();
        for (label, s) in &mut subjects {
            s.run(warmup).unwrap();
            s.network_mut().reset_stats();
            assert_same_state(label, warmup, s, &reference);
        }
        let mut at = warmup;
        for _ in 0..(measure / chunk) {
            reference.run(chunk).unwrap();
            at += chunk;
            for (label, s) in &mut subjects {
                s.run(chunk).unwrap();
                assert_same_state(label, at, s, &reference);
            }
        }
    }
}

/// Switching kernels mid-run must be seamless: the struct path leaves the
/// bit index stale, and the next SoA tick must rebuild it and continue
/// exactly where a pure-SoA run would be.
#[test]
fn kernel_switch_mid_run_rebuilds_the_bit_index_exactly() {
    let run = |switchy: bool| {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(8, 8).into();
        cfg.seed = 0x5111;
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::Transpose, 0.02);
        sim.network_mut().set_tick_mode(TickMode::Naive);
        sim.network_mut().set_busy_kernel(BusyKernel::Soa);
        for phase in 0..6u64 {
            if switchy {
                let k = if phase % 2 == 0 {
                    BusyKernel::Struct
                } else {
                    BusyKernel::Soa
                };
                sim.network_mut().set_busy_kernel(k);
            }
            sim.run(300).unwrap();
        }
        digest(&sim.report())
    };
    assert_eq!(run(false), run(true));
}

/// Shard-count validation is a typed `ConfigError`, not a panic.
#[test]
fn shard_count_validation_returns_typed_errors() {
    let cfg = SimConfig::with_scheme(SchemeKind::NoPg);
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.0);
    let net = sim.network_mut();
    // Default 8x8 mesh: 8 router rows.
    assert!(matches!(net.set_shards(0), Err(ConfigError::ZeroShards)));
    assert!(matches!(
        net.set_shards(9),
        Err(ConfigError::ShardsExceedRows { shards: 9, rows: 8 })
    ));
    // The error carries a human-readable message for the CLI.
    let msg = ConfigError::ShardsExceedRows { shards: 9, rows: 8 }.to_string();
    assert!(msg.contains('9') && msg.contains('8'), "{msg}");
    // Valid counts stick; invalid attempts leave the old value in place.
    net.set_shards(8).unwrap();
    assert_eq!(net.shards(), 8);
    net.set_shards(10).unwrap_err();
    assert_eq!(net.shards(), 8);
    // The network still ticks normally after rejected reconfigurations.
    sim.run(100).unwrap();
}
