//! Failure injection: Power Punch's punch signals are an *optimization*;
//! the conventional WU handshake (Figure 2) remains as the correctness
//! safety net, and the watchdog's escalation path backstops even a wedged
//! handshake. These tests configure the library [`FaultInjector`] (via
//! `SimConfig::faults`) to drop, corrupt and delay power-gating sideband
//! events — or wedge a router outright — and assert that no packet is ever
//! lost and the network always drains; only performance may degrade.

use punchsim::core::build_power_manager;
use punchsim::noc::{Message, MsgClass, Network, PgCounters};
use punchsim::types::{
    FaultConfig, Mesh, NodeId, RoutingKind, SchemeKind, SimConfig, SimError, SimRng, StallReport,
    StuckEpoch, Substrate, Torus, VnetId, WatchdogConfig,
};

/// Builds a faulted PowerPunch-PG config on `mesh` and runs a light random
/// workload through the real network + fault-injector stack, then drains.
/// Returns (sent, delivered, wakeup-wait mean, final PG counters).
fn run_faulted(mesh: Mesh, faults: FaultConfig) -> (usize, usize, f64, PgCounters) {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = mesh.into();
    cfg.faults = faults;
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    let n = mesh.nodes() as u16;
    let mut rng = SimRng::seed_from_u64(7);
    let mut sent = 0usize;
    for round in 0..600u64 {
        if round % 10 == 0 {
            let src = NodeId(rng.random_range(0..n));
            let dst = NodeId(rng.random_range(0..n));
            net.send(Message {
                src,
                dst,
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            })
            .expect("in-mesh send");
            sent += 1;
        }
        net.tick()
            .expect("watchdog must stay quiet under punch faults");
    }
    let mut guard = 0;
    while net.in_flight() > 0 {
        net.tick().expect("watchdog must stay quiet while draining");
        guard += 1;
        assert!(guard < 100_000, "network failed to drain");
    }
    let delivered: usize = (0..n).map(|i| net.take_delivered(NodeId(i)).len()).sum();
    let report = net.report();
    (
        sent,
        delivered,
        report.stats.wakeup_wait.mean(),
        report.pg.clone(),
    )
}

fn drop_faults(prob: f64) -> FaultConfig {
    FaultConfig {
        seed: 99,
        drop_punch_ppm: FaultConfig::ppm(prob),
        ..FaultConfig::default()
    }
}

/// Acceptance: drop probability 1.0 *and* corruption on an 8x8
/// PowerPunchFull mesh — every packet still delivers and the watchdog
/// never files a stall report.
#[test]
fn losing_every_punch_event_degrades_but_never_deadlocks() {
    let mesh = Mesh::new(8, 8);
    let chaos = FaultConfig {
        seed: 99,
        drop_punch_ppm: FaultConfig::ppm(1.0),
        corrupt_punch_ppm: FaultConfig::ppm(0.5),
        max_wakeup_jitter: 3,
        ..FaultConfig::default()
    };
    let (sent, delivered, wait_chaos, pg) = run_faulted(mesh, chaos);
    assert_eq!(delivered, sent, "all packets delivered without any punches");
    assert!(pg.faults_injected > 0, "the injector actually fired");

    let (sent, delivered, wait_healthy, _) = run_faulted(mesh, FaultConfig::default());
    assert_eq!(delivered, sent);
    // Dropping punches turns the scheme into blocked-wakeup gating: the
    // waiting time rises, demonstrating the punches were doing real work.
    assert!(
        wait_chaos > wait_healthy,
        "dropped-punch wait {wait_chaos} vs healthy {wait_healthy}"
    );
}

#[test]
fn partial_event_loss_is_between_the_extremes() {
    let mesh = Mesh::new(4, 4);
    let (_, _, w0, _) = run_faulted(mesh, FaultConfig::default());
    let (sent, d, w50, _) = run_faulted(mesh, drop_faults(0.5));
    let (_, _, w100, _) = run_faulted(mesh, drop_faults(1.0));
    assert_eq!(d, sent);
    assert!(w0 <= w50 + 1e-9 && w50 <= w100 + 1e-9, "{w0} {w50} {w100}");
}

/// Corrupted codewords decode to *different valid* target sets: the wrong
/// routers wake up (wasting energy), but delivery is untouched because the
/// blocked flit's own WU handshake still reaches the right router.
#[test]
fn corrupted_punches_waste_energy_but_lose_nothing() {
    let faults = FaultConfig {
        seed: 5,
        corrupt_punch_ppm: FaultConfig::ppm(1.0),
        ..FaultConfig::default()
    };
    let (sent, delivered, _, pg) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(delivered, sent);
    assert!(pg.faults_injected > 0, "corruptions were injected");
}

/// Acceptance: a stuck-off router epoch wedges the WU handshake entirely;
/// the watchdog's escalation path force-wakes the router, the escalation
/// counters tick, and every packet still delivers.
#[test]
fn stuck_off_router_is_escalated_and_all_packets_deliver() {
    let faults = FaultConfig {
        seed: 3,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(5),
            start: 50,
            duration: 5_000,
        }],
        ..FaultConfig::default()
    };
    let (sent, delivered, _, pg) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(delivered, sent, "escalation recovered every packet");
    assert!(
        pg.escalations > 0,
        "the watchdog force-woke the stuck router (escalations = {})",
        pg.escalations
    );
    assert!(pg.faults_injected > 0, "the stuck epoch swallowed WUs");
}

/// Runs a workload on an arbitrary substrate + routing with the watchdog's
/// escalation path initially *disabled*, so a wedged sideband produces a
/// harvestable [`StallReport`] instead of a silent recovery. After the
/// first report, escalation is re-enabled and the run must drain fully.
/// Returns (sent, delivered, first stall report, final PG counters).
fn run_wedged(
    topo: Substrate,
    routing: RoutingKind,
    faults: FaultConfig,
) -> (usize, usize, Box<StallReport>, PgCounters) {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = topo;
    cfg.noc.routing = routing;
    cfg.noc.watchdog = WatchdogConfig {
        stall_threshold: 200,
        invariant_checks: true,
        escalate_after: 0,
    };
    cfg.faults = faults;
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    let n = topo.nodes() as u16;
    let mut rng = SimRng::seed_from_u64(11);
    let mut sent = 0usize;
    let mut stall: Option<Box<StallReport>> = None;
    let mut round = 0u64;
    while round < 1_200 || net.in_flight() > 0 {
        if round < 1_200 && round % 40 == 0 {
            let src = NodeId(rng.random_range(0..n));
            let dst = NodeId(rng.random_range(0..n));
            net.send(Message {
                src,
                dst,
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            })
            .expect("in-substrate send");
            sent += 1;
        }
        match net.tick() {
            Ok(()) => {}
            Err(SimError::Stall(report)) => {
                assert!(
                    stall.is_none(),
                    "a second stall after escalation was re-enabled"
                );
                stall = Some(report);
                // The safety net goes back on: from here the watchdog must
                // recover the run without losing a single flit.
                net.set_watchdog(WatchdogConfig {
                    stall_threshold: 200,
                    invariant_checks: true,
                    escalate_after: 32,
                });
            }
            Err(e) => panic!("unexpected simulation error: {e}"),
        }
        round += 1;
        assert!(round < 100_000, "network failed to drain");
    }
    let delivered: usize = (0..n).map(|i| net.take_delivered(NodeId(i)).len()).sum();
    let stall = stall.expect("the wedged sideband must produce a stall report");
    (sent, delivered, stall, net.report().pg.clone())
}

/// Acceptance (torus + YX): with every punch *and* every WU assertion
/// dropped, the sideband is fully wedged — the watchdog files a populated
/// stall report, and once escalation is re-enabled every flit still
/// delivers. Zero lost flits on a non-default substrate.
#[test]
fn torus_yx_wu_loss_stalls_then_recovers_losslessly() {
    let faults = FaultConfig {
        seed: 21,
        drop_punch_ppm: FaultConfig::ppm(1.0),
        drop_wu_ppm: FaultConfig::ppm(1.0),
        ..FaultConfig::default()
    };
    let topo = Substrate::Torus(Torus::try_new(4, 4).expect("4x4 torus"));
    let (sent, delivered, stall, pg) = run_wedged(topo, RoutingKind::Yx, faults);
    assert_eq!(delivered, sent, "zero lost flits after recovery");
    assert!(stall.stalled_for >= 200, "threshold honoured");
    assert!(
        stall.in_flight_packets > 0,
        "report names the stuck traffic"
    );
    assert!(
        stall.oldest_blocked.is_some(),
        "report identifies the oldest blocked packet"
    );
    assert!(
        !stall.off_routers.is_empty(),
        "report lists the sleeping routers"
    );
    assert!(pg.escalations > 0, "recovery went through force-wake");
}

/// Acceptance (torus + YX): a long stuck-off epoch swallows the WU
/// handshake of one router outright. Same contract: populated stall
/// report, then lossless recovery via escalation.
#[test]
fn torus_yx_stuck_epoch_stalls_then_recovers_losslessly() {
    let faults = FaultConfig {
        seed: 23,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(5),
            start: 40,
            duration: 100_000,
        }],
        ..FaultConfig::default()
    };
    let topo = Substrate::Torus(Torus::try_new(4, 4).expect("4x4 torus"));
    let (sent, delivered, stall, pg) = run_wedged(topo, RoutingKind::Yx, faults);
    assert_eq!(delivered, sent, "zero lost flits after recovery");
    assert!(stall.in_flight_packets > 0);
    assert!(stall.oldest_blocked.is_some());
    assert!(
        pg.escalations > 0,
        "only escalation can release a stuck-off router"
    );
    assert!(pg.faults_injected > 0, "the stuck epoch swallowed WUs");
}

/// Acceptance: the injector is deterministic — the same seed and config
/// produce bit-identical statistics run over run.
#[test]
fn identical_seeds_give_bit_identical_stats() {
    let faults = FaultConfig {
        seed: 1234,
        drop_punch_ppm: FaultConfig::ppm(0.35),
        corrupt_punch_ppm: FaultConfig::ppm(0.2),
        max_wakeup_jitter: 4,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(9),
            start: 100,
            duration: 400,
        }],
        ..FaultConfig::default()
    };
    let (sent_a, del_a, wait_a, pg_a) = run_faulted(Mesh::new(4, 4), faults.clone());
    let (sent_b, del_b, wait_b, pg_b) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(sent_a, sent_b);
    assert_eq!(del_a, del_b);
    assert_eq!(wait_a.to_bits(), wait_b.to_bits(), "latency mean diverged");
    assert_eq!(pg_a, pg_b, "power-gating counters diverged");
}
