//! Failure injection: Power Punch's punch signals are an *optimization*;
//! the conventional WU handshake (Figure 2) remains as the correctness
//! safety net, and the watchdog's escalation path backstops even a wedged
//! handshake. These tests configure the library [`FaultInjector`] (via
//! `SimConfig::faults`) to drop, corrupt and delay power-gating sideband
//! events — or wedge a router outright — and assert that no packet is ever
//! lost and the network always drains; only performance may degrade.

use punchsim::core::build_power_manager;
use punchsim::noc::{Message, MsgClass, Network, PgCounters};
use punchsim::types::{
    FaultConfig, Mesh, NodeId, SchemeKind, SimConfig, SimRng, StuckEpoch, VnetId,
};

/// Builds a faulted PowerPunch-PG config on `mesh` and runs a light random
/// workload through the real network + fault-injector stack, then drains.
/// Returns (sent, delivered, wakeup-wait mean, final PG counters).
fn run_faulted(mesh: Mesh, faults: FaultConfig) -> (usize, usize, f64, PgCounters) {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = mesh.into();
    cfg.faults = faults;
    let pm = build_power_manager(&cfg).expect("valid config");
    let mut net = Network::new(&cfg.noc, pm).expect("valid config");
    let n = mesh.nodes() as u16;
    let mut rng = SimRng::seed_from_u64(7);
    let mut sent = 0usize;
    for round in 0..600u64 {
        if round % 10 == 0 {
            let src = NodeId(rng.random_range(0..n));
            let dst = NodeId(rng.random_range(0..n));
            net.send(Message {
                src,
                dst,
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            })
            .expect("in-mesh send");
            sent += 1;
        }
        net.tick()
            .expect("watchdog must stay quiet under punch faults");
    }
    let mut guard = 0;
    while net.in_flight() > 0 {
        net.tick().expect("watchdog must stay quiet while draining");
        guard += 1;
        assert!(guard < 100_000, "network failed to drain");
    }
    let delivered: usize = (0..n).map(|i| net.take_delivered(NodeId(i)).len()).sum();
    let report = net.report();
    (
        sent,
        delivered,
        report.stats.wakeup_wait.mean(),
        report.pg.clone(),
    )
}

fn drop_faults(prob: f64) -> FaultConfig {
    FaultConfig {
        seed: 99,
        drop_punch_ppm: FaultConfig::ppm(prob),
        ..FaultConfig::default()
    }
}

/// Acceptance: drop probability 1.0 *and* corruption on an 8x8
/// PowerPunchFull mesh — every packet still delivers and the watchdog
/// never files a stall report.
#[test]
fn losing_every_punch_event_degrades_but_never_deadlocks() {
    let mesh = Mesh::new(8, 8);
    let chaos = FaultConfig {
        seed: 99,
        drop_punch_ppm: FaultConfig::ppm(1.0),
        corrupt_punch_ppm: FaultConfig::ppm(0.5),
        max_wakeup_jitter: 3,
        ..FaultConfig::default()
    };
    let (sent, delivered, wait_chaos, pg) = run_faulted(mesh, chaos);
    assert_eq!(delivered, sent, "all packets delivered without any punches");
    assert!(pg.faults_injected > 0, "the injector actually fired");

    let (sent, delivered, wait_healthy, _) = run_faulted(mesh, FaultConfig::default());
    assert_eq!(delivered, sent);
    // Dropping punches turns the scheme into blocked-wakeup gating: the
    // waiting time rises, demonstrating the punches were doing real work.
    assert!(
        wait_chaos > wait_healthy,
        "dropped-punch wait {wait_chaos} vs healthy {wait_healthy}"
    );
}

#[test]
fn partial_event_loss_is_between_the_extremes() {
    let mesh = Mesh::new(4, 4);
    let (_, _, w0, _) = run_faulted(mesh, FaultConfig::default());
    let (sent, d, w50, _) = run_faulted(mesh, drop_faults(0.5));
    let (_, _, w100, _) = run_faulted(mesh, drop_faults(1.0));
    assert_eq!(d, sent);
    assert!(w0 <= w50 + 1e-9 && w50 <= w100 + 1e-9, "{w0} {w50} {w100}");
}

/// Corrupted codewords decode to *different valid* target sets: the wrong
/// routers wake up (wasting energy), but delivery is untouched because the
/// blocked flit's own WU handshake still reaches the right router.
#[test]
fn corrupted_punches_waste_energy_but_lose_nothing() {
    let faults = FaultConfig {
        seed: 5,
        corrupt_punch_ppm: FaultConfig::ppm(1.0),
        ..FaultConfig::default()
    };
    let (sent, delivered, _, pg) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(delivered, sent);
    assert!(pg.faults_injected > 0, "corruptions were injected");
}

/// Acceptance: a stuck-off router epoch wedges the WU handshake entirely;
/// the watchdog's escalation path force-wakes the router, the escalation
/// counters tick, and every packet still delivers.
#[test]
fn stuck_off_router_is_escalated_and_all_packets_deliver() {
    let faults = FaultConfig {
        seed: 3,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(5),
            start: 50,
            duration: 5_000,
        }],
        ..FaultConfig::default()
    };
    let (sent, delivered, _, pg) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(delivered, sent, "escalation recovered every packet");
    assert!(
        pg.escalations > 0,
        "the watchdog force-woke the stuck router (escalations = {})",
        pg.escalations
    );
    assert!(pg.faults_injected > 0, "the stuck epoch swallowed WUs");
}

/// Acceptance: the injector is deterministic — the same seed and config
/// produce bit-identical statistics run over run.
#[test]
fn identical_seeds_give_bit_identical_stats() {
    let faults = FaultConfig {
        seed: 1234,
        drop_punch_ppm: FaultConfig::ppm(0.35),
        corrupt_punch_ppm: FaultConfig::ppm(0.2),
        max_wakeup_jitter: 4,
        stuck_epochs: vec![StuckEpoch {
            router: NodeId(9),
            start: 100,
            duration: 400,
        }],
        ..FaultConfig::default()
    };
    let (sent_a, del_a, wait_a, pg_a) = run_faulted(Mesh::new(4, 4), faults.clone());
    let (sent_b, del_b, wait_b, pg_b) = run_faulted(Mesh::new(4, 4), faults);
    assert_eq!(sent_a, sent_b);
    assert_eq!(del_a, del_b);
    assert_eq!(wait_a.to_bits(), wait_b.to_bits(), "latency mean diverged");
    assert_eq!(pg_a, pg_b, "power-gating counters diverged");
}
