//! Failure injection: Power Punch's punch signals are an *optimization*;
//! the conventional WU handshake (Figure 2) remains as the correctness
//! safety net. These tests wrap the real power manager in a fault injector
//! that drops or delays events and assert that no packet is ever lost and
//! the network always drains — only performance may degrade.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use punchsim::core::build_power_manager;
use punchsim::noc::{
    IdleInfo, Message, MsgClass, Network, PgCounters, PmEvent, PowerManager, PowerState,
};
use punchsim::types::{Cycle, Mesh, NodeId, SchemeKind, SimConfig};

/// Drops a fraction of non-essential events (everything except the
/// `BlockedNeed` safety net) before handing them to the inner scheme.
struct FaultyManager {
    inner: Box<dyn PowerManager>,
    rng: StdRng,
    drop_prob: f64,
}

impl FaultyManager {
    fn new(inner: Box<dyn PowerManager>, drop_prob: f64, seed: u64) -> Self {
        FaultyManager {
            inner,
            rng: StdRng::seed_from_u64(seed),
            drop_prob,
        }
    }
}

impl PowerManager for FaultyManager {
    fn kind(&self) -> SchemeKind {
        self.inner.kind()
    }

    fn state(&self, r: NodeId) -> PowerState {
        self.inner.state(r)
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        let kept: Vec<PmEvent> = events
            .iter()
            .copied()
            .filter(|ev| {
                // Never drop the correctness-critical handshake.
                matches!(ev, PmEvent::BlockedNeed { .. })
                    || self.rng.random_range(0.0..1.0) >= self.drop_prob
            })
            .collect();
        self.inner.tick(cycle, &kept, idle);
    }

    fn counters(&self) -> &PgCounters {
        self.inner.counters()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }
}

fn run_with_drops(drop_prob: f64) -> (usize, f64) {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.mesh = Mesh::new(4, 4);
    let inner = build_power_manager(&cfg);
    let pm = Box::new(FaultyManager::new(inner, drop_prob, 99));
    let mut net = Network::new(&cfg.noc, pm);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sent = 0usize;
    for round in 0..600u64 {
        if round % 10 == 0 {
            let src = NodeId(rng.random_range(0..16u16));
            let dst = NodeId(rng.random_range(0..16u16));
            net.send(Message {
                src,
                dst,
                vnet: punchsim::types::VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            });
            sent += 1;
        }
        net.tick();
    }
    let mut guard = 0;
    while net.in_flight() > 0 {
        net.tick();
        guard += 1;
        assert!(guard < 100_000, "network failed to drain");
    }
    let delivered: usize = (0..16u16)
        .map(|n| net.take_delivered(NodeId(n)).len())
        .sum();
    (delivered.min(sent), net.report().stats.wakeup_wait.mean())
}

#[test]
fn losing_every_punch_event_degrades_but_never_deadlocks() {
    let (delivered, wait_all_dropped) = run_with_drops(1.0);
    assert_eq!(delivered, 60, "all packets delivered without any punches");
    let (delivered, wait_healthy) = run_with_drops(0.0);
    assert_eq!(delivered, 60);
    // Dropping punches turns the scheme into blocked-wakeup gating: the
    // waiting time rises, demonstrating the punches were doing real work.
    assert!(
        wait_all_dropped > wait_healthy,
        "dropped-punch wait {wait_all_dropped} vs healthy {wait_healthy}"
    );
}

#[test]
fn partial_event_loss_is_between_the_extremes() {
    let (_, w0) = run_with_drops(0.0);
    let (d, w50) = run_with_drops(0.5);
    let (_, w100) = run_with_drops(1.0);
    assert_eq!(d, 60);
    assert!(w0 <= w50 + 1e-9 && w50 <= w100 + 1e-9, "{w0} {w50} {w100}");
}
