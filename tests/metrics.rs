//! Metrics are pure observation: collecting them never changes results.
//!
//! The registry, the latency histogram, the per-router planes and the
//! tick-phase profiler all ride along with the simulation; this file pins
//! the contract that none of them steers it. Three angles:
//!
//! * **Spec level** — `execute_observed` with metrics requested returns
//!   the exact [`Metrics`] that plain `execute` produces, across schemes
//!   and substrates (the same invariant PR 3 pinned for the event sink).
//! * **Kernel level** — enabling the profiler leaves [`PgCounters`] —
//!   including the new per-router attribution vectors — bit-identical
//!   between the SoA and struct busy kernels.
//! * **Internal consistency** — the exported planes sum to their global
//!   counters and the histogram agrees with the report percentiles, so a
//!   heatmap and a summary table drawn from the same registry can never
//!   contradict each other.

use punchsim::campaign::{ObserveOpts, RunSpec, Workload};
use punchsim::metrics::validate_exposition;
use punchsim::noc::BusyKernel;
use punchsim::prelude::*;
use punchsim::types::Torus;

fn spec(scheme: SchemeKind, topo: Substrate, routing: RoutingKind) -> RunSpec {
    RunSpec {
        scheme,
        seed: 0xC0FFEE,
        workload: Workload::Synthetic {
            pattern: TrafficPattern::UniformRandom,
            topo,
            routing,
            rate: 0.02,
            warmup_cycles: 200,
            measure_cycles: 800,
        },
    }
}

/// Metrics-on vs metrics-off: the deterministic [`Metrics`] must be
/// equal, across every scheme and a non-default substrate/routing pair.
#[test]
fn metrics_collection_never_changes_results() {
    let substrates: [(Substrate, RoutingKind); 3] = [
        (Mesh::new(4, 4).into(), RoutingKind::Xy),
        (Torus::new(4, 4).into(), RoutingKind::Yx),
        (CMesh::new(3, 3, 2).into(), RoutingKind::Xy),
    ];
    for scheme in [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ] {
        for (topo, routing) in substrates {
            let s = spec(scheme, topo, routing);
            let plain = s.execute().expect("healthy spec");
            let observed = s
                .execute_observed(ObserveOpts {
                    metrics: true,
                    ..ObserveOpts::NONE
                })
                .expect("healthy spec");
            assert_eq!(observed.metrics, plain, "{} drifted under metrics", s.id());
            assert!(observed.registry.is_some(), "{} lost its registry", s.id());
        }
    }
}

/// One profiled synthetic run on the chosen busy kernel; returns the
/// report and the exported registry.
fn profiled_run(kernel: BusyKernel, profiled: bool) -> (NetworkReport, Registry) {
    let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
    cfg.noc.topology = Mesh::new(6, 6).into();
    let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.01);
    sim.network_mut().set_busy_kernel(kernel);
    if profiled {
        sim.network_mut().enable_profiler();
    }
    let r = sim
        .run_experiment(300, 1_500)
        .expect("healthy run must complete");
    let mut reg = Registry::new();
    sim.network().export_metrics(&mut reg);
    (r, reg)
}

/// The profiler is wall-clock-only: switching it on, on either kernel,
/// leaves every power-gating counter — globals and the per-router
/// attribution vectors — bit-identical.
#[test]
fn profiler_leaves_pg_counters_identical_across_kernels() {
    let (reference, _) = profiled_run(BusyKernel::Struct, false);
    for kernel in [BusyKernel::Struct, BusyKernel::Soa] {
        for profiled in [false, true] {
            let (r, _) = profiled_run(kernel, profiled);
            assert_eq!(
                r.pg, reference.pg,
                "PgCounters drifted: kernel {kernel:?}, profiled {profiled}"
            );
            assert_eq!(r.stats.packets_delivered, reference.stats.packets_delivered);
            assert_eq!(r.latency_p50(), reference.latency_p50());
            assert_eq!(r.latency_p99(), reference.latency_p99());
            assert_eq!(r.latency_max(), reference.latency_max());
        }
    }
}

/// Planes sum to their globals, the histogram matches the report, and
/// the whole registry renders to a valid Prometheus exposition.
#[test]
fn exported_registry_is_internally_consistent() {
    let (r, reg) = profiled_run(BusyKernel::Soa, true);
    assert_eq!(
        reg.plane("router_wu_assertions").expect("exported").total(),
        r.pg.wu_assertions,
        "per-router WU plane must sum to the global counter"
    );
    assert_eq!(
        reg.plane("router_escalations").expect("exported").total(),
        r.pg.escalations,
    );
    assert_eq!(
        reg.plane("router_punch_hops")
            .expect("ppf exports it")
            .total(),
        r.pg.punch_hops,
        "per-router punch plane must sum to the global counter"
    );
    let hist = reg.hist("packet_latency_cycles").expect("exported");
    assert_eq!(hist.count(), r.stats.packets_delivered);
    assert_eq!(hist.max(), r.latency_max());
    assert_eq!(
        reg.counter("packets_delivered_total"),
        r.stats.packets_delivered
    );
    let expo = reg.to_prometheus();
    let stats = validate_exposition(&expo).expect("exposition must parse");
    assert!(stats.samples > 0);
    assert_eq!(stats.histograms, 1);
}
