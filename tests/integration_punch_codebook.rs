//! End-to-end validation of the punch-signal encoding claims: every signal
//! the fabric actually carries during stressed operation must be expressible
//! in the enumerated codebook (§4.1 / Table 1) — i.e. merging really is
//! contention-free at the claimed wire widths.

use punchsim::core::{Codebook, PunchFabric};
use punchsim::types::{Mesh, NodeId, SimRng};

fn stress_fabric(mesh: Mesh, hops: u16, rounds: usize, seed: u64) {
    let cb = Codebook::enumerate(mesh, hops);
    let mut fabric = PunchFabric::new(mesh, hops);
    let mut rng = SimRng::seed_from_u64(seed);
    let n = mesh.nodes() as u16;
    for _ in 0..rounds {
        // A burst of random wakeups (several per cycle, like a busy NoC).
        for _ in 0..mesh.nodes() / 4 {
            let r = NodeId(rng.random_range(0..n));
            let d = NodeId(rng.random_range(0..n));
            fabric.generate(r, d);
        }
        fabric.tick(|_| {});
        for (src, dir, set) in fabric.in_flight() {
            let link = cb
                .link(src, dir)
                .unwrap_or_else(|| panic!("no link {src}->{dir}"));
            assert!(
                link.encode(&set).is_some(),
                "set {set} on {src}->{dir} not in the {}-bit codebook",
                link.width_bits()
            );
        }
    }
    // Drain and keep validating.
    while !fabric.is_idle() {
        fabric.tick(|_| {});
        for (src, dir, set) in fabric.in_flight() {
            assert!(cb.link(src, dir).unwrap().encode(&set).is_some());
        }
    }
}

#[test]
fn h3_8x8_signals_always_encodable() {
    stress_fabric(Mesh::new(8, 8), 3, 400, 1);
}

#[test]
fn h2_8x8_signals_always_encodable() {
    stress_fabric(Mesh::new(8, 8), 2, 300, 2);
}

#[test]
fn h4_8x8_signals_always_encodable() {
    stress_fabric(Mesh::new(8, 8), 4, 300, 3);
}

#[test]
fn h3_4x4_and_16x16_signals_always_encodable() {
    stress_fabric(Mesh::new(4, 4), 3, 300, 4);
    stress_fabric(Mesh::new(16, 16), 3, 60, 5);
}

#[test]
fn codebook_widths_scale_with_hops_not_mesh_size() {
    // §6.6(2): "the width of the punch signals depends on the number of
    // targeted router hops, not network size".
    let w8 = Codebook::enumerate(Mesh::new(8, 8), 3).max_x_width();
    let w16 = Codebook::enumerate(Mesh::new(16, 16), 3).max_x_width();
    assert_eq!(w8, w16);
    let y8 = Codebook::enumerate(Mesh::new(8, 8), 3).max_y_width();
    let y16 = Codebook::enumerate(Mesh::new(16, 16), 3).max_y_width();
    assert_eq!(y8, y16);
}
