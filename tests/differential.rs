//! Differential conformance suite for the quiescence fast-forward kernel.
//!
//! Every case builds the *same* experiment twice — once in
//! [`TickMode::Naive`] (the cycle-by-cycle reference, every tick executed
//! literally) and once in [`TickMode::Fast`] (quiescence skip-ahead plus
//! the host-side arrival-gap skip) — and runs both in lock-step chunks.
//! At every checkpoint the two must agree on the clock, every router's
//! power state, the power-gating counters and the in-flight packet count;
//! at the end the complete [`NetworkReport`] must be identical down to
//! the last bit.
//!
//! Configurations are drawn from a seeded [`SimRng`], covering mesh
//! sizes, punch depths H ∈ {2,3,4}, all five schemes, injection rates
//! from zero (pure quiescence) to moderate load, burstiness, and fault
//! profiles (jitter, punch drops, WU drops, stuck-off epochs). Any
//! divergence pinpoints an observable behavior change introduced by
//! skip-ahead — exactly what the event-horizon contract (DESIGN.md §12)
//! forbids.

use punchsim::prelude::*;
use punchsim::traffic::InjectionConfig;

/// One generated experiment description.
#[derive(Debug)]
struct Case {
    cfg: SimConfig,
    inj: InjectionConfig,
    pattern: TrafficPattern,
}

/// Exact digest of a report: every field of [`NetworkReport`] (f64 Debug
/// formatting round-trips, so string equality is bit equality).
fn digest(r: &NetworkReport) -> String {
    format!("{r:?}")
}

fn draw_case(rng: &mut SimRng, id: u64) -> Case {
    let schemes = [
        SchemeKind::NoPg,
        SchemeKind::ConvPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ];
    // Substrate pool spans the trait layer: plain meshes under all five
    // routing functions, tori under the DOR routings that stay acyclic on
    // wrap links, and a concentrated mesh. Skip-ahead must be observably
    // exact on every one of them.
    let substrates: [(Substrate, RoutingKind); 10] = [
        (Mesh::new(4, 4).into(), RoutingKind::Xy),
        (Mesh::new(4, 4).into(), RoutingKind::Yx),
        (Mesh::new(4, 6).into(), RoutingKind::WestFirst),
        (Mesh::new(6, 6).into(), RoutingKind::NorthLast),
        (Mesh::new(5, 5).into(), RoutingKind::NegativeFirst),
        (Mesh::new(6, 6).into(), RoutingKind::Xy),
        (Mesh::new(8, 8).into(), RoutingKind::Xy),
        (Substrate::Torus(Torus::new(4, 4)), RoutingKind::Xy),
        (Substrate::Torus(Torus::new(6, 6)), RoutingKind::Yx),
        (Substrate::CMesh(CMesh::new(4, 4, 4)), RoutingKind::Xy),
    ];
    let rates = [0.0, 0.001, 0.005, 0.02];
    let patterns = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ];
    let (topo, routing) = substrates[rng.random_range(0..substrates.len())];
    let mut cfg = SimConfig::with_scheme(schemes[rng.random_range(0..schemes.len())]);
    cfg.noc.topology = topo;
    cfg.noc.routing = routing;
    cfg.power.punch_hops = rng.random_range(2..5u16);
    cfg.seed = 0xD1FF_0000 + id;
    // Fault profile: 0 = clean, then jitter / drops / stuck / everything.
    match rng.random_range(0..5u32) {
        0 => {}
        1 => cfg.faults.max_wakeup_jitter = rng.random_range(1..4u32),
        2 => {
            cfg.faults.drop_punch_ppm = 200_000;
            cfg.faults.drop_wu_ppm = 50_000;
        }
        3 => {
            cfg.faults.stuck_epochs = vec![StuckEpoch {
                router: NodeId(rng.random_range(0..topo.nodes() as u16)),
                start: rng.random_range(100..400u64),
                duration: rng.random_range(50..200u64),
            }];
        }
        _ => {
            cfg.faults.max_wakeup_jitter = 2;
            cfg.faults.drop_punch_ppm = 100_000;
            cfg.faults.stuck_epochs = vec![StuckEpoch {
                router: NodeId(rng.random_range(0..topo.nodes() as u16)),
                start: 150,
                duration: 120,
            }];
        }
    }
    cfg.faults.seed = 0xFA_0000 + id;
    let mut inj = InjectionConfig::at_rate(rates[rng.random_range(0..rates.len())]);
    inj.burstiness = if rng.random_bool_ppm(300_000) {
        0.5
    } else {
        0.0
    };
    inj.slack2_cycles = rng.random_range(4..9u64);
    Case {
        cfg,
        inj,
        pattern: patterns[rng.random_range(0..patterns.len())],
    }
}

fn build(case: &Case, mode: TickMode) -> SyntheticSim {
    let mut sim = SyntheticSim::with_injection(case.cfg.clone(), case.pattern, case.inj.clone());
    sim.network_mut().set_tick_mode(mode);
    sim
}

/// Compares the two simulations' observable state at one checkpoint.
fn assert_same_state(case_id: u64, at: u64, fast: &SyntheticSim, naive: &SyntheticSim) {
    let (fnet, nnet) = (fast.network(), naive.network());
    assert_eq!(
        fnet.cycle(),
        nnet.cycle(),
        "case {case_id}: clock diverged at checkpoint {at}"
    );
    assert_eq!(
        fnet.in_flight(),
        nnet.in_flight(),
        "case {case_id} cycle {at}: in-flight count diverged"
    );
    for r in 0..case_id_nodes(fast) {
        let node = NodeId(r as u16);
        assert_eq!(
            fnet.power_state(node),
            nnet.power_state(node),
            "case {case_id} cycle {at}: power state of router {r} diverged"
        );
    }
    let (fr, nr) = (fnet.report(), nnet.report());
    assert_eq!(
        fr.pg, nr.pg,
        "case {case_id} cycle {at}: PgCounters diverged"
    );
    assert_eq!(
        digest(&fr),
        digest(&nr),
        "case {case_id} cycle {at}: NetworkReport diverged"
    );
}

fn case_id_nodes(sim: &SyntheticSim) -> usize {
    sim.network().topology().nodes()
}

#[test]
fn fast_forward_is_observably_identical_to_naive_ticking() {
    let mut rng = SimRng::seed_from_u64(0xD1FF);
    for id in 0..50u64 {
        let case = draw_case(&mut rng, id);
        let mut fast = build(&case, TickMode::Fast);
        let mut naive = build(&case, TickMode::Naive);
        assert_eq!(fast.network().tick_mode(), TickMode::Fast);
        assert_eq!(naive.network().tick_mode(), TickMode::Naive);
        // Warm-up, then a measured window compared every `chunk` cycles.
        let (warmup, measure, chunk) = (200u64, 1_000u64, 100u64);
        fast.run(warmup).unwrap();
        naive.run(warmup).unwrap();
        fast.network_mut().reset_stats();
        naive.network_mut().reset_stats();
        assert_same_state(id, warmup, &fast, &naive);
        let mut at = warmup;
        for _ in 0..(measure / chunk) {
            fast.run(chunk).unwrap();
            naive.run(chunk).unwrap();
            at += chunk;
            assert_same_state(id, at, &fast, &naive);
        }
    }
}

/// The fast path must also agree through a *drain*: injection stops, the
/// network empties, long quiescent stretches follow.
#[test]
fn fast_forward_matches_naive_through_drain_and_deep_idle() {
    for (scheme, rate) in [
        (SchemeKind::ConvOptPg, 0.02),
        (SchemeKind::PowerPunchFull, 0.02),
        (SchemeKind::PowerPunchSignal, 0.005),
    ] {
        let run = |mode: TickMode| {
            let mut cfg = SimConfig::with_scheme(scheme);
            cfg.noc.topology = Mesh::new(6, 6).into();
            cfg.seed = 0xDEAD + f64::to_bits(rate);
            let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, rate);
            sim.network_mut().set_tick_mode(mode);
            sim.run(2_000).unwrap();
            let drained = sim.drain(50_000).unwrap();
            // Deep idle after the drain: the skip path dominates here.
            let pre_idle = sim.network().cycle();
            sim.run(20_000).unwrap();
            (
                drained,
                pre_idle,
                sim.network().cycle(),
                digest(&sim.report()),
            )
        };
        assert_eq!(
            run(TickMode::Fast),
            run(TickMode::Naive),
            "scheme {scheme:?} diverged through drain/deep-idle"
        );
    }
}

/// Satellite check for the closed-form `router_ahead`: the coordinate-jump
/// implementation must name exactly the router a literal `next_hop` walk
/// reaches after `min(h, distance)` steps — for every routing function on
/// the mesh and the DOR routings on the torus.
#[test]
fn closed_form_router_ahead_matches_hop_by_hop_walk() {
    let views: Vec<RouteView> = vec![
        (Mesh::new(8, 8), RoutingKind::Xy).into(),
        (Mesh::new(8, 8), RoutingKind::Yx).into(),
        (Mesh::new(7, 5), RoutingKind::WestFirst).into(),
        (Mesh::new(5, 7), RoutingKind::NorthLast).into(),
        (Mesh::new(6, 6), RoutingKind::NegativeFirst).into(),
        (Substrate::Torus(Torus::new(6, 6)), RoutingKind::Xy).into(),
        (Substrate::Torus(Torus::new(5, 4)), RoutingKind::Yx).into(),
        (Substrate::CMesh(CMesh::new(4, 4, 4)), RoutingKind::Xy).into(),
    ];
    for view in views {
        let topo = view.topo;
        for src in topo.iter_nodes() {
            for dst in topo.iter_nodes() {
                for h in 1..=4u16 {
                    // Reference: walk next_hop() literally, one hop at a
                    // time, stopping at the destination.
                    let mut walk = src;
                    for _ in 0..h {
                        if walk == dst {
                            break;
                        }
                        walk = view.next_hop(walk, dst).expect("en route");
                    }
                    let jump = view.router_ahead(src, dst, h);
                    assert_eq!(
                        jump, walk,
                        "{:?}/{:?}: ahead({src}, {dst}, {h})",
                        topo, view.routing
                    );
                    assert_eq!(
                        topo.distance(src, jump),
                        h.min(topo.distance(src, dst)),
                        "{:?}/{:?}: ahead() must sit min(h, dist) hops out",
                        topo,
                        view.routing
                    );
                }
            }
        }
    }
}
