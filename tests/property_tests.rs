//! Property-based tests (proptest) on the core invariants of the system.

use proptest::prelude::*;

use punchsim::core::{Codebook, PunchFabric, PunchSet};
use punchsim::noc::{AlwaysOn, Message, MsgClass, Network};
use punchsim::types::{routing, Direction, Mesh, NocConfig, NodeId, VnetId};

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (2u16..=8, 2u16..=8).prop_map(|(w, h)| Mesh::new(w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XY routes are minimal and never take an illegal Y->X turn.
    #[test]
    fn xy_routes_minimal_and_legal(mesh in mesh_strategy(), a in 0u16..64, b in 0u16..64) {
        let a = NodeId(a % mesh.nodes() as u16);
        let b = NodeId(b % mesh.nodes() as u16);
        let path: Vec<NodeId> = routing::xy_path(mesh, a, b).collect();
        prop_assert_eq!(path.len(), mesh.distance(a, b) as usize);
        // Reconstruct travel directions and check turn legality.
        let mut prev = a;
        let mut prev_dir: Option<Direction> = None;
        for hop in path {
            let dir = routing::xy_direction(mesh, prev, hop).unwrap();
            prop_assert_eq!(mesh.neighbor(prev, dir), Some(hop));
            if let Some(pd) = prev_dir {
                if pd != dir {
                    prop_assert!(
                        routing::xy_turn_legal(pd, dir),
                        "illegal turn {} -> {}", pd, dir
                    );
                }
            }
            prev_dir = Some(dir);
            prev = hop;
        }
    }

    /// The punch target is exactly `min(H, dist)` hops ahead and on-path.
    #[test]
    fn punch_target_min_rule(mesh in mesh_strategy(), a in 0u16..64, b in 0u16..64, h in 1u16..=4) {
        let a = NodeId(a % mesh.nodes() as u16);
        let b = NodeId(b % mesh.nodes() as u16);
        let t = routing::xy_router_ahead(mesh, a, b, h);
        prop_assert_eq!(mesh.distance(a, t), h.min(mesh.distance(a, b)));
        prop_assert!(routing::xy_on_path(mesh, a, b, t));
    }

    /// Normalization is insertion-order independent and keeps no implied
    /// targets.
    #[test]
    fn punch_set_normalization_order_free(
        targets in prop::collection::vec(0u16..64, 1..5),
        sender in 0u16..64,
        perm_seed in 0u64..1000,
    ) {
        let mesh = Mesh::new(8, 8);
        let sender = NodeId(sender);
        let ts: Vec<NodeId> = targets
            .iter()
            .map(|&t| NodeId(t))
            .filter(|&t| t != sender)
            .collect();
        prop_assume!(!ts.is_empty());
        let mut fwd = PunchSet::new();
        for &t in &ts {
            fwd.insert_normalized(mesh, sender, t);
        }
        // A pseudo-random permutation must give the same canonical set.
        let mut shuffled = ts.clone();
        let mut s = perm_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut rev = PunchSet::new();
        for &t in &shuffled {
            rev.insert_normalized(mesh, sender, t);
        }
        prop_assert_eq!(fwd.canonical(), rev.canonical());
        // No target is on the path to another (no implied targets).
        for &x in fwd.targets() {
            for &y in fwd.targets() {
                if x != y {
                    prop_assert!(!routing::xy_on_path(mesh, sender, y, x));
                }
            }
        }
        // Idempotence.
        let mut again = fwd;
        for &t in &ts {
            again.insert_normalized(mesh, sender, t);
        }
        prop_assert_eq!(again.canonical(), fwd.canonical());
    }

    /// A punch notifies exactly the routers on the path to its target,
    /// in hop order, one per cycle.
    #[test]
    fn punch_fabric_notifies_exact_path(src in 0u16..64, dst in 0u16..64, h in 1u16..=4) {
        let mesh = Mesh::new(8, 8);
        let (src, dst) = (NodeId(src), NodeId(dst));
        prop_assume!(src != dst);
        let mut fabric = PunchFabric::new(mesh, h);
        fabric.generate(src, dst);
        let target = routing::xy_router_ahead(mesh, src, dst, h);
        let expect: Vec<NodeId> = std::iter::once(src)
            .chain(routing::xy_path(mesh, src, target))
            .collect();
        let mut seen = Vec::new();
        for _ in 0..(h as usize + 2) {
            fabric.tick(|r| seen.push(r));
        }
        prop_assert_eq!(seen, expect);
        prop_assert!(fabric.is_idle());
    }

    /// Every punch signal in flight is encodable; encode/decode roundtrips.
    #[test]
    fn codebook_roundtrip_random_links(r in 0u16..64, d in 0usize..4) {
        let mesh = Mesh::new(8, 8);
        let cb = Codebook::enumerate(mesh, 3);
        let dir = Direction::ALL[d];
        if let Some(link) = cb.link(NodeId(r), dir) {
            for (i, s) in link.sets().iter().enumerate() {
                prop_assert_eq!(link.encode(s), Some((i + 1) as u16));
                let decoded = link.decode((i + 1) as u16);
                prop_assert_eq!(decoded.as_ref(), Some(s));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every injected packet is delivered exactly once, to the
    /// right node, under random traffic (always-on network).
    #[test]
    fn network_delivers_everything_exactly_once(
        sends in prop::collection::vec((0u16..16, 0u16..16, 0u8..3, prop::bool::ANY), 1..120),
    ) {
        let cfg = NocConfig {
            mesh: Mesh::new(4, 4),
            ..NocConfig::default()
        };
        let mut net = Network::new(&cfg, Box::new(AlwaysOn::new(16)));
        let mut expected = [0usize; 16];
        for (i, &(src, dst, vnet, data)) in sends.iter().enumerate() {
            net.send(Message {
                src: NodeId(src),
                dst: NodeId(dst),
                vnet: VnetId(vnet),
                class: if data { MsgClass::Data } else { MsgClass::Control },
                payload: i as u64,
                gen_cycle: 0,
            });
            expected[dst as usize] += 1;
            net.tick();
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.tick();
            guard += 1;
            prop_assert!(guard < 50_000, "drain stalled");
        }
        for n in 0..16u16 {
            let got = net.take_delivered(NodeId(n));
            prop_assert_eq!(got.len(), expected[n as usize], "node {}", n);
            for m in got {
                prop_assert_eq!(m.dst, NodeId(n));
            }
        }
    }

    /// The same conservation holds under Power Punch gating (no packet is
    /// lost to a power transition).
    #[test]
    fn gated_network_loses_nothing(
        sends in prop::collection::vec((0u16..16, 0u16..16), 1..60),
        gap in 1u64..40,
    ) {
        use punchsim::core::build_power_manager;
        use punchsim::types::{SchemeKind, SimConfig};
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.mesh = Mesh::new(4, 4);
        let pm = build_power_manager(&cfg);
        let mut net = Network::new(&cfg.noc, pm);
        let mut total = 0usize;
        for &(src, dst) in &sends {
            net.send(Message {
                src: NodeId(src),
                dst: NodeId(dst),
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            });
            total += 1;
            // Gaps let routers power off between packets.
            net.run(gap);
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.tick();
            guard += 1;
            prop_assert!(guard < 100_000, "drain stalled under gating");
        }
        let delivered: usize = (0..16u16)
            .map(|n| net.take_delivered(NodeId(n)).len())
            .sum();
        prop_assert_eq!(delivered, total);
    }
}
