//! Property-style tests on the core invariants of the system.
//!
//! These used to run under `proptest`; they are now driven by the in-repo
//! deterministic [`SimRng`] so the workspace has no external dependencies
//! and every "random" case is exactly reproducible. Each test sweeps a
//! seeded batch of generated cases and asserts the invariant on every one.

use punchsim::core::{build_power_manager, Codebook, PunchFabric, PunchSet};
use punchsim::noc::{AlwaysOn, Message, MsgClass, Network};
use punchsim::types::{
    routing, Direction, Mesh, NocConfig, NodeId, SchemeKind, SimConfig, SimRng, VnetId,
};

fn random_mesh(rng: &mut SimRng) -> Mesh {
    Mesh::new(rng.random_range(2..9u16), rng.random_range(2..9u16))
}

/// XY routes are minimal and never take an illegal Y->X turn.
#[test]
fn xy_routes_minimal_and_legal() {
    let mut rng = SimRng::seed_from_u64(0x10);
    for _ in 0..64 {
        let mesh = random_mesh(&mut rng);
        let n = mesh.nodes() as u16;
        let a = NodeId(rng.random_range(0..n));
        let b = NodeId(rng.random_range(0..n));
        let path: Vec<NodeId> = routing::xy_path(mesh, a, b).collect();
        assert_eq!(path.len(), mesh.distance(a, b) as usize);
        // Reconstruct travel directions and check turn legality.
        let mut prev = a;
        let mut prev_dir: Option<Direction> = None;
        for hop in path {
            let dir = routing::xy_direction(mesh, prev, hop).unwrap();
            assert_eq!(mesh.neighbor(prev, dir), Some(hop));
            if let Some(pd) = prev_dir {
                if pd != dir {
                    assert!(
                        routing::xy_turn_legal(pd, dir),
                        "illegal turn {pd} -> {dir}"
                    );
                }
            }
            prev_dir = Some(dir);
            prev = hop;
        }
    }
}

/// The punch target is exactly `min(H, dist)` hops ahead and on-path.
#[test]
fn punch_target_min_rule() {
    let mut rng = SimRng::seed_from_u64(0x11);
    for _ in 0..64 {
        let mesh = random_mesh(&mut rng);
        let n = mesh.nodes() as u16;
        let a = NodeId(rng.random_range(0..n));
        let b = NodeId(rng.random_range(0..n));
        let h = rng.random_range(1..5u16);
        let t = routing::xy_router_ahead(mesh, a, b, h);
        assert_eq!(mesh.distance(a, t), h.min(mesh.distance(a, b)));
        assert!(routing::xy_on_path(mesh, a, b, t));
    }
}

/// Normalization is insertion-order independent and keeps no implied
/// targets.
#[test]
fn punch_set_normalization_order_free() {
    let mesh = Mesh::new(8, 8);
    let mut rng = SimRng::seed_from_u64(0x12);
    for _ in 0..64 {
        let sender = NodeId(rng.random_range(0..64u16));
        let len = rng.random_range(1..5usize);
        let ts: Vec<NodeId> = (0..len)
            .map(|_| NodeId(rng.random_range(0..64u16)))
            .filter(|&t| t != sender)
            .collect();
        if ts.is_empty() {
            continue;
        }
        let mut fwd = PunchSet::new();
        for &t in &ts {
            fwd.insert_normalized(mesh, sender, t);
        }
        // A pseudo-random permutation must give the same canonical set.
        let mut shuffled = ts.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..(i + 1));
            shuffled.swap(i, j);
        }
        let mut rev = PunchSet::new();
        for &t in &shuffled {
            rev.insert_normalized(mesh, sender, t);
        }
        assert_eq!(fwd.canonical(), rev.canonical());
        // No target is on the path to another (no implied targets).
        for &x in fwd.targets() {
            for &y in fwd.targets() {
                if x != y {
                    assert!(!routing::xy_on_path(mesh, sender, y, x));
                }
            }
        }
        // Idempotence.
        let mut again = fwd;
        for &t in &ts {
            again.insert_normalized(mesh, sender, t);
        }
        assert_eq!(again.canonical(), fwd.canonical());
    }
}

/// A punch notifies exactly the routers on the path to its target,
/// in hop order, one per cycle.
#[test]
fn punch_fabric_notifies_exact_path() {
    let mesh = Mesh::new(8, 8);
    let mut rng = SimRng::seed_from_u64(0x13);
    for _ in 0..64 {
        let src = NodeId(rng.random_range(0..64u16));
        let dst = NodeId(rng.random_range(0..64u16));
        if src == dst {
            continue;
        }
        let h = rng.random_range(1..5u16);
        let mut fabric = PunchFabric::new(mesh, h);
        fabric.generate(src, dst);
        let target = routing::xy_router_ahead(mesh, src, dst, h);
        let expect: Vec<NodeId> = std::iter::once(src)
            .chain(routing::xy_path(mesh, src, target))
            .collect();
        let mut seen = Vec::new();
        for _ in 0..(h as usize + 2) {
            fabric.tick(|r| seen.push(r));
        }
        assert_eq!(seen, expect);
        assert!(fabric.is_idle());
    }
}

/// Every punch signal in flight is encodable; encode/decode roundtrips.
#[test]
fn codebook_roundtrip_all_links() {
    let mesh = Mesh::new(8, 8);
    let cb = Codebook::enumerate(mesh, 3);
    for r in 0..64u16 {
        for dir in Direction::ALL {
            if let Some(link) = cb.link(NodeId(r), dir) {
                for (i, s) in link.sets().iter().enumerate() {
                    assert_eq!(link.encode(s), Some((i + 1) as u16));
                    let decoded = link.decode((i + 1) as u16);
                    assert_eq!(decoded.as_ref(), Some(s));
                }
            }
        }
    }
}

/// Contention-freedom of the punch codebooks (§4.1 steps 3–5): whatever
/// subset of wakeup signals shares a link in the same cycle — relayed
/// remainders arriving from any combination of upstream links plus at
/// most one locally generated punch — the merged target set is itself a
/// codebook entry, and its codeword decodes to exactly the normalized
/// (implied-target-free) closure of the merged targets. Merging therefore
/// never needs arbitration, never loses a target, and never wakes a
/// router the closure does not name.
#[test]
fn codebook_merges_are_contention_free() {
    let mut rng = SimRng::seed_from_u64(0x16);
    // Memoize enumerations: the random cases reuse few (mesh, H) combos.
    let mut books: Vec<((u16, u16, u16), Codebook)> = Vec::new();
    for _case in 0..300 {
        let mesh = random_mesh(&mut rng);
        let h = rng.random_range(2..5u16);
        let key = (mesh.width(), mesh.height(), h);
        if !books.iter().any(|(k, _)| *k == key) {
            books.push((key, Codebook::enumerate(mesh, h)));
        }
        let cb = &books.iter().find(|(k, _)| *k == key).unwrap().1;
        // A random directed link that exists.
        let n = mesh.nodes() as u16;
        let (r, dir) = loop {
            let r = NodeId(rng.random_range(0..n));
            let dir = Direction::ALL[rng.random_range(0..4usize)];
            if cb.link(r, dir).is_some() {
                break (r, dir);
            }
        };
        let link = cb.link(r, dir).unwrap();
        // Merge a random subset of same-cycle contributors.
        let mut merged = PunchSet::new();
        for in_dir in Direction::ALL {
            let Some(up) = mesh.neighbor(r, in_dir) else {
                continue;
            };
            let Some(up_link) = cb.link(up, in_dir.opposite()) else {
                continue;
            };
            if rng.random_bool_ppm(500_000) {
                continue; // this upstream link is idle this cycle
            }
            let arriving = up_link.sets()[rng.random_range(0..up_link.set_count())];
            // The relayed remainder: targets consumed at `r` drop out and
            // only those continuing through (r, dir) ride this link.
            for &t in arriving.targets() {
                if t != r && routing::xy_direction(mesh, r, t) == Some(dir) {
                    merged.insert_normalized(mesh, r, t);
                }
            }
        }
        if rng.random_bool_ppm(500_000) {
            // At most one locally generated punch joins the merge (the
            // fabric's generation arbitration enforces the "one").
            let local: Vec<NodeId> = mesh
                .iter_nodes()
                .filter(|&t| {
                    t != r
                        && mesh.distance(r, t) <= h
                        && routing::xy_direction(mesh, r, t) == Some(dir)
                })
                .collect();
            if !local.is_empty() {
                merged.insert_normalized(mesh, r, local[rng.random_range(0..local.len())]);
            }
        }
        if merged.is_empty() {
            continue;
        }
        let code = link
            .encode(&merged)
            .unwrap_or_else(|| panic!("merged set {merged} not expressible on {r}->{dir} (H={h})"));
        assert!(code > 0, "non-empty merge must not encode to idle");
        assert_eq!(
            link.decode(code),
            Some(merged.canonical()),
            "codeword must decode to the exact implied-target closure"
        );
    }
}

/// The paper's wire-width claims, re-checked from the property-test side:
/// H=3 on an 8x8 mesh needs at most 5 bits on X links and 2 bits on Y
/// links (Table 1 / §4.1 step 4).
#[test]
fn h3_link_widths_match_paper() {
    let cb = Codebook::enumerate(Mesh::new(8, 8), 3);
    for l in cb.iter() {
        let cap = if l.dir.is_x() { 5 } else { 2 };
        assert!(
            l.width_bits() <= cap,
            "{}->{} needs {} bits",
            l.from,
            l.dir,
            l.width_bits()
        );
    }
    assert_eq!(cb.max_x_width(), 5);
    assert_eq!(cb.max_y_width(), 2);
}

/// Conservation: every injected packet is delivered exactly once, to the
/// right node, under random traffic (always-on network).
#[test]
fn network_delivers_everything_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0x14);
    for _case in 0..12 {
        let cfg = NocConfig {
            topology: Mesh::new(4, 4).into(),
            ..NocConfig::default()
        };
        let mut net = Network::new(&cfg, Box::new(AlwaysOn::new(16))).unwrap();
        let mut expected = [0usize; 16];
        let sends = rng.random_range(1..120usize);
        for i in 0..sends {
            let dst = rng.random_range(0..16u16);
            net.send(Message {
                src: NodeId(rng.random_range(0..16u16)),
                dst: NodeId(dst),
                vnet: VnetId(rng.random_range(0..3u8)),
                class: if rng.random_bool_ppm(500_000) {
                    MsgClass::Data
                } else {
                    MsgClass::Control
                },
                payload: i as u64,
                gen_cycle: 0,
            })
            .unwrap();
            expected[dst as usize] += 1;
            net.tick().unwrap();
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.tick().unwrap();
            guard += 1;
            assert!(guard < 50_000, "drain stalled");
        }
        for n in 0..16u16 {
            let got = net.take_delivered(NodeId(n));
            assert_eq!(got.len(), expected[n as usize], "node {n}");
            for m in got {
                assert_eq!(m.dst, NodeId(n));
            }
        }
    }
}

/// The same conservation holds under Power Punch gating (no packet is
/// lost to a power transition), with the watchdog live the whole time.
#[test]
fn gated_network_loses_nothing() {
    let mut rng = SimRng::seed_from_u64(0x15);
    for _case in 0..12 {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(4, 4).into();
        let pm = build_power_manager(&cfg).unwrap();
        let mut net = Network::new(&cfg.noc, pm).unwrap();
        let gap = rng.random_range(1..40u64);
        let sends = rng.random_range(1..60usize);
        let mut total = 0usize;
        for _ in 0..sends {
            net.send(Message {
                src: NodeId(rng.random_range(0..16u16)),
                dst: NodeId(rng.random_range(0..16u16)),
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 0,
            })
            .unwrap();
            total += 1;
            // Gaps let routers power off between packets.
            net.run(gap).unwrap();
        }
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.tick().unwrap();
            guard += 1;
            assert!(guard < 100_000, "drain stalled under gating");
        }
        let delivered: usize = (0..16u16)
            .map(|n| net.take_delivered(NodeId(n)).len())
            .sum();
        assert_eq!(delivered, total);
    }
}
