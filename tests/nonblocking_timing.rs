//! Cycle-exact verification of the paper's central claim (§3, §4.3): with
//! 3-hop punch signals and the injection-node slacks, an 8-cycle router
//! wakeup is *completely* hidden — a packet crossing a fully powered-down
//! network never waits for a wakeup, "as if all NoC routers were virtually
//! always powered on".

use punchsim::core::build_power_manager;
use punchsim::noc::{Message, MsgClass, Network, TickMode};
use punchsim::types::{Mesh, NodeId, SchemeKind, SimConfig, VnetId};

/// Sends isolated packets across a sleeping 8x8 mesh and returns the total
/// wakeup-wait cycles and delivered count. Runs with quiescence
/// fast-forwarding explicitly enabled (the long idle gaps between packets
/// are exactly where skip-ahead engages).
fn run_isolated_packets(scheme: SchemeKind, wakeup: u32, use_slack2: bool) -> (u64, u64) {
    run_isolated_packets_mode(scheme, wakeup, use_slack2, TickMode::Fast)
}

fn run_isolated_packets_mode(
    scheme: SchemeKind,
    wakeup: u32,
    use_slack2: bool,
    mode: TickMode,
) -> (u64, u64) {
    let mut cfg = SimConfig::with_scheme(scheme);
    cfg.noc.topology = Mesh::new(8, 8).into();
    cfg.power.wakeup_latency = wakeup;
    let pm = build_power_manager(&cfg).unwrap();
    let mut net = Network::new(&cfg.noc, pm).unwrap();
    net.set_tick_mode(mode);
    // Let every router fall asleep.
    net.run(50).unwrap();
    let flows: &[(u16, u16)] = &[
        (0, 7),   // 7 hops straight east
        (56, 7),  // corner to corner
        (24, 31), // row crossing
        (3, 59),  // column crossing
        (9, 54),  // diagonal (X then Y)
        (62, 16), // westward + north
    ];
    for &(src, dst) in flows {
        if use_slack2 {
            // Slack 2: the node knows a packet is coming 6 cycles before
            // the message reaches the NI (L2/directory access start).
            net.notify_future_injection(NodeId(src)).unwrap();
            net.run(6).unwrap();
        }
        net.send(Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class: MsgClass::Control,
            payload: 0,
            gen_cycle: net.cycle(),
        })
        .unwrap();
        // Plenty of time to drain and for all routers to re-sleep.
        net.run(250).unwrap();
        assert_eq!(net.in_flight(), 0, "packet must drain");
    }
    let r = net.report();
    (r.stats.wakeup_wait.sum() as u64, r.stats.packets_delivered)
}

#[test]
fn power_punch_pg_hides_an_8_cycle_wakeup_completely() {
    let (wait, delivered) = run_isolated_packets(SchemeKind::PowerPunchFull, 8, true);
    assert_eq!(delivered, 6);
    assert_eq!(
        wait, 0,
        "Twakeup=8 must be fully hidden by 3-hop punches + NI slack"
    );
}

/// The tentpole guarantee, stated against the kernelized tick path: with
/// fast-forward enabled, low-injection Power Punch traffic at H=3 still
/// records *zero* wakeup-induced stall cycles, and the fast path agrees
/// with the cycle-by-cycle reference on every scheme — skip-ahead changes
/// wall-clock, never timing.
#[test]
fn fast_forward_keeps_wakeups_non_blocking_and_matches_naive() {
    for (scheme, slack2) in [
        (SchemeKind::PowerPunchFull, true),
        (SchemeKind::PowerPunchSignal, false),
        (SchemeKind::ConvOptPg, false),
    ] {
        let fast = run_isolated_packets_mode(scheme, 8, slack2, TickMode::Fast);
        let naive = run_isolated_packets_mode(scheme, 8, slack2, TickMode::Naive);
        assert_eq!(
            fast, naive,
            "{scheme:?}: fast path changed observable timing"
        );
    }
    let (wait, delivered) =
        run_isolated_packets_mode(SchemeKind::PowerPunchFull, 8, true, TickMode::Fast);
    assert_eq!(delivered, 6);
    assert_eq!(
        wait, 0,
        "H=3 + slacks must stay non-blocking under fast-forward"
    );
}

#[test]
fn wakeup_beyond_the_punch_slack_is_partially_exposed() {
    // 3-hop punches hide at most 3 x Trouter = 9 cycles in steady state
    // and slightly less at the first hop; Twakeup=14 must leak waiting.
    let (wait, delivered) = run_isolated_packets(SchemeKind::PowerPunchFull, 14, true);
    assert_eq!(delivered, 6);
    assert!(wait > 0, "a 14-cycle wakeup cannot be fully hidden at H=3");
}

#[test]
fn signal_only_scheme_exposes_the_source_router() {
    // Without NI slack the local router's wakeup is on the critical path
    // (§3: "not enough routing hop slack at injection nodes").
    let (wait, delivered) = run_isolated_packets(SchemeKind::PowerPunchSignal, 8, false);
    assert_eq!(delivered, 6);
    assert!(
        wait > 0,
        "PowerPunch-Signal must wait at sleeping source routers"
    );
}

#[test]
fn conventional_gating_waits_at_nearly_every_hop() {
    let (wait_conv, _) = run_isolated_packets(SchemeKind::ConvOptPg, 8, false);
    let (wait_pps, _) = run_isolated_packets(SchemeKind::PowerPunchSignal, 8, false);
    assert!(
        wait_conv > wait_pps * 3,
        "ConvOpt ({wait_conv}) must wait far more than PP-Signal ({wait_pps})"
    );
}

#[test]
fn four_stage_router_hides_up_to_twelve_cycles_in_steady_state() {
    // §4.1: 3-hop punches hide up to 12 cycles on a 4-stage router
    // (3 x Trouter = 12) — but only for routers 3+ hops from the source.
    // The first hop's margin comes from slack 1 (the 3-cycle NI pipeline)
    // plus one router traversal, about 9 cycles, so a 10-cycle wakeup
    // leaks exactly one wait cycle at hop 1 and nothing anywhere else,
    // while an 18-cycle wakeup leaks at every hop.
    let run = |wakeup: u32| {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.noc.topology = Mesh::new(8, 8).into();
        cfg.noc.router_stages = 4;
        cfg.power.wakeup_latency = wakeup;
        let pm = build_power_manager(&cfg).unwrap();
        let mut net = Network::new(&cfg.noc, pm).unwrap();
        net.run(50).unwrap();
        net.notify_future_injection(NodeId(0)).unwrap();
        net.run(6).unwrap();
        net.send(Message {
            src: NodeId(0),
            dst: NodeId(7),
            vnet: VnetId(0),
            class: MsgClass::Control,
            payload: 0,
            gen_cycle: net.cycle(),
        })
        .unwrap();
        net.run(400).unwrap();
        assert_eq!(net.in_flight(), 0);
        net.report().stats.wakeup_wait.sum() as u64
    };
    let w10 = run(10);
    let w12 = run(12);
    let w18 = run(18);
    assert!(w10 <= 1, "only the first hop may leak at Twakeup=10: {w10}");
    assert!(
        w12 <= 3,
        "steady-state hops stay covered at Twakeup=12: {w12}"
    );
    assert!(w18 > w12, "beyond 3xTrouter the blocking returns: {w18}");
}
