//! Differential conformance suite for the lazy O(occupied) gate-array
//! accounting.
//!
//! Reference: [`EagerGateArray`] — the full O(routers)-per-cycle sweep
//! with counters updated in place. Every trial drives the lazy
//! [`GateArray`] and the eager reference through an identical random
//! call sequence (idle vectors, wake requests, forced wakes, keep-awakes,
//! quiet-span jumps, counter resets) and demands equal per-router power
//! states and equal [`punchsim::noc::PgCounters`] at every observation
//! point — including after *every single cycle*, which is exactly the
//! access pattern laziness could silently break. Watermark folding is an
//! execution detail; any observable divergence is a bug.

use punchsim::core::gating::reference::EagerGateArray;
use punchsim::core::gating::GateArray;
use punchsim::prelude::*;

/// One observation point: states and counters must match exactly.
fn assert_same(trial: usize, cycle: Cycle, lazy: &GateArray, eager: &EagerGateArray, n: usize) {
    for i in 0..n {
        assert_eq!(
            lazy.state(NodeId(i as u16)),
            eager.state(NodeId(i as u16)),
            "trial {trial} cycle {cycle}: state of router {i} diverged"
        );
    }
    assert_eq!(
        lazy.counters(),
        eager.counters(),
        "trial {trial} cycle {cycle}: counters diverged"
    );
}

/// Random single-cycle traces, observed after every cycle. The sleep
/// veto, wake pattern and idleness all come from the same seeded stream
/// on both sides, so the two arrays see byte-identical call sequences.
#[test]
fn lazy_matches_eager_on_random_cycle_traces() {
    let mut rng = SimRng::seed_from_u64(0x1A2E61);
    for trial in 0..40 {
        let n = 1 + (rng.next_u64() % 24) as usize;
        let latency = 1 + (rng.next_u64() % 10) as u32;
        let timeout = (rng.next_u64() % 5) as u32;
        let mut lazy = GateArray::new(n, latency, timeout);
        let mut eager = EagerGateArray::new(n, latency, timeout);
        // A per-router veto horizon: router i may not sleep before this
        // cycle (stands in for the schemes' punch/forewarning vetoes).
        let floors: Vec<Cycle> = (0..n).map(|_| rng.next_u64() % 120).collect();
        for cycle in 0..160u64 {
            lazy.begin_cycle(cycle);
            eager.begin_cycle(cycle);
            // Sparse random events, identical on both sides.
            match rng.next_u64() % 8 {
                0 => {
                    let r = NodeId((rng.next_u64() % n as u64) as u16);
                    lazy.request_wake(r, cycle);
                    eager.request_wake(r, cycle);
                }
                1 => {
                    let r = NodeId((rng.next_u64() % n as u64) as u16);
                    lazy.force_wake(r, cycle);
                    eager.force_wake(r, cycle);
                }
                2 => {
                    let r = NodeId((rng.next_u64() % n as u64) as u16);
                    lazy.keep_awake(r);
                    eager.keep_awake(r);
                }
                _ => {}
            }
            let idle: Vec<bool> = (0..n).map(|_| rng.next_u64() % 4 != 0).collect();
            lazy.advance_idle(&idle, |i| cycle >= floors[i]);
            eager.advance_idle(&idle, |i| cycle >= floors[i]);
            // Observe after EVERY cycle: the counters must already be
            // exact, no matter how much debt the lazy side is carrying.
            assert_same(trial, cycle, &lazy, &eager, n);
        }
    }
}

/// Interleaved cycle-by-cycle stretches and bulk quiet-span jumps, with
/// mid-trace counter resets. Observation happens after every cycle *and*
/// after every jump; a jump that leaves stale debt or a reset that fails
/// to cancel it diverges immediately.
#[test]
fn lazy_matches_eager_across_bulk_jumps_and_resets() {
    let mut rng = SimRng::seed_from_u64(0xFA57_F01D);
    for trial in 0..30 {
        let n = 1 + (rng.next_u64() % 16) as usize;
        let latency = 1 + (rng.next_u64() % 8) as u32;
        let timeout = (rng.next_u64() % 4) as u32;
        let mut lazy = GateArray::new(n, latency, timeout);
        let mut eager = EagerGateArray::new(n, latency, timeout);
        let floors: Vec<Cycle> = (0..n).map(|_| rng.next_u64() % 200).collect();
        let mut cycle: Cycle = 0;
        for _segment in 0..12 {
            match rng.next_u64() % 4 {
                // Bulk jump: the quiet fast-forward path.
                0 => {
                    let span = 1 + rng.next_u64() % 60;
                    lazy.advance_quiet(cycle, cycle + span, |i| floors[i]);
                    eager.advance_quiet(cycle, cycle + span, |i| floors[i]);
                    cycle += span;
                }
                // Counter reset at a window boundary (both sides must
                // forget exactly the same history, including lazy debt).
                1 => {
                    lazy.reset_counters();
                    eager.reset_counters();
                }
                // A cycle-by-cycle stretch with random wakes.
                _ => {
                    for _ in 0..(1 + rng.next_u64() % 20) {
                        lazy.begin_cycle(cycle);
                        eager.begin_cycle(cycle);
                        if rng.next_u64() % 5 == 0 {
                            let r = NodeId((rng.next_u64() % n as u64) as u16);
                            lazy.request_wake(r, cycle);
                            eager.request_wake(r, cycle);
                        }
                        let idle: Vec<bool> = (0..n).map(|_| rng.next_u64() % 3 != 0).collect();
                        lazy.advance_idle(&idle, |i| cycle >= floors[i]);
                        eager.advance_idle(&idle, |i| cycle >= floors[i]);
                        assert_same(trial, cycle, &lazy, &eager, n);
                        cycle += 1;
                    }
                }
            }
            assert_same(trial, cycle, &lazy, &eager, n);
        }
    }
}

/// Cloning mid-run must carry the lazy debt with it: the clone and the
/// original fold to identical counters, and diverge only through calls
/// made after the split.
#[test]
fn clone_carries_pending_debt_exactly() {
    let mut lazy = GateArray::new(6, 4, 1);
    let mut eager = EagerGateArray::new(6, 4, 1);
    for cycle in 0..30u64 {
        lazy.begin_cycle(cycle);
        eager.begin_cycle(cycle);
        lazy.advance_idle(&[true; 6], |i| i != 0);
        eager.advance_idle(&[true; 6], |i| i != 0);
    }
    // Clone while routers 1..6 are off and owe unfolded debt (no
    // counters() observation has happened yet).
    let cloned = lazy.clone();
    assert_eq!(cloned.counters(), eager.counters());
    assert_eq!(lazy.counters(), eager.counters());
}
