//! Watchdog escalation accounting under a *scripted* fault schedule.
//!
//! The probabilistic fault tests assert `escalations > 0`; these pin the
//! count exactly. The [`ChoiceInjector`] applies per-cycle fault choices
//! deterministically, so the number of times a blocked-WU streak reaches
//! `escalate_after` — and therefore `PgCounters::escalations` — is fully
//! determined by the script.

use punchsim::core::ConvPgManager;
use punchsim::faults::ChoiceInjector;
use punchsim::noc::{Message, MsgClass, Network};
use punchsim::types::{
    Cycle, FaultChoice, Mesh, NodeId, SchemeKind, SimConfig, VnetId, WatchdogConfig,
};

/// Runs one scripted episode on a 2x2 conventional-gating mesh: warm up
/// until every router sleeps, send `src -> dst`, arm `choice` for the next
/// cycle, then tick until delivery. Returns the final escalation count.
fn scripted_episode(escalate_after: Cycle, episodes: &[(u16, u16, FaultChoice)]) -> u64 {
    let mut cfg = SimConfig::with_scheme(SchemeKind::ConvPg);
    cfg.noc.topology = Mesh::new(2, 2).into();
    cfg.noc.watchdog = WatchdogConfig {
        stall_threshold: 10_000,
        invariant_checks: true,
        escalate_after,
    };
    let base = ConvPgManager::new(cfg.noc.view(), &cfg.power, false);
    let pm = ChoiceInjector::new(Box::new(base), cfg.noc.topology);
    let mut net = Network::new(&cfg.noc, Box::new(pm)).expect("valid config");
    for &(src, dst, choice) in episodes {
        // Let every router fall asleep (idle_timeout is 4) so the stick
        // always lands on an off router.
        net.run(32).expect("quiet warmup");
        net.send(Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class: MsgClass::Control,
            payload: 0,
            gen_cycle: net.cycle(),
        })
        .expect("in-mesh send");
        assert!(net.arm_fault_choice(choice), "choice must be honoured");
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.tick().expect("watchdog must recover, not stall");
            guard += 1;
            assert!(guard < 10_000, "episode failed to drain");
        }
    }
    net.report().pg.escalations
}

/// Two forever-stuck routers, each on the injecting node of its packet:
/// the WU handshake is swallowed, the streak reaches `escalate_after`
/// exactly once per episode (the force-wake resets the streak and the
/// 8-cycle wakeup completes well within a second window), and no other
/// router on either path ever gets close to the threshold. Exactly two
/// escalations — no more, no fewer.
#[test]
fn forever_sticks_escalate_exactly_once_per_episode() {
    let escalations = scripted_episode(
        12,
        &[
            (
                0,
                3,
                FaultChoice::StickOff {
                    router: NodeId(0),
                    duration: None,
                },
            ),
            (
                3,
                0,
                FaultChoice::StickOff {
                    router: NodeId(3),
                    duration: None,
                },
            ),
        ],
    );
    assert_eq!(escalations, 2, "one forced wake per stuck router, exactly");
}

/// A bounded stick that expires before the escalation window closes is
/// recovered by the ordinary WU handshake: the streak peaks at roughly
/// stick-duration + wakeup-latency, below the threshold, so the watchdog
/// never fires. Exactly zero escalations.
#[test]
fn expiring_stick_recovers_without_any_escalation() {
    let escalations = scripted_episode(
        24,
        &[(
            0,
            3,
            FaultChoice::StickOff {
                router: NodeId(0),
                duration: Some(4),
            },
        )],
    );
    assert_eq!(escalations, 0, "the safety net recovered below threshold");
}

/// The same schedule replayed gives the same count — the scripted injector
/// adds no hidden nondeterminism.
#[test]
fn scripted_escalation_counts_are_reproducible() {
    let script = [(
        0u16,
        3u16,
        FaultChoice::StickOff {
            router: NodeId(0),
            duration: None,
        },
    )];
    assert_eq!(scripted_episode(12, &script), scripted_episode(12, &script));
}
