//! The perf-regression gate: diff two campaign artifacts under tolerances.
//!
//! CI runs the smoke campaign, then compares its `BENCH_*.json` against the
//! checked-in `bench/baseline.json`. Three tier-1 metrics are gated per
//! run: delivered packets, average latency, and watchdog escalations. The
//! simulator is seed-deterministic, so the tolerances exist only to absorb
//! cross-platform libm differences (the synthetic arrival process draws
//! through `f64::ln`), not to forgive real regressions — an injected 10%
//! latency regression fails the default 5% gate with room to spare.

use crate::json::Json;

/// Allowed drift per gated metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerances {
    /// Relative drift allowed on mean latency (0.05 = ±5%).
    pub latency_rel: f64,
    /// Relative drift allowed on delivered packets.
    pub delivered_rel: f64,
    /// Absolute drift allowed on escalation counts (healthy runs have 0;
    /// any systematic growth is a power-gating bug, not noise).
    pub escalations_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            latency_rel: 0.05,
            delivered_rel: 0.02,
            escalations_abs: 2.0,
        }
    }
}

/// One gated metric outside tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// Run id.
    pub id: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl Deviation {
    /// Signed relative drift (`+0.10` = 10% above baseline).
    pub fn relative(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

impl std::fmt::Display for Deviation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.4} -> {:.4} ({:+.1}%)",
            self.id,
            self.metric,
            self.baseline,
            self.current,
            self.relative() * 100.0
        )
    }
}

/// The outcome of one artifact-vs-artifact comparison.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Run ids checked in both artifacts.
    pub checked: usize,
    /// Gated metrics outside tolerance.
    pub deviations: Vec<Deviation>,
    /// Baseline run ids missing from the current artifact (a silently
    /// dropped configuration is a regression too).
    pub missing: Vec<String>,
    /// Current run ids absent from the baseline (informational: new
    /// configurations that are not yet gated).
    pub extra: Vec<String>,
    /// Error entries in the current artifact (`errors[].id`): runs that
    /// panicked or stalled. Always fatal.
    pub run_errors: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.deviations.is_empty() && self.missing.is_empty() && self.run_errors.is_empty()
    }
}

fn runs_by_id(doc: &Json) -> Result<Vec<(&str, &Json)>, String> {
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("artifact has no runs array")?;
    runs.iter()
        .map(|r| {
            let id = r
                .get("id")
                .and_then(Json::as_str)
                .ok_or("run entry without id")?;
            let metrics = r.get("metrics").ok_or("run entry without metrics")?;
            Ok((id, metrics))
        })
        .collect()
}

fn metric(metrics: &Json, key: &str) -> Result<f64, String> {
    metrics
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("metric {key} missing or non-numeric"))
}

/// Compares parsed artifacts.
///
/// # Errors
///
/// Returns a message when either document does not have the campaign
/// schema (shape errors, not metric drift — those go in [`Comparison`]).
pub fn compare(baseline: &Json, current: &Json, tol: &Tolerances) -> Result<Comparison, String> {
    for (doc, which) in [(baseline, "baseline"), (current, "current")] {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != crate::spec::SCHEMA_VERSION {
            return Err(format!(
                "{which} artifact schema {schema:?} != {:?}",
                crate::spec::SCHEMA_VERSION
            ));
        }
    }
    let base_runs = runs_by_id(baseline)?;
    let cur_runs = runs_by_id(current)?;
    let mut cmp = Comparison::default();
    if let Some(errors) = current.get("errors").and_then(Json::as_arr) {
        for e in errors {
            let id = e.get("id").and_then(Json::as_str).unwrap_or("<unknown>");
            cmp.run_errors.push(id.to_string());
        }
    }
    for (id, base_metrics) in &base_runs {
        let Some((_, cur_metrics)) = cur_runs.iter().find(|(cid, _)| cid == id) else {
            cmp.missing.push(id.to_string());
            continue;
        };
        cmp.checked += 1;
        for (key, rel_tol, abs_tol) in [
            ("delivered", Some(tol.delivered_rel), None),
            ("latency", Some(tol.latency_rel), None),
            ("escalations", None, Some(tol.escalations_abs)),
        ] {
            let b = metric(base_metrics, key)?;
            let c = metric(cur_metrics, key)?;
            let ok = match (rel_tol, abs_tol) {
                (Some(rel), _) => {
                    if b == 0.0 {
                        c == 0.0
                    } else {
                        ((c - b) / b).abs() <= rel
                    }
                }
                (None, Some(abs)) => (c - b).abs() <= abs,
                (None, None) => unreachable!(),
            };
            if !ok {
                cmp.deviations.push(Deviation {
                    id: id.to_string(),
                    metric: key,
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    for (id, _) in &cur_runs {
        if !base_runs.iter().any(|(bid, _)| bid == id) {
            cmp.extra.push(id.to_string());
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(runs: &[(&str, u64, f64, u64)]) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(crate::spec::SCHEMA_VERSION.to_string()));
        doc.push("name", Json::Str("t".to_string()));
        let runs = runs
            .iter()
            .map(|(id, delivered, latency, escalations)| {
                let mut m = Json::obj();
                m.push("delivered", Json::Int(*delivered as i64));
                m.push("latency", Json::Float(*latency));
                m.push("escalations", Json::Int(*escalations as i64));
                let mut r = Json::obj();
                r.push("id", Json::Str(id.to_string()));
                r.push("metrics", m);
                r
            })
            .collect();
        doc.push("runs", Json::Arr(runs));
        doc.push("errors", Json::Arr(vec![]));
        doc
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(&[("x/ppf/s1", 1000, 30.0, 0), ("y/ppf/s1", 900, 40.0, 0)]);
        let cmp = compare(&a, &a, &Tolerances::default()).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.checked, 2);
    }

    #[test]
    fn ten_percent_latency_regression_fails_default_gate() {
        let base = artifact(&[("x/ppf/s1", 1000, 30.0, 0)]);
        let bad = artifact(&[("x/ppf/s1", 1000, 33.0, 0)]);
        let cmp = compare(&base, &bad, &Tolerances::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.deviations.len(), 1);
        assert_eq!(cmp.deviations[0].metric, "latency");
        assert!((cmp.deviations[0].relative() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = artifact(&[("x/ppf/s1", 1000, 30.0, 0)]);
        let ok = artifact(&[("x/ppf/s1", 1005, 30.6, 1)]);
        assert!(compare(&base, &ok, &Tolerances::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn escalation_growth_fails() {
        let base = artifact(&[("x/ppf/s1", 1000, 30.0, 0)]);
        let bad = artifact(&[("x/ppf/s1", 1000, 30.0, 5)]);
        let cmp = compare(&base, &bad, &Tolerances::default()).unwrap();
        assert_eq!(cmp.deviations.len(), 1);
        assert_eq!(cmp.deviations[0].metric, "escalations");
    }

    #[test]
    fn missing_runs_fail_extra_runs_inform() {
        let base = artifact(&[("a", 10, 1.0, 0), ("b", 10, 1.0, 0)]);
        let cur = artifact(&[("a", 10, 1.0, 0), ("c", 10, 1.0, 0)]);
        let cmp = compare(&base, &cur, &Tolerances::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, vec!["b".to_string()]);
        assert_eq!(cmp.extra, vec!["c".to_string()]);
    }

    #[test]
    fn run_errors_in_current_are_fatal() {
        let base = artifact(&[("a", 10, 1.0, 0)]);
        let mut cur = artifact(&[("a", 10, 1.0, 0)]);
        let mut e = Json::obj();
        e.push("id", Json::Str("b".to_string()));
        e.push("kind", Json::Str("panic".to_string()));
        e.push("message", Json::Str("boom".to_string()));
        // Replace the empty errors array.
        if let Json::Obj(pairs) = &mut cur {
            pairs.retain(|(k, _)| k != "errors");
        }
        cur.push("errors", Json::Arr(vec![e]));
        let cmp = compare(&base, &cur, &Tolerances::default()).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.run_errors, vec!["b".to_string()]);
    }

    #[test]
    fn wrong_schema_is_a_shape_error() {
        let mut bad = artifact(&[]);
        if let Json::Obj(pairs) = &mut bad {
            pairs[0].1 = Json::Str("other/v9".to_string());
        }
        let good = artifact(&[]);
        assert!(compare(&bad, &good, &Tolerances::default()).is_err());
        assert!(compare(&good, &bad, &Tolerances::default()).is_err());
    }
}
