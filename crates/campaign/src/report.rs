//! Campaign artifacts: the deterministic `BENCH_<name>.json` and its
//! wall-clock timing sidecar.
//!
//! The split exists because the two files have incompatible contracts. The
//! main artifact contains only spec-determined data, so equal specs produce
//! byte-identical files no matter the thread count or machine load — that
//! is what the determinism test pins and what CI diffs against the
//! baseline. Wall-clock throughput (cycles/sec), cache hits and worker
//! counts are real observability data but inherently nondeterministic, so
//! they live in `BENCH_<name>.timing.json` next door.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::runner::Outcome;
use crate::spec::SCHEMA_VERSION;

/// Timing-sidecar schema tag. v2 added per-run shard-spawn overhead and
/// the optional campaign-level merged metric registry; v3 added per-run
/// persistent-pool counters (`pool_ticks`, `pool_wait_nanos`) and changed
/// `spawn_count` to count thread *creations* (at most `shards - 1` per
/// pool lifetime under the default pooled executor, and 0 in the measured
/// window when the pool came up during warm-up).
pub const TIMING_SCHEMA_VERSION: &str = "punchsim-campaign-timing/v3";

/// A finished campaign, ready to render into artifacts.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name; artifacts are `BENCH_<name>.json`.
    pub name: String,
    /// Worker threads the campaign ran with.
    pub threads: usize,
    /// Per-spec outcomes, in spec order.
    pub outcomes: Vec<Outcome>,
    /// Whole-campaign wall-clock time.
    pub wall_nanos: u64,
}

impl CampaignReport {
    /// Number of failed runs.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error().is_some()).count()
    }

    /// The deterministic artifact document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SCHEMA_VERSION.to_string()));
        doc.push("name", Json::Str(self.name.clone()));
        let mut runs = Vec::new();
        let mut errors = Vec::new();
        for outcome in &self.outcomes {
            match outcome {
                Outcome::Done(rec) => {
                    let mut r = Json::obj();
                    r.push("id", Json::Str(rec.spec.id()));
                    r.push("scheme", Json::Str(rec.spec.scheme.tag().to_string()));
                    r.push("seed", Json::Int(rec.spec.seed as i64));
                    r.push("workload", rec.spec.workload_json());
                    r.push("metrics", rec.metrics.to_json());
                    runs.push(r);
                }
                Outcome::Failed(err) => {
                    let mut e = Json::obj();
                    e.push("id", Json::Str(err.id.clone()));
                    let (kind, message) = match &err.kind {
                        crate::runner::RunErrorKind::Panic(m) => ("panic", m),
                        crate::runner::RunErrorKind::Sim(m) => ("sim", m),
                    };
                    e.push("kind", Json::Str(kind.to_string()));
                    e.push("message", Json::Str(message.clone()));
                    errors.push(e);
                }
            }
        }
        doc.push("runs", Json::Arr(runs));
        doc.push("errors", Json::Arr(errors));
        doc
    }

    /// The nondeterministic timing sidecar (wall-clock, cache hits,
    /// simulator throughput in cycles/sec).
    pub fn timing_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(TIMING_SCHEMA_VERSION.to_string()));
        doc.push("name", Json::Str(self.name.clone()));
        doc.push("threads", Json::Int(self.threads as i64));
        doc.push("wall_nanos", Json::Int(self.wall_nanos as i64));
        let sim_cycles: u64 = self
            .outcomes
            .iter()
            .filter_map(Outcome::record)
            .filter(|r| !r.cached)
            .map(|r| r.metrics.total_cycles)
            .sum();
        doc.push("simulated_cycles", Json::Int(sim_cycles as i64));
        if self.wall_nanos > 0 {
            doc.push(
                "cycles_per_sec",
                Json::Float(sim_cycles as f64 * 1e9 / self.wall_nanos as f64),
            );
        }
        let mut runs = Vec::new();
        for rec in self.outcomes.iter().filter_map(Outcome::record) {
            let mut r = Json::obj();
            r.push("id", Json::Str(rec.spec.id()));
            r.push("cached", Json::Bool(rec.cached));
            r.push("wall_nanos", Json::Int(rec.wall_nanos as i64));
            if let Some(cps) = rec.cycles_per_sec() {
                r.push("cycles_per_sec", Json::Float(cps));
            }
            // Shard-thread overhead: creations (pool-lifetime-bounded by
            // default) plus the pooled-tick barrier-wait counters the
            // shard gate checks.
            r.push("spawn_count", Json::Int(rec.spawn_count as i64));
            r.push("spawn_nanos", Json::Int(rec.spawn_nanos as i64));
            r.push("pool_ticks", Json::Int(rec.pool_ticks as i64));
            r.push("pool_wait_nanos", Json::Int(rec.pool_wait_nanos as i64));
            if !rec.series.is_empty() {
                r.push(
                    "series",
                    Json::Arr(rec.series.iter().map(|row| row.to_json()).collect()),
                );
            }
            runs.push(r);
        }
        doc.push("runs", Json::Arr(runs));
        if let Some(merged) = self.merged_registry() {
            doc.push("metrics", merged.to_json());
        }
        doc
    }

    /// The campaign-wide metric registry: every run's registry merged in
    /// spec order. Merging is order-independent (counters add, histograms
    /// merge elementwise, planes add cell-wise), so the result is the same
    /// no matter which worker ran which spec. `None` when no run collected
    /// metrics.
    pub fn merged_registry(&self) -> Option<punchsim_metrics::Registry> {
        let mut merged: Option<punchsim_metrics::Registry> = None;
        for rec in self.outcomes.iter().filter_map(Outcome::record) {
            if let Some(reg) = &rec.registry {
                merged
                    .get_or_insert_with(punchsim_metrics::Registry::new)
                    .merge(reg);
            }
        }
        merged
    }

    /// Writes both artifacts into `dir` and returns their paths
    /// (deterministic artifact first).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if `dir` cannot be created or a
    /// file cannot be written.
    pub fn write_artifacts(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let main = dir.join(format!("BENCH_{}.json", self.name));
        let timing = dir.join(format!("BENCH_{}.timing.json", self.name));
        std::fs::write(&main, self.to_json().render())?;
        std::fs::write(&timing, self.timing_json().render())?;
        Ok((main, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_traffic::TrafficPattern;
    use punchsim_types::{Mesh, RoutingKind, SchemeKind};

    use crate::runner::Runner;
    use crate::spec::{RunSpec, Workload};

    fn tiny_campaign() -> CampaignReport {
        let specs = vec![
            RunSpec {
                scheme: SchemeKind::NoPg,
                seed: 1,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::Neighbor,
                    topo: Mesh::new(4, 4).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.02,
                    warmup_cycles: 50,
                    measure_cycles: 200,
                },
            },
            // Poisoned: surfaces as an `errors` entry, not a dead campaign.
            RunSpec {
                scheme: SchemeKind::NoPg,
                seed: 2,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::Neighbor,
                    topo: Mesh::new(4, 4).into(),
                    routing: RoutingKind::Xy,
                    rate: -1.0,
                    warmup_cycles: 50,
                    measure_cycles: 200,
                },
            },
        ];
        let runner = Runner {
            threads: 1,
            store: None,
            ..Default::default()
        };
        CampaignReport {
            name: "tiny".to_string(),
            threads: 1,
            outcomes: runner.run(&specs),
            wall_nanos: 12345,
        }
    }

    #[test]
    fn artifact_has_runs_and_errors() {
        let report = tiny_campaign();
        let doc = report.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA_VERSION));
        assert_eq!(doc.get("runs").unwrap().as_arr().unwrap().len(), 1);
        let errors = doc.get("errors").unwrap().as_arr().unwrap();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].get("kind").unwrap().as_str(), Some("panic"));
        assert_eq!(report.failures(), 1);
        // The artifact re-parses.
        Json::parse(&doc.render()).unwrap();
    }

    #[test]
    fn timing_sidecar_reports_throughput() {
        let report = tiny_campaign();
        let t = report.timing_json();
        assert_eq!(
            t.get("schema").unwrap().as_str(),
            Some(TIMING_SCHEMA_VERSION)
        );
        // One successful 250-cycle run.
        assert_eq!(t.get("simulated_cycles").unwrap().as_u64(), Some(250));
        assert!(t.get("cycles_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // No sampling requested: no series key in the sidecar. Spawn
        // overhead is always reported (0 when phase A never sharded).
        let runs = t.get("runs").unwrap().as_arr().unwrap();
        assert!(runs[0].get("series").is_none());
        assert!(runs[0].get("spawn_count").unwrap().as_u64().is_some());
        assert!(runs[0].get("spawn_nanos").unwrap().as_u64().is_some());
        // v3: persistent-pool counters are always present too.
        assert!(runs[0].get("pool_ticks").unwrap().as_u64().is_some());
        assert!(runs[0].get("pool_wait_nanos").unwrap().as_u64().is_some());
        // No metrics requested: no campaign-level registry either.
        assert!(t.get("metrics").is_none());
    }

    #[test]
    fn timing_sidecar_carries_merged_metrics_when_collected() {
        let specs = vec![
            RunSpec {
                scheme: SchemeKind::ConvOptPg,
                seed: 4,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::Neighbor,
                    topo: Mesh::new(4, 4).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.02,
                    warmup_cycles: 50,
                    measure_cycles: 200,
                },
            },
            RunSpec {
                scheme: SchemeKind::PowerPunchFull,
                seed: 4,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::Neighbor,
                    topo: Mesh::new(4, 4).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.02,
                    warmup_cycles: 50,
                    measure_cycles: 200,
                },
            },
        ];
        let runner = Runner {
            threads: 2,
            collect_metrics: true,
            ..Default::default()
        };
        let report = CampaignReport {
            name: "metered".to_string(),
            threads: 2,
            outcomes: runner.run(&specs),
            wall_nanos: 1,
        };
        // The merged registry sums the per-run deterministic counters.
        let merged = report.merged_registry().expect("metrics were collected");
        let delivered: u64 = report
            .outcomes
            .iter()
            .filter_map(Outcome::record)
            .map(|r| r.metrics.delivered)
            .sum();
        assert_eq!(merged.counter("packets_delivered_total"), delivered);
        // The sidecar embeds it; the deterministic artifact never does.
        let t = report.timing_json();
        assert!(t.get("metrics").unwrap().get("counters").is_some());
        assert!(!report.to_json().render().contains("tick_phase_nanos"));
        Json::parse(&t.render()).unwrap();
    }

    #[test]
    fn timing_sidecar_carries_series_when_sampled() {
        let specs = vec![RunSpec {
            scheme: SchemeKind::ConvOptPg,
            seed: 3,
            workload: Workload::Synthetic {
                pattern: TrafficPattern::Neighbor,
                topo: Mesh::new(4, 4).into(),
                routing: RoutingKind::Xy,
                rate: 0.02,
                warmup_cycles: 50,
                measure_cycles: 200,
            },
        }];
        let runner = Runner {
            threads: 1,
            sample_every: 100,
            ..Default::default()
        };
        let report = CampaignReport {
            name: "sampled".to_string(),
            threads: 1,
            outcomes: runner.run(&specs),
            wall_nanos: 1,
        };
        let t = report.timing_json();
        let runs = t.get("runs").unwrap().as_arr().unwrap();
        let series = runs[0].get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert!(series[0].get("off_fraction").unwrap().as_f64().is_some());
        // The deterministic artifact is oblivious to sampling.
        assert!(!report.to_json().render().contains("\"series\""));
        // And the sidecar still re-parses.
        Json::parse(&t.render()).unwrap();
    }

    #[test]
    fn artifacts_write_to_disk() {
        let dir = std::env::temp_dir().join(format!("punchsim-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = tiny_campaign();
        let (main, timing) = report.write_artifacts(&dir).unwrap();
        assert!(main.ends_with("BENCH_tiny.json"));
        let text = std::fs::read_to_string(&main).unwrap();
        assert_eq!(text, report.to_json().render());
        assert!(timing.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
