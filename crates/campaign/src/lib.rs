//! # punchsim-campaign
//!
//! The parallel campaign layer: describe a set of simulation runs as
//! declarative [`RunSpec`]s (scheme × workload × config × seed), execute
//! them on a scoped worker pool with per-run panic isolation and an
//! incremental content-hashed result [`Store`], and emit schema-versioned
//! `BENCH_<name>.json` artifacts that `cargo bench` targets, the CLI and
//! CI's perf-regression gate all consume.
//!
//! The paper's evaluation (Figures 7–13, Table 1) is an 8-benchmark ×
//! 4-scheme full-system campaign plus synthetic sweeps. Every run is
//! independent, so the campaign is embarrassingly parallel; the runner
//! keeps result *ordering* deterministic regardless of worker count, which
//! keeps the artifacts byte-identical between `--threads 1` and
//! `--threads N` (pinned by `tests/determinism.rs`).
//!
//! Everything here is dependency-free by construction: JSON emission and
//! parsing, the FNV-1a/SplitMix64 content hash, and the thread pool are
//! hand-rolled on `std`, like `SimRng` before them.
//!
//! # Quickstart
//!
//! ```
//! use punchsim_campaign::{Runner, synthetic_suite};
//!
//! let specs = synthetic_suite(0xC0FFEE);
//! let runner = Runner { threads: 2, ..Runner::default() };
//! # let specs = &specs[..2];
//! let outcomes = runner.run(&specs);
//! assert!(outcomes.iter().all(|o| o.record().is_some()));
//! ```

pub mod compare;
pub mod hash;
pub mod report;
pub mod runner;
pub mod spec;
pub mod store;

/// The shared JSON value now lives in `punchsim-obs`; re-exported here so
/// existing `punchsim_campaign::json::Json` paths keep working.
pub use punchsim_obs::json;

pub use compare::{compare, Comparison, Deviation, Tolerances};
pub use json::{Json, JsonError};
pub use report::{CampaignReport, TIMING_SCHEMA_VERSION};
pub use runner::{Outcome, RunError, RunErrorKind, RunRecord, Runner};
pub use spec::{Metrics, ObserveOpts, Observed, RunSpec, Workload, SCHEMA_VERSION};
pub use store::Store;

use punchsim_cmp::Benchmark;
use punchsim_traffic::TrafficPattern;
use punchsim_types::{Mesh, RoutingKind, SchemeKind, Substrate, Torus};

/// The default seed, matching `SimConfig::default().seed` so campaign
/// results line up with ad-hoc CLI runs of the same configuration.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// **The** definition of smoke mode, for the whole workspace: `PP_FAST=1`
/// selects shortened simulations; leaving the variable unset (or set to
/// `0` or the empty string) selects full-length runs. No other value is
/// recognized. Benches, the campaign suites and CI all resolve the switch
/// through this function — if you are documenting `PP_FAST`, link here.
pub fn fast_mode() -> bool {
    matches!(std::env::var("PP_FAST"), Ok(v) if v == "1")
}

/// Instructions per core for full-system runs (shortened by
/// [`fast_mode`]).
pub fn instr_per_core() -> u64 {
    if fast_mode() {
        20_000
    } else {
        80_000
    }
}

/// Measured cycles for synthetic-traffic runs (shortened by
/// [`fast_mode`]).
pub fn synth_cycles() -> u64 {
    if fast_mode() {
        6_000
    } else {
        20_000
    }
}

/// The Figures 7–11 campaign: every PARSEC preset under every evaluated
/// scheme, sized by [`fast_mode`].
pub fn parsec_suite(seed: u64) -> Vec<RunSpec> {
    let instr = instr_per_core();
    let mut specs = Vec::new();
    for benchmark in Benchmark::ALL {
        for scheme in SchemeKind::EVALUATED {
            specs.push(RunSpec {
                scheme,
                seed,
                workload: Workload::Parsec {
                    benchmark,
                    instr_per_core: instr,
                    warmup_instr: instr / 10,
                },
            });
        }
    }
    specs
}

/// The synthetic sweep: every parameter-free pattern under every evaluated
/// scheme on the default 8x8 mesh at the CLI's default load, sized by
/// [`fast_mode`].
pub fn synthetic_suite(seed: u64) -> Vec<RunSpec> {
    let measure = synth_cycles();
    let mut specs = Vec::new();
    for pattern in TrafficPattern::SYNTHETIC {
        for scheme in SchemeKind::EVALUATED {
            specs.push(RunSpec {
                scheme,
                seed,
                workload: Workload::Synthetic {
                    pattern,
                    topo: Mesh::new(8, 8).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.005,
                    warmup_cycles: measure / 4,
                    measure_cycles: measure,
                },
            });
        }
    }
    specs
}

/// The CI smoke suite: the PARSEC campaign followed by the synthetic
/// sweep. `bench/baseline.json` is this suite under `PP_FAST=1`.
pub fn ci_suite(seed: u64) -> Vec<RunSpec> {
    let mut specs = parsec_suite(seed);
    specs.extend(synthetic_suite(seed));
    specs
}

/// The substrate sweep: the transpose and uniform patterns under every
/// evaluated scheme on each non-default substrate the trait layer adds —
/// the 8x8 torus under XY, the 8x8 mesh under YX, and the west-first
/// turn-model mesh. Exercises the derived (non-hand-coded) codebooks end
/// to end; EXPERIMENTS.md's torus-vs-mesh recipe runs this suite.
pub fn substrate_suite(seed: u64) -> Vec<RunSpec> {
    let measure = synth_cycles();
    let substrates: [(Substrate, RoutingKind); 3] = [
        (Substrate::Torus(Torus::new(8, 8)), RoutingKind::Xy),
        (Mesh::new(8, 8).into(), RoutingKind::Yx),
        (Mesh::new(8, 8).into(), RoutingKind::WestFirst),
    ];
    let mut specs = Vec::new();
    for (topo, routing) in substrates {
        for pattern in [TrafficPattern::UniformRandom, TrafficPattern::Transpose] {
            for scheme in SchemeKind::EVALUATED {
                specs.push(RunSpec {
                    scheme,
                    seed,
                    workload: Workload::Synthetic {
                        pattern,
                        topo,
                        routing,
                        rate: 0.005,
                        warmup_cycles: measure / 4,
                        measure_cycles: measure,
                    },
                });
            }
        }
    }
    specs
}

/// Measured cycles for the fast-path gate suite (shortened by
/// [`fast_mode`]). Much longer than [`synth_cycles`]: cycles are cheap
/// when most of them are skipped, and the window must dwarf per-run
/// setup so the cycles/sec ratio measures the tick kernel, not overhead.
pub fn fastpath_cycles() -> u64 {
    if fast_mode() {
        2_000_000
    } else {
        10_000_000
    }
}

/// The fast-path speedup gate suite: every evaluated scheme driving the
/// default 8x8 mesh at a *very* low load, where the network spends most
/// cycles quiescent. This is the regime the quiescence fast-forward
/// kernel exists for — sparse coherence traffic over a mostly-gated
/// fabric — and the suite CI uses to enforce its ≥1.5x speedup over
/// `--naive-tick` (the at-load `ci` suite is dominated by the
/// full-system model, which ticks the network every cycle by design, so
/// global skip cannot engage there).
pub fn fastpath_suite(seed: u64) -> Vec<RunSpec> {
    let measure = fastpath_cycles();
    SchemeKind::EVALUATED
        .into_iter()
        .map(|scheme| RunSpec {
            scheme,
            seed,
            workload: Workload::Synthetic {
                pattern: TrafficPattern::UniformRandom,
                topo: Mesh::new(8, 8).into(),
                routing: RoutingKind::Xy,
                rate: 0.00005,
                warmup_cycles: measure / 8,
                measure_cycles: measure,
            },
        })
        .collect()
}

/// Measured cycles for the busy-regime scalability gate suite (shortened
/// by [`fast_mode`]). Shorter than [`fastpath_cycles`]: every cycle here
/// is a *busy* cycle (packets continuously in flight, so quiescence
/// fast-forward never engages), and busy cycles on a 32x32 mesh are what
/// the SoA-vs-struct ratio is measured on.
pub fn busy_cycles() -> u64 {
    if fast_mode() {
        12_000
    } else {
        40_000
    }
}

/// The busy-regime scalability suite: large meshes (16x16 and 32x32)
/// under continuous uniform-random load — the regime the paper's Figs.
/// 7–13 live in, and the one where the per-tick sweep cost dominates.
/// The per-node rate is low but the aggregate is not: mesh-wide, a new
/// packet arrives every ~2 cycles (32x32), far inside end-to-end packet
/// latency, so the network never goes quiescent — yet only a sparse
/// minority of routers is busy on any given cycle, which is exactly the
/// coherence-traffic shape the SoA word sweep exists for. CI's
/// `soa_gate.sh` runs this suite under the SoA and struct kernels
/// (byte-identical artifacts, ≥1.5x speed), and `shard_gate.sh` reruns
/// it across `--shards` counts (byte-identical artifacts again).
pub fn busy_suite(seed: u64) -> Vec<RunSpec> {
    let measure = busy_cycles();
    let mut specs = Vec::new();
    for (w, h) in [(16u16, 16u16), (32, 32)] {
        for scheme in [
            SchemeKind::NoPg,
            SchemeKind::ConvOptPg,
            SchemeKind::PowerPunchFull,
        ] {
            specs.push(RunSpec {
                scheme,
                seed,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::UniformRandom,
                    topo: Mesh::new(w, h).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.0005,
                    warmup_cycles: measure / 8,
                    measure_cycles: measure,
                },
            });
        }
    }
    specs
}

/// The persistent-pool perf-gate suite: a single PowerPunchFull 32x32 run
/// under the busy-regime load, the spec `shard_gate.sh` times at
/// `--shards 4` pooled vs per-tick spawn (`PP_SPAWN_TICK=1`) and holds to
/// a ≥1.3x cycles/sec ratio. Kept to one spec so the gate's wall-clock
/// ratio is a clean per-run measurement instead of an average across
/// meshes and schemes (the byte-identity half of the gate still runs the
/// full [`busy_suite`]).
pub fn pool_suite(seed: u64) -> Vec<RunSpec> {
    let measure = busy_cycles();
    vec![RunSpec {
        scheme: SchemeKind::PowerPunchFull,
        seed,
        workload: Workload::Synthetic {
            pattern: TrafficPattern::UniformRandom,
            topo: Mesh::new(32, 32).into(),
            routing: RoutingKind::Xy,
            rate: 0.0005,
            warmup_cycles: measure / 8,
            measure_cycles: measure,
        },
    }]
}

/// The rivals study: Power Punch against the structurally different
/// power schemes of ROADMAP item 3 — SDM circuit switching and the
/// bufferless ring router — bracketed by No-PG, at a low and a high
/// uniform-random load on the default 8x8 mesh. The low-load point
/// exposes cold-start costs (circuit setup latency vs. punch-ahead
/// latency); the high-load point exposes steady-state behavior (circuit
/// reuse vs. deflection penalties). EXPERIMENTS.md's "rivals" recipe
/// reads this suite's artifacts.
pub fn rivals_suite(seed: u64) -> Vec<RunSpec> {
    let measure = synth_cycles();
    let mut specs = Vec::new();
    for rate in [0.002, 0.02] {
        for scheme in [
            SchemeKind::NoPg,
            SchemeKind::PowerPunchFull,
            SchemeKind::SdmCircuit,
            SchemeKind::RingRouter,
        ] {
            specs.push(RunSpec {
                scheme,
                seed,
                workload: Workload::Synthetic {
                    pattern: TrafficPattern::UniformRandom,
                    topo: Mesh::new(8, 8).into(),
                    routing: RoutingKind::Xy,
                    rate,
                    warmup_cycles: measure / 4,
                    measure_cycles: measure,
                },
            });
        }
    }
    specs
}

/// The scheme-coverage drift suite: one identical uniform-random run
/// under every scheme that predates the registry refactor.
/// `bench/baseline_schemes.json` is this suite under `PP_FAST=1`, and
/// `scripts/no_drift.sh` re-asserts it byte-identical on every run — the
/// registry (and any future scheme addition) must not perturb a single
/// bit of the historical schemes' artifacts.
pub fn schemes_suite(seed: u64) -> Vec<RunSpec> {
    let measure = synth_cycles();
    [
        SchemeKind::NoPg,
        SchemeKind::ConvPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ]
    .into_iter()
    .map(|scheme| RunSpec {
        scheme,
        seed,
        workload: Workload::Synthetic {
            pattern: TrafficPattern::UniformRandom,
            topo: Mesh::new(8, 8).into(),
            routing: RoutingKind::Xy,
            rate: 0.005,
            warmup_cycles: measure / 4,
            measure_cycles: measure,
        },
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_shapes() {
        let seed = 9;
        let parsec = parsec_suite(seed);
        assert_eq!(
            parsec.len(),
            Benchmark::ALL.len() * SchemeKind::EVALUATED.len()
        );
        let synth = synthetic_suite(seed);
        assert_eq!(
            synth.len(),
            TrafficPattern::SYNTHETIC.len() * SchemeKind::EVALUATED.len()
        );
        let ci = ci_suite(seed);
        assert_eq!(ci.len(), parsec.len() + synth.len());
        let fastpath = fastpath_suite(seed);
        assert_eq!(fastpath.len(), SchemeKind::EVALUATED.len());
        let substrate = substrate_suite(seed);
        assert_eq!(substrate.len(), 3 * 2 * SchemeKind::EVALUATED.len());
        // Every id names its substrate: no two substrates collide.
        let mut sids: Vec<String> = substrate.iter().map(RunSpec::id).collect();
        sids.sort();
        sids.dedup();
        assert_eq!(sids.len(), substrate.len());
        assert!(sids.iter().any(|i| i.contains("/torus8x8/")));
        assert!(sids.iter().any(|i| i.contains("/8x8-yx/")));
        assert!(sids.iter().any(|i| i.contains("/8x8-wf/")));
        for s in &fastpath {
            let Workload::Synthetic { rate, .. } = s.workload else {
                panic!("fastpath suite must be synthetic");
            };
            assert!(rate < 0.001, "fastpath runs must be idle-dominated");
        }
        let pool = pool_suite(seed);
        assert_eq!(pool.len(), 1, "one spec keeps the perf ratio clean");
        assert!(pool[0].id().contains("32x32"), "gate runs the large mesh");
        let busy = busy_suite(seed);
        assert_eq!(busy.len(), 2 * 3, "two meshes x three schemes");
        let mut bids: Vec<String> = busy.iter().map(RunSpec::id).collect();
        bids.sort();
        bids.dedup();
        assert_eq!(bids.len(), busy.len());
        assert!(bids.iter().any(|i| i.contains("16x16")));
        assert!(bids.iter().any(|i| i.contains("32x32")));
        for s in &busy {
            let Workload::Synthetic { rate, topo, .. } = s.workload else {
                panic!("busy suite must be synthetic");
            };
            // Aggregate arrivals/cycle, not per-node rate, is what keeps a
            // mesh busy: the inter-arrival gap must sit well inside packet
            // latency so the network never goes quiescent.
            assert!(
                rate * topo.nodes() as f64 >= 0.1,
                "busy runs must keep packets continuously in flight"
            );
        }
        let rivals = rivals_suite(seed);
        assert_eq!(rivals.len(), 2 * 4, "two rates x four schemes");
        assert!(
            rivals
                .iter()
                .any(|s| s.scheme == SchemeKind::SdmCircuit || s.scheme == SchemeKind::RingRouter),
            "the rivals suite must exercise the rival schemes"
        );
        let mut rids: Vec<String> = rivals.iter().map(RunSpec::id).collect();
        rids.sort();
        rids.dedup();
        assert_eq!(rids.len(), rivals.len());
        let schemes = schemes_suite(seed);
        assert_eq!(
            schemes.len(),
            5,
            "drift suite pins exactly the pre-registry schemes"
        );
        assert!(
            schemes
                .iter()
                .all(|s| !SchemeKind::RIVALS.contains(&s.scheme)),
            "rival schemes have no historical baseline to drift from"
        );
        // Ids are unique within a suite (artifact keys).
        let mut ids: Vec<String> = ci.iter().map(RunSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ci.len());
    }

    #[test]
    fn suite_hashes_depend_on_seed() {
        let a: Vec<u64> = ci_suite(1).iter().map(RunSpec::content_hash).collect();
        let b: Vec<u64> = ci_suite(2).iter().map(RunSpec::content_hash).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }
}
