//! The parallel campaign executor.
//!
//! Independent simulation configs are embarrassingly parallel, so the
//! runner fans a spec list out over `std::thread::scope` workers pulling
//! from a shared atomic cursor (work-stealing in the "next idle worker
//! takes the next spec" sense — long runs never leave a core idle while
//! short ones finish). Three guarantees, each covered by a test:
//!
//! * **Deterministic ordering** — outcomes land at their spec's index, so
//!   artifacts are byte-identical whether the campaign ran on 1 thread or N.
//! * **Panic isolation** — a panicking run (e.g. a wedged protocol
//!   assertion) becomes a typed [`RunError`] entry; the other workers keep
//!   draining the queue and the campaign completes.
//! * **Incremental re-runs** — with a [`Store`] attached, specs whose
//!   content hash already has a result short-circuit to a cache hit.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use punchsim_metrics::Registry;
use punchsim_obs::{IntervalRow, Stamped};

use crate::spec::{Metrics, ObserveOpts, RunSpec};
use crate::store::Store;

/// A completed run: its deterministic metrics plus how it was obtained
/// (cache or simulation) and how long it took — the latter two feed the
/// timing sidecar, never the deterministic artifact.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec that ran.
    pub spec: RunSpec,
    /// Deterministic results.
    pub metrics: Metrics,
    /// `true` when served from the result store without simulating.
    pub cached: bool,
    /// Wall-clock nanoseconds this worker spent on the run.
    pub wall_nanos: u64,
    /// Per-interval time series (empty unless the runner sampled; feeds
    /// the timing sidecar, never the deterministic artifact).
    pub series: Vec<IntervalRow>,
    /// Flight-recorder tail (empty unless the runner traced; feeds
    /// per-run trace dumps, never the deterministic artifact).
    pub events: Vec<Stamped>,
    /// Metric registry (`None` unless the runner collected metrics or
    /// the run was a cache hit; feeds the timing sidecar and exposition,
    /// never the deterministic artifact).
    pub registry: Option<Box<Registry>>,
    /// Shard worker threads the run created (0 for cache hits; at most
    /// `shards - 1` under the persistent pool, per-tick only under
    /// `PP_SPAWN_TICK=1`).
    pub spawn_count: u64,
    /// Wall-clock nanoseconds spent creating those threads.
    pub spawn_nanos: u64,
    /// Sharded ticks executed through the persistent worker pool (0 for
    /// cache hits and spawn-per-tick runs).
    pub pool_ticks: u64,
    /// Host nanoseconds blocked at the pool's completion barrier (0 for
    /// cache hits).
    pub pool_wait_nanos: u64,
}

impl RunRecord {
    /// Simulated cycles per wall-clock second (the simulator-throughput
    /// metric; meaningless for cache hits, which report `None`).
    pub fn cycles_per_sec(&self) -> Option<f64> {
        if self.cached || self.wall_nanos == 0 {
            return None;
        }
        Some(self.metrics.total_cycles as f64 * 1e9 / self.wall_nanos as f64)
    }
}

/// Why a run produced no metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunErrorKind {
    /// The run panicked; the payload message is preserved.
    Panic(String),
    /// The simulation returned a typed error (watchdog stall, invariant
    /// violation, bad config), rendered to its display form.
    Sim(String),
}

/// A failed run. One poisoned spec yields one of these; the rest of the
/// campaign still completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// The failing spec's id.
    pub id: String,
    /// What happened.
    pub kind: RunErrorKind,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            RunErrorKind::Panic(m) => write!(f, "{}: panicked: {m}", self.id),
            RunErrorKind::Sim(m) => write!(f, "{}: {m}", self.id),
        }
    }
}

/// The result slot for one spec.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The run completed (boxed: a record now carries an optional registry
    /// and grew well past the error variant).
    Done(Box<RunRecord>),
    /// The run failed.
    Failed(RunError),
}

impl Outcome {
    /// The record, if the run completed.
    pub fn record(&self) -> Option<&RunRecord> {
        match self {
            Outcome::Done(r) => Some(r),
            Outcome::Failed(_) => None,
        }
    }

    /// The error, if the run failed.
    pub fn error(&self) -> Option<&RunError> {
        match self {
            Outcome::Done(_) => None,
            Outcome::Failed(e) => Some(e),
        }
    }
}

/// Executes spec lists on a scoped worker pool.
#[derive(Debug, Default)]
pub struct Runner {
    /// Worker count; `0` means [`Runner::default_threads`].
    pub threads: usize,
    /// Result store for incremental re-runs; `None` always simulates.
    pub store: Option<Store>,
    /// Per-interval sampling period in cycles; `0` disables the series.
    /// Sampling forces simulation (the store holds metrics, not series),
    /// but results are still saved, so a later unsampled campaign hits the
    /// cache — and the metrics themselves are unchanged by sampling.
    pub sample_every: u64,
    /// Per-run flight-recorder capacity in events; `0` disables tracing.
    /// Like sampling, tracing forces simulation without changing metrics.
    pub trace_cap: usize,
    /// When `true`, every run collects a metric registry (counters,
    /// latency histograms, per-router planes, tick-phase profile). Like
    /// sampling, collection forces simulation without changing metrics.
    pub collect_metrics: bool,
}

impl Runner {
    /// One worker per available core (the whole campaign is CPU-bound).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The worker count this runner will actually use for `n` specs.
    pub fn effective_threads(&self, n: usize) -> usize {
        let t = if self.threads == 0 {
            Runner::default_threads()
        } else {
            self.threads
        };
        t.min(n).max(1)
    }

    /// Runs every spec and returns outcomes **in spec order**, regardless
    /// of which worker finished first.
    pub fn run(&self, specs: &[RunSpec]) -> Vec<Outcome> {
        self.run_with(specs, &|_, _| {})
    }

    /// Like [`Runner::run`], additionally invoking `on_done(index,
    /// outcome)` from the worker thread as each run finishes (progress
    /// reporting; completion order, not spec order).
    pub fn run_with(
        &self,
        specs: &[RunSpec],
        on_done: &(dyn Fn(usize, &Outcome) + Sync),
    ) -> Vec<Outcome> {
        let threads = self.effective_threads(specs.len());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Outcome>>> = specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let opts = ObserveOpts {
                        sample_every: self.sample_every,
                        trace_cap: self.trace_cap,
                        metrics: self.collect_metrics,
                    };
                    let outcome = execute_one(spec, self.store.as_ref(), opts);
                    on_done(i, &outcome);
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot filled by the scope")
            })
            .collect()
    }
}

/// Runs one spec: store lookup, then an isolated simulation on a miss.
/// Requested observation (sampling or tracing) can only come from a live
/// simulation, so it bypasses the store lookup (results are still saved
/// for later unobserved campaigns).
fn execute_one(spec: &RunSpec, store: Option<&Store>, opts: ObserveOpts) -> Outcome {
    let started = Instant::now();
    if opts.is_none() {
        if let Some(store) = store {
            if let Some(metrics) = store.load(spec) {
                return Outcome::Done(Box::new(RunRecord {
                    spec: spec.clone(),
                    metrics,
                    cached: true,
                    wall_nanos: started.elapsed().as_nanos() as u64,
                    series: Vec::new(),
                    events: Vec::new(),
                    registry: None,
                    spawn_count: 0,
                    spawn_nanos: 0,
                    pool_ticks: 0,
                    pool_wait_nanos: 0,
                }));
            }
        }
    }
    // The spec and its config are rebuilt from scratch inside `execute`;
    // nothing mutable crosses the unwind boundary, so the suppression of
    // the UnwindSafe bound is sound.
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| spec.execute_observed(opts)));
    let wall_nanos = started.elapsed().as_nanos() as u64;
    match result {
        Ok(Ok(observed)) => {
            if let Some(store) = store {
                if let Err(e) = store.save(spec, &observed.metrics) {
                    eprintln!("warning: could not store {}: {e}", spec.id());
                }
            }
            Outcome::Done(Box::new(RunRecord {
                spec: spec.clone(),
                metrics: observed.metrics,
                cached: false,
                wall_nanos,
                series: observed.series,
                events: observed.events,
                registry: observed.registry,
                spawn_count: observed.spawn_count,
                spawn_nanos: observed.spawn_nanos,
                pool_ticks: observed.pool_ticks,
                pool_wait_nanos: observed.pool_wait_nanos,
            }))
        }
        Ok(Err(sim)) => Outcome::Failed(RunError {
            id: spec.id(),
            kind: RunErrorKind::Sim(sim.to_string()),
        }),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Outcome::Failed(RunError {
                id: spec.id(),
                kind: RunErrorKind::Panic(message),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_traffic::TrafficPattern;
    use punchsim_types::{Mesh, RoutingKind, SchemeKind};

    use crate::spec::Workload;

    fn small_spec(seed: u64, rate: f64) -> RunSpec {
        RunSpec {
            scheme: SchemeKind::ConvOptPg,
            seed,
            workload: Workload::Synthetic {
                pattern: TrafficPattern::UniformRandom,
                topo: Mesh::new(4, 4).into(),
                routing: RoutingKind::Xy,
                rate,
                warmup_cycles: 50,
                measure_cycles: 200,
            },
        }
    }

    #[test]
    fn outcomes_keep_spec_order() {
        let specs: Vec<RunSpec> = (0..6).map(|s| small_spec(s, 0.02)).collect();
        let runner = Runner {
            threads: 3,
            store: None,
            ..Default::default()
        };
        let outcomes = runner.run(&specs);
        assert_eq!(outcomes.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            let rec = outcome.record().expect("healthy specs all complete");
            assert_eq!(rec.spec.id(), spec.id());
            assert!(!rec.cached);
        }
    }

    #[test]
    fn panicking_spec_is_isolated() {
        // A negative rate trips the harness assertion — the classic
        // poisoned spec. Its neighbours must still complete.
        let specs = vec![
            small_spec(0, 0.02),
            small_spec(1, -1.0),
            small_spec(2, 0.02),
        ];
        let runner = Runner {
            threads: 2,
            store: None,
            ..Default::default()
        };
        let outcomes = runner.run(&specs);
        assert!(outcomes[0].record().is_some());
        assert!(outcomes[2].record().is_some());
        let err = outcomes[1].error().expect("poisoned spec must fail");
        assert_eq!(err.id, specs[1].id());
        match &err.kind {
            RunErrorKind::Panic(m) => assert!(m.contains("negative"), "{m}"),
            other => panic!("expected a panic error, got {other:?}"),
        }
    }

    #[test]
    fn store_short_circuits_second_run() {
        let dir =
            std::env::temp_dir().join(format!("punchsim-runner-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let specs: Vec<RunSpec> = (0..3).map(|s| small_spec(s, 0.02)).collect();
        let runner = Runner {
            threads: 2,
            store: Some(Store::new(&dir)),
            ..Default::default()
        };
        let first = runner.run(&specs);
        assert!(first.iter().all(|o| !o.record().unwrap().cached));
        let second = runner.run(&specs);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.record().unwrap(), b.record().unwrap());
            assert!(b.cached, "second pass must hit the store");
            assert_eq!(a.metrics, b.metrics);
        }
        // A new spec alongside cached ones simulates only itself.
        let mut extended = specs.clone();
        extended.push(small_spec(99, 0.02));
        let third = runner.run(&extended);
        assert!(third[..3].iter().all(|o| o.record().unwrap().cached));
        assert!(!third[3].record().unwrap().cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_yields_series_and_bypasses_cache_without_metric_drift() {
        let dir = std::env::temp_dir().join(format!(
            "punchsim-runner-sample-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let specs = vec![small_spec(5, 0.02)];
        let plain = Runner {
            threads: 1,
            store: Some(Store::new(&dir)),
            ..Default::default()
        }
        .run(&specs);
        let p = plain[0].record().unwrap();
        assert!(p.series.is_empty());
        // Sampling must simulate (the store has no series) yet reproduce
        // the stored metrics exactly.
        let sampled = Runner {
            threads: 1,
            store: Some(Store::new(&dir)),
            sample_every: 50,
            trace_cap: 512,
            ..Default::default()
        }
        .run(&specs);
        let s = sampled[0].record().unwrap();
        assert!(!s.cached, "observation cannot be served from the store");
        assert_eq!(s.metrics, p.metrics);
        // 200 measured cycles at a 50-cycle period close four intervals.
        assert_eq!(s.series.len(), 4);
        // The flight recorder captured the run's event tail.
        assert!(!s.events.is_empty());
        assert!(s.events.len() <= 512);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_collection_forces_simulation_without_metric_drift() {
        let dir = std::env::temp_dir().join(format!(
            "punchsim-runner-metrics-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let specs = vec![small_spec(11, 0.02)];
        let plain = Runner {
            threads: 1,
            store: Some(Store::new(&dir)),
            ..Default::default()
        }
        .run(&specs);
        let p = plain[0].record().unwrap();
        assert!(p.registry.is_none());
        let collected = Runner {
            threads: 1,
            store: Some(Store::new(&dir)),
            collect_metrics: true,
            ..Default::default()
        }
        .run(&specs);
        let c = collected[0].record().unwrap();
        assert!(!c.cached, "a registry cannot be served from the store");
        assert_eq!(c.metrics, p.metrics);
        let reg = c.registry.as_ref().expect("metrics were requested");
        // The registry's deterministic counters agree with the metrics.
        assert_eq!(reg.counter("packets_delivered_total"), c.metrics.delivered);
        // The profiler attributed wall time to at least one phase.
        assert!(reg.counter("tick_phase_marks{phase=\"power_tick\"}") > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
