//! Declarative run descriptions and their execution.
//!
//! A campaign is a list of [`RunSpec`]s — scheme × workload × configuration
//! × seed. A spec is pure data: it can be hashed ([`RunSpec::content_hash`])
//! for the incremental result store, rendered into a stable id for
//! artifacts, and executed ([`RunSpec::execute`]) into [`Metrics`].

use punchsim_cmp::{Benchmark, CmpConfig, CmpSim};
use punchsim_metrics::Registry;
use punchsim_obs::{IntervalRow, RingSink, Sampler, Stamped};
use punchsim_power::PowerModel;
use punchsim_traffic::{SyntheticSim, TrafficPattern};
use punchsim_types::{RoutingKind, SchemeKind, SimConfig, SimError, Substrate};

use crate::hash::Fnv64;
use crate::json::Json;

/// Schema tag stamped into every artifact and mixed into every content
/// hash. Bump it whenever the meaning of a metric changes: old store
/// entries and baselines then stop matching instead of silently lying.
/// v2 added the deterministic latency percentiles (p50/p95/p99/max).
pub const SCHEMA_VERSION: &str = "punchsim-campaign/v2";

/// What a single run simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// A full-system PARSEC-preset run on the MESI CMP substrate
    /// (the Figures 7–11 campaign).
    Parsec {
        /// Workload preset.
        benchmark: Benchmark,
        /// Instructions each core retires after warm-up.
        instr_per_core: u64,
        /// Warm-up instructions per core.
        warmup_instr: u64,
    },
    /// An open-loop synthetic-traffic run (the Figure 12 sweeps).
    Synthetic {
        /// Destination pattern.
        pattern: TrafficPattern,
        /// Network substrate (mesh, torus or concentrated mesh).
        topo: Substrate,
        /// Routing function driving the substrate.
        routing: RoutingKind,
        /// Offered load in flits/node/cycle.
        rate: f64,
        /// Warm-up cycles before statistics reset.
        warmup_cycles: u64,
        /// Measured cycles.
        measure_cycles: u64,
    },
}

/// One run: a workload under a scheme with a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Power-gating scheme.
    pub scheme: SchemeKind,
    /// RNG seed threaded into [`SimConfig::seed`].
    pub seed: u64,
    /// What to simulate.
    pub workload: Workload,
}

impl RunSpec {
    /// Stable human-readable id, unique within a campaign:
    /// `parsec/canneal/ppf/s12648430` or
    /// `synth/uniform/8x8/r0.005/ppf/s12648430`.
    pub fn id(&self) -> String {
        match &self.workload {
            Workload::Parsec { benchmark, .. } => {
                format!(
                    "parsec/{}/{}/s{}",
                    benchmark.name(),
                    self.scheme.tag(),
                    self.seed
                )
            }
            Workload::Synthetic {
                pattern,
                topo,
                routing,
                rate,
                ..
            } => {
                // The substrate segment stays byte-identical to the historic
                // `{w}x{h}` rendering for the default mesh + XY combination
                // (`Substrate::tag` renders a mesh as `8x8`); non-default
                // routing appends a dash-suffix inside the same segment so
                // the id keeps its slash structure.
                let mut sub = topo.tag();
                if *routing != RoutingKind::Xy {
                    sub.push('-');
                    sub.push_str(routing.tag());
                }
                format!(
                    "synth/{}/{}/r{}/{}/s{}",
                    pattern.tag(),
                    sub,
                    rate,
                    self.scheme.tag(),
                    self.seed
                )
            }
        }
    }

    /// Digest of everything that determines this run's results (schema
    /// version included). Two specs with equal hashes produce identical
    /// metrics; the store relies on this for cache hits.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(SCHEMA_VERSION);
        h.write_str(self.scheme.tag());
        h.write_u64(self.seed);
        match &self.workload {
            Workload::Parsec {
                benchmark,
                instr_per_core,
                warmup_instr,
            } => {
                h.write_str("parsec");
                h.write_str(benchmark.name());
                h.write_u64(*instr_per_core);
                h.write_u64(*warmup_instr);
            }
            Workload::Synthetic {
                pattern,
                topo,
                routing,
                rate,
                warmup_cycles,
                measure_cycles,
            } => {
                h.write_str("synth");
                h.write_str(pattern.tag());
                h.write_u64(topo.width() as u64);
                h.write_u64(topo.height() as u64);
                // Non-default substrates and routers extend the digest;
                // the default mesh + XY writes exactly the historic byte
                // sequence, keeping store entries and baselines valid.
                if !matches!(topo, Substrate::Mesh(_)) {
                    h.write_str(topo.kind_name());
                    h.write_u64(topo.concentration() as u64);
                }
                if *routing != RoutingKind::Xy {
                    h.write_str(routing.tag());
                }
                h.write_f64(*rate);
                h.write_u64(*warmup_cycles);
                h.write_u64(*measure_cycles);
            }
        }
        h.finish()
    }

    /// The workload parameters as a JSON object (part of the artifact, so a
    /// baseline documents exactly what it measured).
    pub fn workload_json(&self) -> Json {
        let mut o = Json::obj();
        match &self.workload {
            Workload::Parsec {
                benchmark,
                instr_per_core,
                warmup_instr,
            } => {
                o.push("kind", Json::Str("parsec".to_string()));
                o.push("benchmark", Json::Str(benchmark.name().to_string()));
                o.push("instr_per_core", Json::Int(*instr_per_core as i64));
                o.push("warmup_instr", Json::Int(*warmup_instr as i64));
            }
            Workload::Synthetic {
                pattern,
                topo,
                routing,
                rate,
                warmup_cycles,
                measure_cycles,
            } => {
                o.push("kind", Json::Str("synth".to_string()));
                o.push("pattern", Json::Str(pattern.tag().to_string()));
                // The key stays "mesh" (and a plain mesh renders the
                // historic "WxH") so default artifacts are byte-identical;
                // a non-XY router adds a "routing" key after it.
                o.push("mesh", Json::Str(topo.tag()));
                if *routing != RoutingKind::Xy {
                    o.push("routing", Json::Str(routing.tag().to_string()));
                }
                o.push("rate", Json::Float(*rate));
                o.push("warmup_cycles", Json::Int(*warmup_cycles as i64));
                o.push("measure_cycles", Json::Int(*measure_cycles as i64));
            }
        }
        o
    }

    /// Runs the simulation and distils [`Metrics`].
    ///
    /// # Errors
    ///
    /// Propagates watchdog errors from the synthetic harness
    /// ([`SimError::Stall`], [`SimError::Invariant`]). Full-system runs
    /// surface protocol wedges as panics, which the campaign runner
    /// isolates per run.
    pub fn execute(&self) -> Result<Metrics, SimError> {
        Ok(self.execute_observed(ObserveOpts::NONE)?.metrics)
    }

    /// Like [`RunSpec::execute`], additionally collecting a per-interval
    /// time series and/or a flight-recorder event tail, per `opts`.
    ///
    /// The simulation performs exactly the same ticks as [`RunSpec::execute`]
    /// — the sampler is host-driven (read-only snapshots between ticks) and
    /// the sink never feeds back into the protocol — so `metrics` is
    /// identical whether or not observation is attached. That invariant is
    /// what lets the runner keep serving the deterministic artifact from the
    /// result store while regenerating series on demand.
    ///
    /// # Errors
    ///
    /// Same as [`RunSpec::execute`].
    pub fn execute_observed(&self, opts: ObserveOpts) -> Result<Observed, SimError> {
        // Per-scheme model: identical to `default_45nm()` for every scheme
        // with the BASELINE power profile, so historical artifacts hold.
        let pm = PowerModel::for_scheme(self.scheme);
        match &self.workload {
            Workload::Parsec {
                benchmark,
                instr_per_core,
                warmup_instr,
            } => {
                let mut cfg = CmpConfig::new(*benchmark, self.scheme);
                cfg.sim.seed = self.seed;
                cfg.instr_per_core = *instr_per_core;
                cfg.warmup_instr = *warmup_instr;
                let routers = cfg.sim.noc.topology.nodes();
                let mut sim = CmpSim::new(cfg);
                if opts.trace_cap > 0 {
                    sim.network_mut()
                        .set_sink(Box::new(RingSink::new(opts.trace_cap)));
                }
                if opts.metrics {
                    sim.network_mut().enable_profiler();
                }
                let mut sampler = Sampler::new(routers);
                let every = if opts.sample_every > 0 {
                    sampler.observe(sim.network().obs_sample());
                    opts.sample_every
                } else {
                    u64::MAX
                };
                let r = sim.run_hooked(every, &mut |net| sampler.observe(net.obs_sample()));
                let b = pm.breakdown(&r.net);
                let metrics = Metrics {
                    delivered: r.net.stats.packets_delivered,
                    injected: r.net.stats.packets_injected,
                    exec_cycles: r.exec_cycles,
                    total_cycles: r.total_cycles,
                    latency: r.net.avg_packet_latency(),
                    latency_p50: r.net.latency_p50(),
                    latency_p95: r.net.latency_p95(),
                    latency_p99: r.net.latency_p99(),
                    latency_max: r.net.latency_max(),
                    encounters: r.net.avg_pg_encounters(),
                    wait: r.net.avg_wakeup_wait(),
                    escalations: r.net.pg.escalations,
                    off_fraction: r.net.off_fraction(),
                    dynamic_pj: b.dynamic_pj,
                    static_pj: b.static_pj,
                    overhead_pj: b.overhead_pj,
                    baseline_static_pj: pm.baseline_static_pj(&r.net),
                    completed: r.completed,
                };
                let (spawn_count, spawn_nanos) = sim.network().spawn_stats();
                let (pool_ticks, pool_wait_nanos) = sim.network().pool_stats();
                Ok(Observed {
                    metrics,
                    series: sampler.into_rows(),
                    events: take_events(sim.network_mut()),
                    registry: take_registry(sim.network_mut(), opts),
                    spawn_count,
                    spawn_nanos,
                    pool_ticks,
                    pool_wait_nanos,
                })
            }
            Workload::Synthetic {
                pattern,
                topo,
                routing,
                rate,
                warmup_cycles,
                measure_cycles,
            } => {
                let mut cfg = SimConfig::with_scheme(self.scheme);
                cfg.noc.topology = *topo;
                cfg.noc.routing = *routing;
                cfg.seed = self.seed;
                let routers = topo.nodes();
                let mut sim = SyntheticSim::new(cfg, *pattern, *rate);
                if opts.trace_cap > 0 {
                    sim.network_mut()
                        .set_sink(Box::new(RingSink::new(opts.trace_cap)));
                }
                if opts.metrics {
                    sim.network_mut().enable_profiler();
                }
                // The same tick sequence as `run_experiment`, opened up so
                // the measured window can be sampled at interval boundaries.
                sim.run(*warmup_cycles)?;
                sim.network_mut().reset_stats();
                let mut sampler = Sampler::new(routers);
                if opts.sample_every == 0 {
                    sim.run(*measure_cycles)?;
                } else {
                    sampler.observe(sim.network().obs_sample());
                    let mut remaining = *measure_cycles;
                    while remaining > 0 {
                        let chunk = opts.sample_every.min(remaining);
                        sim.run(chunk)?;
                        sampler.observe(sim.network().obs_sample());
                        remaining -= chunk;
                    }
                }
                let r = sim.report();
                let b = pm.breakdown(&r);
                let metrics = Metrics {
                    delivered: r.stats.packets_delivered,
                    injected: r.stats.packets_injected,
                    exec_cycles: r.cycles,
                    total_cycles: warmup_cycles + measure_cycles,
                    latency: r.avg_packet_latency(),
                    latency_p50: r.latency_p50(),
                    latency_p95: r.latency_p95(),
                    latency_p99: r.latency_p99(),
                    latency_max: r.latency_max(),
                    encounters: r.avg_pg_encounters(),
                    wait: r.avg_wakeup_wait(),
                    escalations: r.pg.escalations,
                    off_fraction: r.off_fraction(),
                    dynamic_pj: b.dynamic_pj,
                    static_pj: b.static_pj,
                    overhead_pj: b.overhead_pj,
                    baseline_static_pj: pm.baseline_static_pj(&r),
                    completed: true,
                };
                let (spawn_count, spawn_nanos) = sim.network().spawn_stats();
                let (pool_ticks, pool_wait_nanos) = sim.network().pool_stats();
                Ok(Observed {
                    metrics,
                    series: sampler.into_rows(),
                    events: take_events(sim.network_mut()),
                    registry: take_registry(sim.network_mut(), opts),
                    spawn_count,
                    spawn_nanos,
                    pool_ticks,
                    pool_wait_nanos,
                })
            }
        }
    }
}

/// Detaches a run's sink (if one was attached) and returns its retained
/// events.
fn take_events(net: &mut punchsim_noc::Network) -> Vec<Stamped> {
    net.take_sink().map(|s| s.snapshot()).unwrap_or_default()
}

/// Builds the run's metric registry when `opts.metrics` asked for one:
/// every deterministic counter/histogram/plane the network exports, plus
/// the wall-clock tick-phase profile. Boxed because a registry is large
/// relative to [`Observed`] and usually absent.
fn take_registry(net: &mut punchsim_noc::Network, opts: ObserveOpts) -> Option<Box<Registry>> {
    if !opts.metrics {
        return None;
    }
    let mut reg = Registry::new();
    net.export_metrics(&mut reg);
    if let Some(profiler) = net.take_profiler() {
        profiler.export(&mut reg);
    }
    Some(Box::new(reg))
}

/// What [`RunSpec::execute_observed`] should collect beyond [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOpts {
    /// Sampling interval in cycles for the per-interval time series;
    /// `0` disables sampling.
    pub sample_every: u64,
    /// Flight-recorder capacity in events; `0` leaves tracing off.
    pub trace_cap: usize,
    /// When `true`, the run collects a metric [`Registry`] (counters,
    /// latency histogram, per-router planes, tick-phase profile). Like
    /// the sampler and the sink, collection never changes [`Metrics`].
    pub metrics: bool,
}

impl ObserveOpts {
    /// No observation: [`RunSpec::execute_observed`] behaves exactly like
    /// [`RunSpec::execute`].
    pub const NONE: ObserveOpts = ObserveOpts {
        sample_every: 0,
        trace_cap: 0,
        metrics: false,
    };

    /// `true` when no form of observation is requested.
    pub fn is_none(&self) -> bool {
        self.sample_every == 0 && self.trace_cap == 0 && !self.metrics
    }
}

/// An observed run: deterministic metrics plus whatever observation was
/// requested. `series` and `events` feed the nondeterministic timing
/// sidecar and trace artifacts — never the `BENCH_<name>.json` contract.
#[derive(Debug, Clone)]
pub struct Observed {
    /// The same metrics [`RunSpec::execute`] would produce.
    pub metrics: Metrics,
    /// Closed sampling intervals (empty when `sample_every` was 0).
    pub series: Vec<IntervalRow>,
    /// Flight-recorder tail (empty when `trace_cap` was 0).
    pub events: Vec<Stamped>,
    /// Metric registry (`None` unless `metrics` was requested).
    pub registry: Option<Box<Registry>>,
    /// Shard worker threads created across the run (0 when phase A never
    /// took the sharded path). Under the default persistent pool this
    /// counts pool creations — at most `shards - 1` per pool lifetime,
    /// and 0 in the measured window when the pool came up during warm-up;
    /// under `PP_SPAWN_TICK=1` it reverts to per-tick spawns. Always
    /// collected — it is a single counter read — so the timing sidecar
    /// can report thread overhead per run.
    pub spawn_count: u64,
    /// Wall-clock nanoseconds spent creating those threads.
    pub spawn_nanos: u64,
    /// Sharded ticks executed through the persistent worker pool (0 in
    /// spawn-per-tick mode or when never sharded).
    pub pool_ticks: u64,
    /// Wall-clock nanoseconds the host thread spent blocked at the pool's
    /// completion barrier after finishing its own shard — cross-shard
    /// load imbalance, not compute.
    pub pool_wait_nanos: u64,
}

/// The deterministic, machine-readable result of one run. Everything here
/// depends only on the spec (never on wall-clock or thread count), which is
/// what makes campaign artifacts byte-identical across `--threads` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Packets delivered in the measured window.
    pub delivered: u64,
    /// Packets injected in the measured window.
    pub injected: u64,
    /// Measured-window cycles (full-system: execution cycles).
    pub exec_cycles: u64,
    /// All simulated cycles including warm-up (the wall-clock throughput
    /// denominator).
    pub total_cycles: u64,
    /// Mean packet latency, cycles.
    pub latency: f64,
    /// Median packet latency, cycles (log-bucketed histogram quantile,
    /// deterministic like every other metric here).
    pub latency_p50: u64,
    /// 95th-percentile packet latency, cycles.
    pub latency_p95: u64,
    /// 99th-percentile packet latency, cycles.
    pub latency_p99: u64,
    /// Worst packet latency, cycles (exact, not bucketed).
    pub latency_max: u64,
    /// Mean powered-off routers encountered per packet (Fig 9).
    pub encounters: f64,
    /// Mean wakeup-wait cycles per packet (Fig 10).
    pub wait: f64,
    /// Watchdog force-wake escalations (0 in a healthy run).
    pub escalations: u64,
    /// Fraction of router-cycles spent powered off.
    pub off_fraction: f64,
    /// Dynamic router energy, pJ (Fig 11).
    pub dynamic_pj: f64,
    /// Static router energy, pJ (Fig 11).
    pub static_pj: f64,
    /// Power-gating overhead energy, pJ (Fig 11).
    pub overhead_pj: f64,
    /// No-PG static energy over the same window, pJ.
    pub baseline_static_pj: f64,
    /// Whether the run finished within its cycle cap.
    pub completed: bool,
}

impl Metrics {
    /// The JSON object stored in artifacts and the result store. Key order
    /// is part of the byte-identical-artifact contract.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("delivered", Json::Int(self.delivered as i64));
        o.push("injected", Json::Int(self.injected as i64));
        o.push("exec_cycles", Json::Int(self.exec_cycles as i64));
        o.push("total_cycles", Json::Int(self.total_cycles as i64));
        o.push("latency", Json::Float(self.latency));
        o.push("latency_p50", Json::Int(self.latency_p50 as i64));
        o.push("latency_p95", Json::Int(self.latency_p95 as i64));
        o.push("latency_p99", Json::Int(self.latency_p99 as i64));
        o.push("latency_max", Json::Int(self.latency_max as i64));
        o.push("encounters", Json::Float(self.encounters));
        o.push("wait", Json::Float(self.wait));
        o.push("escalations", Json::Int(self.escalations as i64));
        o.push("off_fraction", Json::Float(self.off_fraction));
        o.push("dynamic_pj", Json::Float(self.dynamic_pj));
        o.push("static_pj", Json::Float(self.static_pj));
        o.push("overhead_pj", Json::Float(self.overhead_pj));
        o.push("baseline_static_pj", Json::Float(self.baseline_static_pj));
        o.push("completed", Json::Bool(self.completed));
        o
    }

    /// Parses a [`Metrics::to_json`] object back.
    pub fn from_json(v: &Json) -> Option<Metrics> {
        Some(Metrics {
            delivered: v.get("delivered")?.as_u64()?,
            injected: v.get("injected")?.as_u64()?,
            exec_cycles: v.get("exec_cycles")?.as_u64()?,
            total_cycles: v.get("total_cycles")?.as_u64()?,
            latency: v.get("latency")?.as_f64()?,
            latency_p50: v.get("latency_p50")?.as_u64()?,
            latency_p95: v.get("latency_p95")?.as_u64()?,
            latency_p99: v.get("latency_p99")?.as_u64()?,
            latency_max: v.get("latency_max")?.as_u64()?,
            encounters: v.get("encounters")?.as_f64()?,
            wait: v.get("wait")?.as_f64()?,
            escalations: v.get("escalations")?.as_u64()?,
            off_fraction: v.get("off_fraction")?.as_f64()?,
            dynamic_pj: v.get("dynamic_pj")?.as_f64()?,
            static_pj: v.get("static_pj")?.as_f64()?,
            overhead_pj: v.get("overhead_pj")?.as_f64()?,
            baseline_static_pj: v.get("baseline_static_pj")?.as_f64()?,
            completed: v.get("completed")?.as_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn synth_spec() -> RunSpec {
        RunSpec {
            scheme: SchemeKind::PowerPunchFull,
            seed: 7,
            workload: Workload::Synthetic {
                pattern: TrafficPattern::Transpose,
                topo: Mesh::new(4, 4).into(),
                routing: RoutingKind::Xy,
                rate: 0.05,
                warmup_cycles: 100,
                measure_cycles: 400,
            },
        }
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let s = synth_spec();
        assert_eq!(s.id(), "synth/transpose/4x4/r0.05/ppf/s7");
        let p = RunSpec {
            scheme: SchemeKind::NoPg,
            seed: 0xC0FFEE,
            workload: Workload::Parsec {
                benchmark: Benchmark::Canneal,
                instr_per_core: 20_000,
                warmup_instr: 2_000,
            },
        };
        assert_eq!(p.id(), "parsec/canneal/nopg/s12648430");
        assert_ne!(s.content_hash(), p.content_hash());
    }

    #[test]
    fn hash_is_sensitive_to_every_field() {
        let base = synth_spec();
        let mut seed = base.clone();
        seed.seed += 1;
        let mut scheme = base.clone();
        scheme.scheme = SchemeKind::NoPg;
        let mut rate = base.clone();
        if let Workload::Synthetic { rate: r, .. } = &mut rate.workload {
            *r += 1e-9;
        }
        let mut cycles = base.clone();
        if let Workload::Synthetic { measure_cycles, .. } = &mut cycles.workload {
            *measure_cycles += 1;
        }
        for other in [seed, scheme, rate, cycles] {
            assert_ne!(base.content_hash(), other.content_hash(), "{}", other.id());
        }
    }

    #[test]
    fn metrics_json_roundtrip() {
        let m = Metrics {
            delivered: 123,
            injected: 130,
            exec_cycles: 5_000,
            total_cycles: 5_500,
            latency: 36.25,
            latency_p50: 34,
            latency_p95: 61,
            latency_p99: 70,
            latency_max: 83,
            encounters: 0.5,
            wait: 1.75,
            escalations: 2,
            off_fraction: 0.625,
            dynamic_pj: 1e9,
            static_pj: 2e9,
            overhead_pj: 3e7,
            baseline_static_pj: 4e9,
            completed: true,
        };
        let text = m.to_json().render();
        let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn every_registered_scheme_executes_under_its_tag() {
        // The campaign layer must accept every registry tag: ids embed
        // the tag, and the spec must simulate end to end for every
        // scheme, rivals included.
        for scheme in SchemeKind::ALL {
            let spec = RunSpec {
                scheme,
                ..synth_spec()
            };
            assert!(
                spec.id().contains(&format!("/{}/", scheme.tag())),
                "id {} must embed the registry tag",
                spec.id()
            );
            let m = spec.execute().unwrap_or_else(|e| panic!("{scheme}: {e}"));
            assert!(m.completed, "{scheme} did not complete");
            assert!(m.delivered > 0, "{scheme} delivered nothing");
        }
    }

    #[test]
    fn execute_synthetic_produces_consistent_metrics() {
        let m = synth_spec().execute().unwrap();
        assert!(m.completed);
        assert!(m.delivered > 0);
        assert!(m.delivered <= m.injected);
        assert_eq!(m.exec_cycles, 400);
        assert_eq!(m.total_cycles, 500);
        assert!(m.latency > 0.0);
        // Same spec, same metrics: the content-hash contract.
        assert_eq!(synth_spec().execute().unwrap(), m);
    }

    #[test]
    fn observed_run_matches_plain_execute_and_yields_series() {
        let spec = synth_spec();
        let plain = spec.execute().unwrap();
        let obs = spec
            .execute_observed(ObserveOpts {
                sample_every: 100,
                trace_cap: 4_096,
                metrics: false,
            })
            .unwrap();
        // The core invariant: attaching observation changes nothing.
        assert_eq!(obs.metrics, plain);
        // 400 measured cycles at a 100-cycle interval: four closed rows
        // spanning exactly the measured window (warmup ends at cycle 100).
        assert_eq!(obs.series.len(), 4);
        assert_eq!(obs.series[0].start, 100);
        assert_eq!(obs.series[3].end, 500);
        let delivered: u64 = obs.series.iter().map(|r| r.delivered).sum();
        assert_eq!(delivered, plain.delivered);
        // The flight recorder saw the punch machinery at work.
        assert!(!obs.events.is_empty());
        let kinds: Vec<&str> = obs.events.iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"punch-emit"), "{kinds:?}");
    }

    #[test]
    fn observe_opts_none_collects_nothing() {
        assert!(ObserveOpts::NONE.is_none());
        let obs = synth_spec().execute_observed(ObserveOpts::NONE).unwrap();
        assert!(obs.series.is_empty());
        assert!(obs.events.is_empty());
        assert!(obs.registry.is_none());
    }

    #[test]
    fn metrics_registry_matches_plain_execute() {
        let spec = synth_spec();
        let plain = spec.execute().unwrap();
        let obs = spec
            .execute_observed(ObserveOpts {
                metrics: true,
                ..ObserveOpts::NONE
            })
            .unwrap();
        // Collection never steers the simulation.
        assert_eq!(obs.metrics, plain);
        let reg = obs.registry.expect("metrics were requested");
        assert_eq!(reg.counter("packets_delivered_total"), plain.delivered);
        // The latency histogram agrees with the deterministic percentiles.
        let hist = reg.hist("packet_latency_cycles").unwrap();
        assert_eq!(hist.count(), plain.delivered);
        assert_eq!(hist.max(), plain.latency_max);
        // The per-router planes cover the mesh and sum to the globals.
        let plane = reg.plane("router_wu_assertions").unwrap();
        assert_eq!((plane.width(), plane.height()), (4, 4));
        // The tick-phase profile attributed the measured window.
        assert!(reg.counter("tick_phase_nanos{phase=\"power_tick\"}") > 0);
    }
}
