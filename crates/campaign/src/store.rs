//! The incremental, content-hashed result store.
//!
//! Each completed run is persisted as one small JSON file named after the
//! spec's [`content hash`](crate::RunSpec::content_hash). Re-running a
//! campaign only simulates specs whose hash has no stored entry — changing
//! an instruction count, a seed, or the schema version changes the hash and
//! naturally invalidates exactly the affected runs. This replaces the old
//! single-file text cache in `crates/bench`, which knew only "the whole
//! campaign is cached" or "nothing is".

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::spec::{Metrics, RunSpec, SCHEMA_VERSION};

/// A directory of per-run result files.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Store {
        Store { dir: dir.into() }
    }

    /// The shared store in the cargo target directory (or the system temp
    /// directory when `CARGO_TARGET_DIR` is unset), so `cargo bench`
    /// targets and the CLI all hit the same cache.
    pub fn in_target() -> Store {
        let base = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        Store::new(base.join("punchsim-campaign"))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `spec`'s result lives. The id prefix keeps the directory
    /// browsable; the hash suffix is what guarantees correctness.
    pub fn path_of(&self, spec: &RunSpec) -> PathBuf {
        let slug: String = spec
            .id()
            .chars()
            .map(|c| if c == '/' || c == '.' { '-' } else { c })
            .collect();
        self.dir
            .join(format!("{slug}-{:016x}.json", spec.content_hash()))
    }

    /// Loads `spec`'s stored metrics, or `None` on any miss: absent file,
    /// unparseable JSON, schema drift, or hash mismatch. A corrupt entry is
    /// treated as a miss (the run simply re-executes and overwrites it).
    pub fn load(&self, spec: &RunSpec) -> Option<Metrics> {
        let text = std::fs::read_to_string(self.path_of(spec)).ok()?;
        let v = Json::parse(&text).ok()?;
        if v.get("schema")?.as_str()? != SCHEMA_VERSION {
            return None;
        }
        let stored_hash = v.get("hash")?.as_str()?;
        if stored_hash != format!("{:016x}", spec.content_hash()) {
            return None;
        }
        Metrics::from_json(v.get("metrics")?)
    }

    /// Persists `spec`'s metrics, creating the store directory if needed.
    /// The write goes through a temp file + rename so concurrent workers
    /// (or an interrupted run) never leave a half-written entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created
    /// or the file cannot be written.
    pub fn save(&self, spec: &RunSpec, metrics: &Metrics) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SCHEMA_VERSION.to_string()));
        doc.push("id", Json::Str(spec.id()));
        doc.push("hash", Json::Str(format!("{:016x}", spec.content_hash())));
        doc.push("workload", spec.workload_json());
        doc.push("metrics", metrics.to_json());
        let path = self.path_of(spec);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_traffic::TrafficPattern;
    use punchsim_types::{Mesh, RoutingKind, SchemeKind};

    use crate::spec::Workload;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            scheme: SchemeKind::ConvOptPg,
            seed,
            workload: Workload::Synthetic {
                pattern: TrafficPattern::UniformRandom,
                topo: Mesh::new(4, 4).into(),
                routing: RoutingKind::Xy,
                rate: 0.01,
                warmup_cycles: 10,
                measure_cycles: 50,
            },
        }
    }

    fn metrics() -> Metrics {
        Metrics {
            delivered: 5,
            injected: 6,
            exec_cycles: 50,
            total_cycles: 60,
            latency: 21.5,
            latency_p50: 20,
            latency_p95: 27,
            latency_p99: 29,
            latency_max: 31,
            encounters: 0.0,
            wait: 0.0,
            escalations: 0,
            off_fraction: 0.5,
            dynamic_pj: 1.0,
            static_pj: 2.0,
            overhead_pj: 0.5,
            baseline_static_pj: 4.0,
            completed: true,
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("punchsim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::new(dir)
    }

    #[test]
    fn save_then_load_roundtrips() {
        let store = temp_store("roundtrip");
        let s = spec(1);
        assert_eq!(store.load(&s), None);
        store.save(&s, &metrics()).unwrap();
        assert_eq!(store.load(&s), Some(metrics()));
        // A different seed is a different key.
        assert_eq!(store.load(&spec(2)), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_or_mismatched_entries_miss() {
        let store = temp_store("corrupt");
        let s = spec(3);
        let path = store.save(&s, &metrics()).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        assert_eq!(store.load(&s), None);
        // Valid JSON but wrong embedded hash must also miss.
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SCHEMA_VERSION.to_string()));
        doc.push("id", Json::Str(s.id()));
        doc.push("hash", Json::Str("0000000000000000".to_string()));
        doc.push("metrics", metrics().to_json());
        std::fs::write(&path, doc.render()).unwrap();
        assert_eq!(store.load(&s), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
