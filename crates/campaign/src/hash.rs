//! Content hashing for campaign configurations.
//!
//! The result store keys each run on a 64-bit digest of everything that can
//! change its outcome: schema version, workload parameters, scheme, and
//! seed. The digest is FNV-1a over a length-prefixed field encoding,
//! finished through the SplitMix64 mixer for avalanche — the same
//! hand-rolled, dependency-free spirit as `SimRng`.

/// An incremental FNV-1a 64-bit hasher with a SplitMix64 finisher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    h: u64,
}

const OFFSET_BASIS: u64 = 0xcbf29ce484222325;
const PRIME: u64 = 0x100000001b3;

impl Fnv64 {
    /// A fresh hasher.
    pub fn new() -> Fnv64 {
        Fnv64 { h: OFFSET_BASIS }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Feeds an `f64` by bit pattern, so every distinct value (including
    /// negative zero) hashes distinctly and no rounding is involved.
    pub fn write_f64(&mut self, v: f64) -> &mut Fnv64 {
        self.write_u64(v.to_bits())
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) -> &mut Fnv64 {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// The digest. FNV-1a mixes low bits weakly, so finish through the
    /// SplitMix64 permutation.
    pub fn finish(&self) -> u64 {
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned: store filenames embed this digest, so accidental algorithm
        // changes must be caught (they would silently invalidate caches).
        let mut h = Fnv64::new();
        h.write_str("punchsim").write_u64(2015).write_f64(0.005);
        assert_eq!(h.finish(), 0xa1e81370b4f4aa7f);
    }

    #[test]
    fn field_boundaries_matter() {
        let ab_c = {
            let mut h = Fnv64::new();
            h.write_str("ab").write_str("c");
            h.finish()
        };
        let a_bc = {
            let mut h = Fnv64::new();
            h.write_str("a").write_str("bc");
            h.finish()
        };
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn single_bit_input_changes_diffuse() {
        let base = {
            let mut h = Fnv64::new();
            h.write_u64(0);
            h.finish()
        };
        let flipped = {
            let mut h = Fnv64::new();
            h.write_u64(1);
            h.finish()
        };
        assert!((base ^ flipped).count_ones() > 16, "weak diffusion");
    }
}
