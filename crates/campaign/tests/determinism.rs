//! Campaign-level determinism: the same specs and seeds must produce
//! byte-identical deterministic artifacts on 1 worker and on N workers,
//! with or without the result store in the loop.

use punchsim_campaign::{CampaignReport, Json, RunSpec, Runner, Store, Workload};
use punchsim_traffic::TrafficPattern;
use punchsim_types::{Mesh, RoutingKind, SchemeKind};

fn specs() -> Vec<RunSpec> {
    let mut v = Vec::new();
    for (i, pattern) in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::Neighbor,
    ]
    .into_iter()
    .enumerate()
    {
        for scheme in [SchemeKind::ConvOptPg, SchemeKind::PowerPunchFull] {
            v.push(RunSpec {
                scheme,
                seed: 40 + i as u64,
                workload: Workload::Synthetic {
                    pattern,
                    topo: Mesh::new(4, 4).into(),
                    routing: RoutingKind::Xy,
                    rate: 0.03,
                    warmup_cycles: 100,
                    measure_cycles: 500,
                },
            });
        }
    }
    v
}

fn artifact_bytes(threads: usize, store: Option<Store>) -> String {
    let specs = specs();
    let runner = Runner {
        threads,
        store,
        ..Default::default()
    };
    let report = CampaignReport {
        name: "determinism".to_string(),
        threads,
        outcomes: runner.run(&specs),
        // Wall-clock never enters the deterministic artifact; prove it by
        // varying it wildly here.
        wall_nanos: 1_000_000 * threads as u64,
    };
    assert_eq!(report.failures(), 0);
    report.to_json().render()
}

#[test]
fn one_thread_and_many_threads_render_identical_artifacts() {
    let serial = artifact_bytes(1, None);
    let parallel = artifact_bytes(4, None);
    assert_eq!(
        serial, parallel,
        "artifact bytes must not depend on threads"
    );
    // And the artifact is valid JSON with every run present.
    let doc = Json::parse(&serial).unwrap();
    assert_eq!(
        doc.get("runs").unwrap().as_arr().unwrap().len(),
        specs().len()
    );
}

#[test]
fn cache_hits_render_the_same_artifact_as_fresh_runs() {
    let dir =
        std::env::temp_dir().join(format!("punchsim-determinism-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = artifact_bytes(2, Some(Store::new(&dir)));
    let cached = artifact_bytes(3, Some(Store::new(&dir)));
    assert_eq!(fresh, cached, "cache hits must not change artifact bytes");
    assert_eq!(fresh, artifact_bytes(1, None));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spec_order_is_preserved_in_the_artifact() {
    let specs = specs();
    let runner = Runner {
        threads: 4,
        store: None,
        ..Default::default()
    };
    let outcomes = runner.run(&specs);
    let ids: Vec<String> = outcomes
        .iter()
        .map(|o| o.record().unwrap().spec.id())
        .collect();
    let expected: Vec<String> = specs.iter().map(RunSpec::id).collect();
    assert_eq!(ids, expected);
}
