//! The per-event / per-cycle router energy model.

use punchsim_noc::NetworkReport;
use punchsim_types::SchemeKind;

/// Energy of one measured window, decomposed the way Figure 11 of the paper
/// plots it: dynamic (activity-driven), static (leakage while powered), and
/// power-gating overhead (wake bursts, sleep distribution, punch/WU wires).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activity-proportional energy, in picojoules.
    pub dynamic_pj: f64,
    /// Leakage energy of powered-on routers (plus the always-on controller
    /// residual of gated routers), in picojoules.
    pub static_pj: f64,
    /// Energy wasted by power-gating itself: wake transients (break-even
    /// accounting), punch-signal and WU wire switching, in picojoules.
    pub overhead_pj: f64,
}

impl EnergyBreakdown {
    /// Total router energy.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.static_pj + self.overhead_pj
    }

    /// Static energy including PG overhead — the paper's "total router
    /// static energy" bar (the bottom two bars of Figure 11), used for the
    /// net static-savings comparison.
    pub fn net_static_pj(&self) -> f64 {
        self.static_pj + self.overhead_pj
    }
}

/// A DSENT-like analytical router power model at 45 nm / 1 GHz.
///
/// Constants are per-event energies in picojoules and per-cycle leakage in
/// picojoules per cycle (numerically equal to mW at 1 GHz).
///
/// # Examples
///
/// ```
/// use punchsim_power::PowerModel;
///
/// let m = PowerModel::default_45nm();
/// // Figure 12 anchor: 64 always-on routers burn ~1.8 W of static power.
/// let w = 64.0 * m.router_static_pj_per_cycle / 1000.0; // pJ/ns -> W
/// assert!((1.6..2.0).contains(&w));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Leakage of one powered-on router per cycle (pJ); ≈ 28 mW at 1 GHz.
    pub router_static_pj_per_cycle: f64,
    /// Fraction of router static that remains when gated (the always-on
    /// PG controller and retention logic).
    pub gated_residual: f64,
    /// Buffer write energy per flit (pJ).
    pub buffer_write_pj: f64,
    /// Buffer read energy per flit (pJ).
    pub buffer_read_pj: f64,
    /// Crossbar traversal energy per flit (pJ).
    pub crossbar_pj: f64,
    /// Allocator arbitration energy per grant (pJ).
    pub arbitration_pj: f64,
    /// Link traversal energy per flit per hop (pJ, 128-bit link).
    pub link_pj: f64,
    /// NI processing energy per flit (pJ).
    pub ni_pj: f64,
    /// Punch-signal wire energy per link traversal (pJ; a 5-bit sideband
    /// next to a 128-bit link).
    pub punch_hop_pj: f64,
    /// WU wire assertion energy (pJ).
    pub wu_pj: f64,
    /// Break-even time in cycles: one wake burst costs
    /// `break_even_time x router_static_pj_per_cycle`.
    pub break_even_time: f64,
}

impl PowerModel {
    /// The calibrated 45 nm model used throughout the evaluation.
    pub fn default_45nm() -> Self {
        PowerModel {
            router_static_pj_per_cycle: 28.0,
            gated_residual: 0.02,
            buffer_write_pj: 12.0,
            buffer_read_pj: 10.0,
            crossbar_pj: 15.0,
            arbitration_pj: 1.0,
            link_pj: 12.0,
            ni_pj: 5.0,
            punch_hop_pj: 0.6,
            wu_pj: 0.1,
            break_even_time: 10.0,
        }
    }

    /// The 45 nm model adjusted for a scheme's microarchitecture, per the
    /// scheme's registered [`SchemePowerProfile`]: a bufferless ring
    /// router leaks less (no buffer leakage) and spends less per-flit
    /// buffer energy but pays extra link energy for deflected hops; an
    /// SDM circuit router moves established-circuit flits through cheap
    /// pre-configured lanes.
    ///
    /// Every scheme whose profile is `SchemePowerProfile::BASELINE` — all
    /// five schemes of the paper's figures — gets a model bit-identical to
    /// [`PowerModel::default_45nm`] (the scales are exactly `1.0`), which
    /// keeps historical BENCH artifacts byte-stable.
    ///
    /// [`SchemePowerProfile`]: punchsim_types::SchemePowerProfile
    pub fn for_scheme(scheme: SchemeKind) -> Self {
        let p = scheme.power_profile();
        let base = Self::default_45nm();
        PowerModel {
            router_static_pj_per_cycle: base.router_static_pj_per_cycle * p.static_scale,
            buffer_write_pj: base.buffer_write_pj * p.buffer_dynamic_scale,
            buffer_read_pj: base.buffer_read_pj * p.buffer_dynamic_scale,
            link_pj: base.link_pj + p.extra_link_pj,
            ..base
        }
    }

    /// Computes the energy breakdown of a measured window.
    pub fn breakdown(&self, r: &NetworkReport) -> EnergyBreakdown {
        let a = &r.activity;
        let dynamic_pj = a.buffer_writes as f64 * self.buffer_write_pj
            + a.buffer_reads as f64 * self.buffer_read_pj
            + a.crossbar_traversals as f64 * self.crossbar_pj
            + (a.va_grants + a.sa_grants) as f64 * self.arbitration_pj
            + r.stats.link_traversals as f64 * self.link_pj
            + r.ni_flits as f64 * self.ni_pj;
        let total_router_cycles = r.cycles as f64 * r.routers as f64;
        let gated_cycles = (r.pg.total_off_cycles() + r.pg.total_waking_cycles()) as f64;
        let powered_cycles = (total_router_cycles - gated_cycles).max(0.0);
        let static_pj = powered_cycles * self.router_static_pj_per_cycle
            + gated_cycles * self.router_static_pj_per_cycle * self.gated_residual;
        let overhead_pj = r.pg.total_wake_events() as f64
            * self.break_even_time
            * self.router_static_pj_per_cycle
            + r.pg.punch_hops as f64 * self.punch_hop_pj
            + r.pg.wu_assertions as f64 * self.wu_pj;
        EnergyBreakdown {
            dynamic_pj,
            static_pj,
            overhead_pj,
        }
    }

    /// Average router static power (including PG overhead) over the window,
    /// in watts at 1 GHz — the Figure 12 bottom-row metric.
    pub fn static_power_watts(&self, r: &NetworkReport) -> f64 {
        if r.cycles == 0 {
            return 0.0;
        }
        self.breakdown(r).net_static_pj() / r.cycles as f64 / 1000.0
    }

    /// The `No-PG` static energy of the same window (every router on for
    /// every cycle) — the denominator of the paper's "savings of router
    /// static energy" percentages.
    pub fn baseline_static_pj(&self, r: &NetworkReport) -> f64 {
        r.cycles as f64 * r.routers as f64 * self.router_static_pj_per_cycle
    }

    /// Fraction of `No-PG` static energy saved net of all PG overheads.
    pub fn static_savings(&self, r: &NetworkReport) -> f64 {
        let base = self.baseline_static_pj(r);
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.breakdown(r).net_static_pj() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_noc::{NetStats, PgCounters, RouterActivity};
    use punchsim_types::SchemeKind;

    fn report(cycles: u64, routers: usize) -> NetworkReport {
        NetworkReport {
            scheme: SchemeKind::NoPg,
            routers,
            cycles,
            stats: NetStats::default(),
            activity: RouterActivity::default(),
            pg: PgCounters::new(routers),
            ni_flits: 0,
            offered_load: 0.0,
        }
    }

    #[test]
    fn no_pg_has_full_static_no_overhead() {
        let m = PowerModel::default_45nm();
        let r = report(1000, 64);
        let b = m.breakdown(&r);
        assert_eq!(b.dynamic_pj, 0.0);
        assert_eq!(b.overhead_pj, 0.0);
        assert_eq!(b.static_pj, 1000.0 * 64.0 * 28.0);
        assert_eq!(m.static_savings(&r), 0.0);
    }

    #[test]
    fn off_cycles_save_static() {
        let m = PowerModel::default_45nm();
        let mut r = report(1000, 2);
        r.pg.off_cycles = vec![900, 0];
        let b = m.breakdown(&r);
        // 1100 powered cycles + residual for 900.
        let expected = 1100.0 * 28.0 + 900.0 * 28.0 * 0.02;
        assert!((b.static_pj - expected).abs() < 1e-9);
        assert!(m.static_savings(&r) > 0.4);
    }

    #[test]
    fn break_even_time_is_honored() {
        // An off period of exactly BET cycles nets out to ~zero savings.
        let m = PowerModel::default_45nm();
        let mut r = report(100, 1);
        r.pg.off_cycles = vec![10];
        r.pg.wake_events = vec![1];
        let b = m.breakdown(&r);
        let saved = 10.0 * 28.0 * (1.0 - 0.02);
        let cost = 10.0 * 28.0;
        assert!((b.net_static_pj() - (100.0 * 28.0 - saved + cost)).abs() < 1e-9);
        // Net effect is slightly negative (residual leakage): gating a
        // BET-length idle period does not pay off — hence the filter.
        assert!(m.static_savings(&r) <= 0.0);
    }

    #[test]
    fn dynamic_counts_all_events() {
        let m = PowerModel::default_45nm();
        let mut r = report(10, 1);
        r.activity.buffer_writes = 2;
        r.activity.buffer_reads = 2;
        r.activity.crossbar_traversals = 2;
        r.activity.va_grants = 1;
        r.activity.sa_grants = 2;
        r.stats.link_traversals = 3;
        r.ni_flits = 4;
        let b = m.breakdown(&r);
        let expected = 2.0 * 12.0 + 2.0 * 10.0 + 2.0 * 15.0 + 3.0 * 1.0 + 3.0 * 12.0 + 4.0 * 5.0;
        assert!((b.dynamic_pj - expected).abs() < 1e-9);
    }

    #[test]
    fn baseline_profiles_reproduce_default_model_exactly() {
        // The five schemes of the paper's figures must keep byte-stable
        // BENCH artifacts: their per-scheme model is the default model,
        // bit for bit.
        let base = PowerModel::default_45nm();
        for k in [
            SchemeKind::NoPg,
            SchemeKind::ConvPg,
            SchemeKind::ConvOptPg,
            SchemeKind::PowerPunchSignal,
            SchemeKind::PowerPunchFull,
        ] {
            assert_eq!(PowerModel::for_scheme(k), base, "{k} model drifted");
        }
    }

    #[test]
    fn rival_profiles_shift_the_model() {
        let base = PowerModel::default_45nm();
        let ring = PowerModel::for_scheme(SchemeKind::RingRouter);
        // No buffers: less leakage and cheaper per-flit buffer energy, but
        // deflections make link traversals pricier.
        assert!(ring.router_static_pj_per_cycle < base.router_static_pj_per_cycle);
        assert!(ring.buffer_write_pj < base.buffer_write_pj);
        assert!(ring.link_pj > base.link_pj);
        let sdm = PowerModel::for_scheme(SchemeKind::SdmCircuit);
        // Established circuits skip buffering; leakage is unchanged.
        assert_eq!(
            sdm.router_static_pj_per_cycle,
            base.router_static_pj_per_cycle
        );
        assert!(sdm.buffer_read_pj < base.buffer_read_pj);
    }

    #[test]
    fn static_share_near_64pct_at_parsec_load() {
        // Calibration anchor (§2.1): with ~0.05 flits/node/cycle of traffic
        // travelling ~6 hops, static should be ~64% of total router power.
        let m = PowerModel::default_45nm();
        let cycles = 100_000u64;
        let routers = 64usize;
        let mut r = report(cycles, routers);
        let flits = 0.05 * cycles as f64 * routers as f64;
        let hops = 5.3;
        r.activity.buffer_writes = (flits * (hops + 1.0)) as u64;
        r.activity.buffer_reads = r.activity.buffer_writes;
        r.activity.crossbar_traversals = r.activity.buffer_writes;
        r.activity.sa_grants = r.activity.buffer_writes;
        r.activity.va_grants = (flits / 5.0) as u64;
        r.stats.link_traversals = (flits * hops) as u64;
        r.ni_flits = (flits * 2.0) as u64;
        let b = m.breakdown(&r);
        let share = b.static_pj / b.total_pj();
        assert!(
            (0.55..0.72).contains(&share),
            "static share {share} outside calibration band"
        );
    }
}
