//! Router energy and area models for `punchsim`.
//!
//! The paper obtains router power from DSENT at 45 nm. We reproduce an
//! analytical model of the same structure — per-component static power,
//! per-event dynamic energy, and power-gating overhead anchored to the
//! break-even time — calibrated to the paper's two observable anchors:
//!
//! * router static power is ~64% of total router power at PARSEC-average
//!   load (§2.1);
//! * total 8x8-mesh router static power is ≈ 1.8 W (Figure 12, bottom row).
//!
//! All energy results in the paper are *ratios* against the same model's
//! `No-PG` baseline, so any internally consistent calibration that matches
//! the anchors reproduces the reported savings; see DESIGN.md.

pub mod area;
pub mod model;

pub use area::AreaModel;
pub use model::{EnergyBreakdown, PowerModel};
