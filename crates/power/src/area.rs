//! NoC area model for the hardware-cost discussion (§6.6(1) of the paper).
//!
//! The paper reports that the punch wires plus their combinational relay
//! logic add about **2.4% of NoC area** relative to conventional
//! power-gating. This module reproduces that estimate from first-order
//! constants: the paper's router layout (451 um x 451 um at 45 nm), link
//! wiring proportional to bit count, and a small per-bit relay-logic cost.

use punchsim_types::SchemeKind;

/// Fraction of a buffered router's layout occupied by its input buffers
/// (DSENT-style split at 45 nm) — the area a bufferless ring router
/// reclaims.
const BUFFER_AREA_FRACTION: f64 = 0.35;

/// First-order NoC area model at 45 nm.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// One router's layout area in um^2 (the paper's 451 um x 451 um).
    pub router_um2: f64,
    /// Wiring + repeater area per link bit in um^2 (128-bit links span one
    /// ~1 mm tile edge; global-layer wire pitch and drivers at 45 nm).
    pub per_link_bit_um2: f64,
    /// Data link width in bits.
    pub link_bits: u32,
    /// Relay/encode logic area per punch-signal bit in um^2 (a handful of
    /// gates per bit, per §6.6: "a direct combinational logic function").
    pub per_punch_bit_logic_um2: f64,
    /// Extra PG-controller area per router for punch handling, um^2.
    pub punch_controller_um2: f64,
}

impl AreaModel {
    /// The calibrated 45 nm model.
    pub fn default_45nm() -> Self {
        AreaModel {
            router_um2: 451.0 * 451.0,
            per_link_bit_um2: 420.0,
            link_bits: 128,
            per_punch_bit_logic_um2: 60.0,
            punch_controller_um2: 900.0,
        }
    }

    /// The 45 nm model adjusted for a scheme's router microarchitecture:
    /// schemes registered as bufferless (per their
    /// [`punchsim_types::SchemePowerProfile`]) shed the input-buffer share
    /// of the router layout. Buffered schemes — all five of the paper's
    /// figures — get a model identical to [`AreaModel::default_45nm`].
    pub fn for_scheme(scheme: SchemeKind) -> Self {
        let base = Self::default_45nm();
        if scheme.power_profile().buffered {
            base
        } else {
            AreaModel {
                router_um2: base.router_um2 * (1.0 - BUFFER_AREA_FRACTION),
                ..base
            }
        }
    }

    /// Baseline NoC area per tile: router + the data links it drives
    /// (two directed links' worth of wiring on average per router in a
    /// mesh, X and Y), plus conventional PG handshake wires (negligible).
    pub fn baseline_tile_um2(&self) -> f64 {
        self.router_um2 + 2.0 * self.link_bits as f64 * self.per_link_bit_um2
    }

    /// Punch-signal area added per tile for the given wire widths
    /// (e.g. 5-bit X, 2-bit Y at H=3): outgoing wires in all four
    /// directions plus relay logic and controller additions.
    pub fn punch_tile_um2(&self, x_bits: u32, y_bits: u32) -> f64 {
        let wire_bits = 2.0 * x_bits as f64 + 2.0 * y_bits as f64;
        wire_bits * self.per_link_bit_um2
            + wire_bits * self.per_punch_bit_logic_um2
            + self.punch_controller_um2
    }

    /// Punch area overhead as a fraction of baseline NoC area — the
    /// paper's "2.4% of additional NoC area" figure for 5/2-bit signals.
    pub fn punch_overhead(&self, x_bits: u32, y_bits: u32) -> f64 {
        self.punch_tile_um2(x_bits, y_bits) / self.baseline_tile_um2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h3_overhead_near_paper_2_4_pct() {
        let m = AreaModel::default_45nm();
        let o = m.punch_overhead(5, 2);
        assert!(
            (0.020..0.029).contains(&o),
            "H=3 punch overhead {o} outside the paper's ~2.4% band"
        );
    }

    #[test]
    fn h4_costs_more_than_h3() {
        let m = AreaModel::default_45nm();
        assert!(m.punch_overhead(8, 3) > m.punch_overhead(5, 2));
    }

    #[test]
    fn buffered_schemes_keep_the_default_area_model() {
        let base = AreaModel::default_45nm();
        for k in SchemeKind::ALL {
            if k.power_profile().buffered {
                assert_eq!(AreaModel::for_scheme(k), base, "{k} area drifted");
            }
        }
    }

    #[test]
    fn bufferless_ring_router_is_smaller() {
        let base = AreaModel::default_45nm();
        let ring = AreaModel::for_scheme(SchemeKind::RingRouter);
        assert!(ring.router_um2 < base.router_um2);
        assert_eq!(ring.per_link_bit_um2, base.per_link_bit_um2);
        assert!(ring.baseline_tile_um2() < base.baseline_tile_um2());
    }

    #[test]
    fn overhead_scales_with_bits() {
        let m = AreaModel::default_45nm();
        assert!(m.punch_overhead(0, 0) < 0.01); // controller only
        assert!(m.punch_overhead(5, 2) < m.punch_overhead(10, 4));
    }
}
