//! PARSEC-like benchmark presets and the synthetic cores that execute them.
//!
//! The paper evaluates on eight multi-threaded PARSEC benchmarks under
//! gem5 full-system simulation. We cannot ship PARSEC + an x86 OS, so each
//! benchmark becomes a *workload preset*: a synthetic in-order core per tile
//! executing a parameterized instruction mix (compute bursts, private and
//! shared memory references, read/write ratio, working-set sizes) chosen to
//! produce the same class of NoC behaviour — low average load, bursty
//! coherence traffic, and execution time that responds to network latency.
//! DESIGN.md documents this substitution.

use punchsim_types::SimRng;

use crate::protocol::BlockAddr;

/// A PARSEC-like workload preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Option pricing: tiny working set, almost no sharing, lowest traffic.
    Blackscholes,
    /// Body tracking: medium traffic, moderate read sharing.
    Bodytrack,
    /// Cache-hostile simulated annealing: large random working set, the
    /// highest network load of the suite.
    Canneal,
    /// Pipelined compression: high traffic, producer-consumer sharing.
    Dedup,
    /// Content-based similarity search: medium-high, shared read-mostly.
    Ferret,
    /// Fluid dynamics: neighbour sharing, medium-low traffic.
    Fluidanimate,
    /// Monte-Carlo swaption pricing: compute-bound, very low traffic.
    Swaptions,
    /// Video encoding: medium traffic, bursty, write-heavy shared refs.
    X264,
}

impl Benchmark {
    /// The eight benchmarks of the paper's figures, in figure order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Swaptions,
        Benchmark::X264,
    ];

    /// Lower-case display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Swaptions => "swaptions",
            Benchmark::X264 => "x264",
        }
    }

    /// The workload parameters of this preset.
    pub fn params(self) -> WorkloadParams {
        // private_blocks: per-core private working set (64 B blocks).
        // shared_blocks: global shared working set.
        // mem_ratio: fraction of instructions that reference memory.
        // shared_frac: fraction of references into the shared region.
        // write_frac: fraction of references that are stores.
        // burst: mean compute-burst length between memory instructions is
        //        derived from mem_ratio; `burst_cv` adds irregularity.
        match self {
            Benchmark::Blackscholes => WorkloadParams {
                private_blocks: 180,
                shared_blocks: 50000,
                mem_ratio: 0.22,
                shared_frac: 0.0008,
                write_frac: 0.2,
                hot_frac: 0.0,
            },
            Benchmark::Bodytrack => WorkloadParams {
                private_blocks: 200,
                shared_blocks: 80000,
                mem_ratio: 0.28,
                shared_frac: 0.0018,
                write_frac: 0.22,
                hot_frac: 0.25,
            },
            Benchmark::Canneal => WorkloadParams {
                private_blocks: 220,
                shared_blocks: 500000,
                mem_ratio: 0.32,
                shared_frac: 0.005,
                write_frac: 0.25,
                hot_frac: 0.05,
            },
            Benchmark::Dedup => WorkloadParams {
                private_blocks: 210,
                shared_blocks: 200000,
                mem_ratio: 0.3,
                shared_frac: 0.0028,
                write_frac: 0.3,
                hot_frac: 0.15,
            },
            Benchmark::Ferret => WorkloadParams {
                private_blocks: 200,
                shared_blocks: 150000,
                mem_ratio: 0.3,
                shared_frac: 0.0022,
                write_frac: 0.18,
                hot_frac: 0.2,
            },
            Benchmark::Fluidanimate => WorkloadParams {
                private_blocks: 190,
                shared_blocks: 100000,
                mem_ratio: 0.26,
                shared_frac: 0.0012,
                write_frac: 0.28,
                hot_frac: 0.4,
            },
            Benchmark::Swaptions => WorkloadParams {
                private_blocks: 170,
                shared_blocks: 40000,
                mem_ratio: 0.2,
                shared_frac: 0.0005,
                write_frac: 0.15,
                hot_frac: 0.0,
            },
            Benchmark::X264 => WorkloadParams {
                private_blocks: 210,
                shared_blocks: 120000,
                mem_ratio: 0.29,
                shared_frac: 0.0032,
                write_frac: 0.35,
                hot_frac: 0.3,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable parameters of a workload preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Per-core private working set in 64 B blocks.
    pub private_blocks: u64,
    /// Shared working set in 64 B blocks.
    pub shared_blocks: u64,
    /// Fraction of instructions that are memory references.
    pub mem_ratio: f64,
    /// Fraction of memory references to the shared region.
    pub shared_frac: f64,
    /// Fraction of memory references that are stores.
    pub write_frac: f64,
    /// Fraction of shared references that hit a small hot subset (models
    /// locks, queues and boundary data — drives invalidation traffic).
    pub hot_frac: f64,
}

/// One memory reference produced by a synthetic core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Referenced block.
    pub addr: BlockAddr,
    /// Store (`true`) or load.
    pub is_write: bool,
}

/// Base of the shared address region (block-address space).
const SHARED_BASE: BlockAddr = 1 << 40;
/// Size of the hot shared subset in blocks.
const HOT_BLOCKS: u64 = 64;

/// A synthetic in-order core executing a workload preset.
///
/// The core alternates compute bursts (1 instruction/cycle) and memory
/// references; it blocks while a reference misses in the L1. This is the
/// mechanism through which NoC latency becomes execution time, as in the
/// paper's full-system runs.
#[derive(Debug, Clone)]
pub struct SyntheticCore {
    params: WorkloadParams,
    core_idx: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Target instruction count.
    pub quota: u64,
    /// Remaining cycles of the current compute burst.
    burst_left: u64,
}

impl SyntheticCore {
    /// Creates a core running `bench` for `quota` instructions.
    pub fn new(bench: Benchmark, core_idx: u64, quota: u64) -> Self {
        SyntheticCore {
            params: bench.params(),
            core_idx,
            retired: 0,
            quota,
            burst_left: 0,
        }
    }

    /// `true` once the instruction quota is met.
    pub fn done(&self) -> bool {
        self.retired >= self.quota
    }

    /// Advances one cycle of compute; returns the memory reference to issue
    /// when the current burst ends, or `None` while still computing (or
    /// when done).
    pub fn tick(&mut self, rng: &mut SimRng) -> Option<MemRef> {
        if self.done() {
            return None;
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.retired += 1;
            return None;
        }
        // End of burst: issue one memory instruction and draw the next
        // burst length (geometric with mean (1-mem_ratio)/mem_ratio).
        self.retired += 1;
        let mean = (1.0 - self.params.mem_ratio) / self.params.mem_ratio;
        let u: f64 = rng.random_f64();
        self.burst_left = (-(1.0 - u).ln() * mean).round() as u64;
        Some(self.gen_ref(rng))
    }

    /// Acknowledge that the pending reference completed (the core resumes).
    pub fn resume(&mut self) {}

    fn gen_ref(&self, rng: &mut SimRng) -> MemRef {
        let p = &self.params;
        let is_write;
        let addr;
        if rng.random_f64() < p.shared_frac {
            is_write = rng.random_f64() < p.write_frac;
            let hot = rng.random_f64() < p.hot_frac;
            let span = if hot { HOT_BLOCKS } else { p.shared_blocks };
            addr = SHARED_BASE + rng.random_range(0..span);
        } else {
            is_write = rng.random_f64() < p.write_frac;
            let base = (self.core_idx + 1) << 24;
            addr = base + rng.random_range(0..p.private_blocks);
        }
        MemRef { addr, is_write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_all_eight() {
        assert_eq!(Benchmark::ALL.len(), 8);
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"canneal"));
        for b in Benchmark::ALL {
            let p = b.params();
            assert!(p.mem_ratio > 0.0 && p.mem_ratio < 1.0);
            assert!(p.shared_frac >= 0.0 && p.shared_frac <= 1.0);
            assert!(p.private_blocks > 0);
        }
    }

    #[test]
    fn core_retires_quota_and_stops() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut c = SyntheticCore::new(Benchmark::Swaptions, 0, 1_000);
        let mut refs = 0;
        let mut cycles = 0u64;
        while !c.done() {
            cycles += 1;
            if c.tick(&mut rng).is_some() {
                refs += 1;
            }
            assert!(cycles < 100_000, "must terminate");
        }
        assert_eq!(c.retired, 1_000);
        assert!(c.tick(&mut rng).is_none());
        // Memory ratio roughly honoured.
        let ratio = refs as f64 / 1_000.0;
        assert!((0.1..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn private_refs_are_core_disjoint() {
        let mut rng = SimRng::seed_from_u64(9);
        let c0 = SyntheticCore::new(Benchmark::Blackscholes, 0, 10);
        let c1 = SyntheticCore::new(Benchmark::Blackscholes, 1, 10);
        for _ in 0..200 {
            let a = c0.gen_ref(&mut rng);
            let b = c1.gen_ref(&mut rng);
            if a.addr < SHARED_BASE && b.addr < SHARED_BASE {
                assert_ne!(a.addr >> 24, b.addr >> 24);
            }
        }
    }

    #[test]
    fn shared_refs_land_in_shared_region() {
        let mut rng = SimRng::seed_from_u64(11);
        let c = SyntheticCore::new(Benchmark::Canneal, 3, 10);
        let span = Benchmark::Canneal.params().shared_blocks;
        let mut saw_shared = false;
        for _ in 0..500 {
            let r = c.gen_ref(&mut rng);
            if r.addr >= SHARED_BASE {
                saw_shared = true;
                assert!(r.addr < SHARED_BASE + span);
            }
        }
        assert!(saw_shared, "canneal must reference shared data");
    }
}
