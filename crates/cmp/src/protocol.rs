//! MESI directory-protocol messages and their wire encoding.
//!
//! The protocol is a two-level MESI with a blocking full-map directory
//! co-located with the shared L2 banks, using the minimum three virtual
//! networks for deadlock freedom (Table 2 of the paper):
//!
//! * **vnet 0 — request**: `GetS`, `GetM`, `PutM`/`PutE` from L1s to homes;
//! * **vnet 1 — forward**: `Inv`, `FwdGetS`, `FwdGetM` from homes to
//!   owners/sharers, plus home-to-memory fetches;
//! * **vnet 2 — response**: data and acknowledgements, which always sink.
//!
//! The dependence chain request -> forward -> response is acyclic, and
//! responses are always consumed, so the protocol cannot deadlock on the
//! message level.

use punchsim_noc::MsgClass;
use punchsim_types::{NodeId, VnetId};

/// A cache-block address (block-aligned; granularities below 64 B do not
/// exist at this level).
pub type BlockAddr = u64;

/// Protocol message opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// L1 -> home: read miss (wants Shared or Exclusive-clean).
    GetS,
    /// L1 -> home: write miss or upgrade (wants Modified).
    GetM,
    /// L1 -> home: dirty writeback (carries data).
    PutM,
    /// L1 -> home: clean-exclusive eviction notice.
    PutE,
    /// Home -> sharer: invalidate; reply `InvAck` to the home.
    Inv,
    /// Home -> owner: another core wants a shared copy; send data home.
    FwdGetS,
    /// Home -> owner: another core wants ownership; send data home.
    FwdGetM,
    /// Home -> memory controller: fetch a block.
    MemRead,
    /// Home -> memory controller: write a block back.
    MemWrite,
    /// Memory controller -> home: fetched data.
    MemData,
    /// Home -> L1: shared data grant.
    Data,
    /// Home -> L1: exclusive data grant (E on loads with no sharers, M on
    /// stores).
    DataExcl,
    /// Sharer -> home: invalidation acknowledged.
    InvAck,
    /// Owner -> home: data yielded on a forward (downgrade or transfer).
    OwnerData,
    /// Old owner -> home: forward raced a writeback; the home completed the
    /// transaction with `PutM` data, drop this.
    FwdNack,
    /// Home -> L1: writeback observed / eviction notice accepted.
    WbAck,
}

impl Op {
    /// All opcodes, for table-driven tests.
    pub const ALL: [Op; 16] = [
        Op::GetS,
        Op::GetM,
        Op::PutM,
        Op::PutE,
        Op::Inv,
        Op::FwdGetS,
        Op::FwdGetM,
        Op::MemRead,
        Op::MemWrite,
        Op::MemData,
        Op::Data,
        Op::DataExcl,
        Op::InvAck,
        Op::OwnerData,
        Op::FwdNack,
        Op::WbAck,
    ];

    fn code(self) -> u64 {
        Op::ALL.iter().position(|&o| o == self).expect("in table") as u64
    }

    fn from_code(c: u64) -> Option<Op> {
        Op::ALL.get(c as usize).copied()
    }

    /// The virtual network this opcode travels on.
    pub fn vnet(self) -> VnetId {
        match self {
            Op::GetS | Op::GetM | Op::PutM | Op::PutE => VnetId(0),
            Op::Inv | Op::FwdGetS | Op::FwdGetM | Op::MemRead | Op::MemWrite => VnetId(1),
            Op::MemData
            | Op::Data
            | Op::DataExcl
            | Op::InvAck
            | Op::OwnerData
            | Op::FwdNack
            | Op::WbAck => VnetId(2),
        }
    }

    /// Whether the message carries a cache line (multi-flit data packet).
    pub fn class(self) -> MsgClass {
        match self {
            Op::PutM | Op::MemData | Op::Data | Op::DataExcl | Op::OwnerData | Op::MemWrite => {
                MsgClass::Data
            }
            _ => MsgClass::Control,
        }
    }
}

/// A decoded protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoMsg {
    /// Operation.
    pub op: Op,
    /// Block the operation concerns.
    pub addr: BlockAddr,
    /// Auxiliary node (the original requestor in forwards; unused = 0).
    pub aux: NodeId,
}

impl ProtoMsg {
    /// Creates a message with no auxiliary node.
    pub fn new(op: Op, addr: BlockAddr) -> Self {
        ProtoMsg {
            op,
            addr,
            aux: NodeId(0),
        }
    }

    /// Creates a message carrying the original requestor.
    pub fn with_aux(op: Op, addr: BlockAddr, aux: NodeId) -> Self {
        ProtoMsg { op, addr, aux }
    }

    /// Packs into the network payload word: op in bits 60..64, aux in bits
    /// 48..60, block address in bits 0..48.
    ///
    /// # Panics
    ///
    /// Panics if the block address exceeds 48 bits.
    pub fn encode(self) -> u64 {
        assert!(self.addr < (1 << 48), "block address too wide");
        (self.op.code() << 60) | ((self.aux.0 as u64) << 48) | self.addr
    }

    /// Unpacks from a network payload word.
    pub fn decode(w: u64) -> Option<ProtoMsg> {
        let op = Op::from_code(w >> 60)?;
        Some(ProtoMsg {
            op,
            addr: w & ((1 << 48) - 1),
            aux: NodeId(((w >> 48) & 0xFFF) as u16),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_ops() {
        for op in Op::ALL {
            let m = ProtoMsg::with_aux(op, 0x1234_5678_9ABC, NodeId(63));
            let d = ProtoMsg::decode(m.encode()).unwrap();
            assert_eq!(d, m);
        }
    }

    #[test]
    fn vnets_are_acyclic_by_class() {
        // Requests on 0, forwards on 1, responses on 2 — and every opcode
        // is assigned.
        for op in Op::ALL {
            let v = op.vnet().0;
            assert!(v < 3);
        }
        assert_eq!(Op::GetS.vnet(), VnetId(0));
        assert_eq!(Op::Inv.vnet(), VnetId(1));
        assert_eq!(Op::Data.vnet(), VnetId(2));
    }

    #[test]
    fn data_messages_are_multi_flit() {
        assert_eq!(Op::Data.class(), MsgClass::Data);
        assert_eq!(Op::PutM.class(), MsgClass::Data);
        assert_eq!(Op::GetS.class(), MsgClass::Control);
        assert_eq!(Op::InvAck.class(), MsgClass::Control);
    }

    #[test]
    #[should_panic]
    fn wide_address_rejected() {
        ProtoMsg::new(Op::GetS, 1 << 50).encode();
    }
}
