//! A 64-core CMP substrate for `punchsim`: synthetic cores, private L1s, a
//! shared distributed L2 with a blocking MESI directory, and corner memory
//! controllers — all communicating over the `punchsim-noc` mesh. This is
//! the stand-in for the paper's gem5 + PARSEC full-system platform (the
//! substitution is documented in DESIGN.md).
//!
//! * [`protocol`] — MESI message opcodes, vnet mapping, wire encoding
//! * [`cache`] — generic set-associative tag arrays (L1 and L2)
//! * [`tile`] — the private L1 controller (with the writeback-race buffer)
//! * [`dir`] — the blocking full-map directory + L2 bank
//! * [`mem`] — fixed-latency memory controllers at the mesh corners
//! * [`benchmark`] — the eight PARSEC-like workload presets
//! * [`sim`] — the full-system simulator producing execution time
//!
//! # Examples
//!
//! ```no_run
//! use punchsim_cmp::{Benchmark, CmpConfig, CmpSim};
//! use punchsim_types::SchemeKind;
//!
//! let cfg = CmpConfig::new(Benchmark::Canneal, SchemeKind::PowerPunchFull);
//! let report = CmpSim::new(cfg).run();
//! println!(
//!     "canneal under PowerPunch-PG: {} cycles, latency {:.1}",
//!     report.exec_cycles,
//!     report.net.stats.latency.mean()
//! );
//! ```

pub mod benchmark;
pub mod cache;
pub mod dir;
pub mod mem;
pub mod protocol;
pub mod sim;
pub mod tile;

pub use benchmark::{Benchmark, SyntheticCore, WorkloadParams};
pub use dir::{DirBank, DirState};
pub use mem::MemCtrl;
pub use protocol::{BlockAddr, Op, ProtoMsg};
pub use sim::{CmpConfig, CmpReport, CmpSim};
pub use tile::{L1State, L1};
