//! A generic set-associative cache directory (tags + per-line state, no
//! data values — the simulator tracks coherence, not contents).

use crate::protocol::BlockAddr;

/// One cache line: its block address and a caller-defined state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line<S> {
    /// Block address stored in this way.
    pub addr: BlockAddr,
    /// Coherence (or validity) state.
    pub state: S,
}

/// A set-associative cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use punchsim_cmp::cache::SetAssoc;
///
/// // 4 sets x 2 ways.
/// let mut c: SetAssoc<u8> = SetAssoc::new(4, 2);
/// assert_eq!(c.insert(0x10, 1), None);
/// assert_eq!(c.insert(0x14, 2), None); // same set, second way
/// assert_eq!(c.get(0x10).copied(), Some(1));
/// // Third block in the set evicts the LRU line (0x14).
/// let victim = c.insert(0x18, 3).unwrap();
/// assert_eq!(victim.addr, 0x14);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<S> {
    /// Per set, most-recently-used first.
    sets: Vec<Vec<Line<S>>>,
    ways: usize,
}

impl<S> SetAssoc<S> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        SetAssoc {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
        }
    }

    /// Builds from capacity in blocks.
    pub fn with_capacity_blocks(blocks: usize, ways: usize) -> Self {
        let sets = (blocks / ways).next_power_of_two();
        SetAssoc::new(sets, ways)
    }

    fn set_of(&self, addr: BlockAddr) -> usize {
        // Mix upper bits so strided/private-region addresses spread.
        let h = addr ^ (addr >> 16) ^ (addr >> 32);
        (h as usize) & (self.sets.len() - 1)
    }

    /// Looks up `addr`, refreshing LRU; returns the state if present.
    pub fn get(&mut self, addr: BlockAddr) -> Option<&S> {
        let s = self.set_of(addr);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|l| l.addr == addr)?;
        let line = set.remove(pos);
        set.insert(0, line);
        Some(&set[0].state)
    }

    /// Looks up `addr` without LRU update; returns a mutable state.
    pub fn peek_mut(&mut self, addr: BlockAddr) -> Option<&mut S> {
        let s = self.set_of(addr);
        self.sets[s]
            .iter_mut()
            .find(|l| l.addr == addr)
            .map(|l| &mut l.state)
    }

    /// `true` if `addr` is cached (no LRU update).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        let s = self.set_of(addr);
        self.sets[s].iter().any(|l| l.addr == addr)
    }

    /// Inserts `addr` with `state` as MRU; returns the evicted line if the
    /// set was full. Re-inserting an existing address updates its state.
    pub fn insert(&mut self, addr: BlockAddr, state: S) -> Option<Line<S>> {
        let s = self.set_of(addr);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|l| l.addr == addr) {
            let mut line = set.remove(pos);
            line.state = state;
            set.insert(0, line);
            return None;
        }
        let victim = if set.len() == self.ways {
            set.pop()
        } else {
            None
        };
        set.insert(0, Line { addr, state });
        victim
    }

    /// Removes `addr`, returning its line if it was present.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Line<S>> {
        let s = self.set_of(addr);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|l| l.addr == addr)?;
        Some(set.remove(pos))
    }

    /// The line that would be evicted by inserting a (new) `addr` now.
    pub fn victim_for(&self, addr: BlockAddr) -> Option<&Line<S>> {
        let s = self.set_of(addr);
        let set = &self.sets[s];
        if set.iter().any(|l| l.addr == addr) || set.len() < self.ways {
            None
        } else {
            set.last()
        }
    }

    /// Iterates over all resident lines in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Line<S>> {
        self.sets.iter().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_respected() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(1).copied(), Some(10));
        let v = c.insert(3, 30).unwrap();
        assert_eq!(v.addr, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.get(1).copied(), Some(11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn victim_for_predicts_eviction() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2);
        c.insert(1, 10);
        assert!(c.victim_for(2).is_none()); // set not full
        c.insert(2, 20);
        assert_eq!(c.victim_for(3).unwrap().addr, 1);
        assert!(c.victim_for(1).is_none()); // hit: no eviction
        let v = c.insert(3, 30).unwrap();
        assert_eq!(v.addr, 1);
    }

    #[test]
    fn remove_and_capacity() {
        let mut c: SetAssoc<u8> = SetAssoc::with_capacity_blocks(512, 2);
        for a in 0..600u64 {
            c.insert(a * 64, 0);
        }
        assert!(c.len() <= 512);
        let resident = (0..600u64)
            .map(|a| a * 64)
            .find(|&a| c.contains(a))
            .unwrap();
        assert!(c.remove(resident).is_some());
        assert!(!c.contains(resident));
        assert!(c.remove(resident).is_none());
    }
}
