//! The shared L2 bank + blocking full-map directory of one tile.
//!
//! The directory serializes transactions per block: while one is in flight
//! the block is *busy* and later requests queue behind it. Requests finish
//! by data grant; the serialization plus the L1 writeback buffer resolve
//! every forward/writeback race (see `tile.rs`).

use std::collections::{HashMap, VecDeque};

use punchsim_types::NodeId;

use crate::cache::SetAssoc;
use crate::protocol::{BlockAddr, Op, ProtoMsg};

/// Stable directory state of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No L1 holds the block.
    Uncached,
    /// Read-only copies at the listed L1s (possibly stale after silent S
    /// evictions — those sharers simply ack their invalidations).
    Shared(Vec<NodeId>),
    /// One L1 holds the block in E or M.
    Owned(NodeId),
}

/// What the in-flight transaction is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// A memory fetch.
    Mem,
    /// Data from the current owner (a forward is outstanding).
    OwnerData,
    /// The remaining invalidation acks.
    InvAcks(u32),
}

/// An in-flight transaction.
#[derive(Debug, Clone, Copy)]
struct Txn {
    req: NodeId,
    is_write: bool,
    waiting: Waiting,
}

/// Per-block home-side state.
#[derive(Debug, Clone, Default)]
struct HomeBlock {
    state: Option<DirState>,
    busy: Option<Txn>,
    queue: VecDeque<(NodeId, ProtoMsg)>,
}

/// Directory/L2 activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirStats {
    /// Requests processed (GetS + GetM).
    pub requests: u64,
    /// L2 data hits.
    pub l2_hits: u64,
    /// L2 misses needing a memory fetch.
    pub l2_misses: u64,
    /// Forwards sent to owners.
    pub forwards: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Writebacks accepted.
    pub writebacks: u64,
    /// Requests that had to queue behind a busy block.
    pub queued: u64,
    /// Stale forward-nacks dropped (writeback/forward races).
    pub stale_nacks: u64,
}

/// Messages a directory emits this cycle: `(destination, message)`.
pub type Out = Vec<(NodeId, ProtoMsg)>;

/// One tile's L2 bank and directory slice.
#[derive(Debug, Clone)]
pub struct DirBank {
    node: NodeId,
    /// L2 data array: `true` = dirty with respect to memory.
    l2: SetAssoc<bool>,
    blocks: HashMap<BlockAddr, HomeBlock>,
    /// Memory-controller choice per block, fixed at construction.
    mem_ctrls: Vec<NodeId>,
    /// Activity counters.
    pub stats: DirStats,
}

impl DirBank {
    /// Creates the bank at `node` with `blocks`-block L2 capacity and the
    /// given memory controllers.
    pub fn new(node: NodeId, blocks: usize, ways: usize, mem_ctrls: Vec<NodeId>) -> Self {
        assert!(!mem_ctrls.is_empty(), "need at least one memory controller");
        DirBank {
            node,
            l2: SetAssoc::with_capacity_blocks(blocks, ways),
            blocks: HashMap::new(),
            mem_ctrls,
            stats: DirStats::default(),
        }
    }

    /// This bank's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The memory controller responsible for `addr`.
    fn mem_for(&self, addr: BlockAddr) -> NodeId {
        let h = (addr ^ (addr >> 13)) as usize;
        self.mem_ctrls[h % self.mem_ctrls.len()]
    }

    /// Directory state of a block (test hook).
    pub fn dir_state(&self, addr: BlockAddr) -> DirState {
        self.blocks
            .get(&addr)
            .and_then(|b| b.state.clone())
            .unwrap_or(DirState::Uncached)
    }

    /// `true` if a transaction is in flight for `addr` (test hook).
    pub fn is_busy(&self, addr: BlockAddr) -> bool {
        self.blocks.get(&addr).is_some_and(|b| b.busy.is_some())
    }

    /// Handles a protocol message delivered to this bank.
    pub fn handle(&mut self, src: NodeId, msg: ProtoMsg, out: &mut Out) {
        match msg.op {
            Op::GetS | Op::GetM => {
                let b = self.blocks.entry(msg.addr).or_default();
                if b.busy.is_some() {
                    self.stats.queued += 1;
                    b.queue.push_back((src, msg));
                } else {
                    self.start(src, msg, out);
                }
            }
            Op::PutM | Op::PutE => self.handle_put(src, msg, out),
            Op::OwnerData => self.handle_owner_data(src, msg.addr, false, out),
            Op::InvAck => self.handle_inv_ack(msg.addr, out),
            Op::MemData => self.handle_mem_data(msg.addr, out),
            Op::FwdNack => {
                // A forward that raced a writeback and lost: its
                // transaction was already completed by the owner's PutM.
                // The block may even be busy again with a *newer*
                // transaction (a long-delayed forward can arrive after the
                // WbAck that emptied the old owner's buffer) — that newer
                // transaction's own forward targets the current owner and
                // will be answered, so the stale nack is always dropped.
                self.stats.stale_nacks += 1;
            }
            other => panic!("directory at {} received unexpected {:?}", self.node, other),
        }
        self.drain_queue(msg.addr, out);
    }

    /// Starts a (GetS|GetM) transaction; the block must not be busy.
    fn start(&mut self, req: NodeId, msg: ProtoMsg, out: &mut Out) {
        self.stats.requests += 1;
        let is_write = msg.op == Op::GetM;
        let addr = msg.addr;
        let state = self.dir_state(addr);
        match state {
            DirState::Uncached => {
                self.grant_or_fetch(addr, req, is_write, out);
            }
            DirState::Shared(sharers) => {
                if !is_write {
                    // Another shared copy.
                    if self.l2.get(addr).is_some() {
                        self.stats.l2_hits += 1;
                        out.push((req, ProtoMsg::new(Op::Data, addr)));
                        let mut s = sharers;
                        if !s.contains(&req) {
                            s.push(req);
                        }
                        self.set_state(addr, DirState::Shared(s));
                    } else {
                        // L2 evicted the (clean) data: refetch.
                        self.fetch(addr, req, is_write, out);
                    }
                } else {
                    let invs: Vec<NodeId> = sharers.iter().copied().filter(|&s| s != req).collect();
                    if invs.is_empty() {
                        self.grant_or_fetch(addr, req, is_write, out);
                    } else {
                        self.stats.invalidations += invs.len() as u64;
                        for s in &invs {
                            out.push((*s, ProtoMsg::with_aux(Op::Inv, addr, req)));
                        }
                        self.set_busy(
                            addr,
                            Txn {
                                req,
                                is_write,
                                waiting: Waiting::InvAcks(invs.len() as u32),
                            },
                        );
                    }
                }
            }
            DirState::Owned(owner) if owner == req => {
                // The owner re-requests its own block: that can only mean
                // its eviction (PutM/PutE) is in flight toward us. Do NOT
                // forward — a forward could cross the re-grant and trick
                // the owner into surrendering the fresh copy. Just wait:
                // the racing writeback completes this transaction.
                self.set_busy(
                    addr,
                    Txn {
                        req,
                        is_write,
                        waiting: Waiting::OwnerData,
                    },
                );
            }
            DirState::Owned(owner) => {
                // Fetch the latest copy from the owner.
                self.stats.forwards += 1;
                let fwd = if is_write { Op::FwdGetM } else { Op::FwdGetS };
                out.push((owner, ProtoMsg::with_aux(fwd, addr, req)));
                self.set_busy(
                    addr,
                    Txn {
                        req,
                        is_write,
                        waiting: Waiting::OwnerData,
                    },
                );
            }
        }
    }

    /// Grants from the L2 if the data is resident, otherwise fetches from
    /// memory. Used when no other L1 holds a conflicting copy.
    fn grant_or_fetch(&mut self, addr: BlockAddr, req: NodeId, is_write: bool, out: &mut Out) {
        if self.l2.get(addr).is_some() {
            self.stats.l2_hits += 1;
            self.grant_exclusive(addr, req, out);
        } else {
            self.fetch(addr, req, is_write, out);
        }
    }

    fn fetch(&mut self, addr: BlockAddr, req: NodeId, is_write: bool, out: &mut Out) {
        self.stats.l2_misses += 1;
        out.push((self.mem_for(addr), ProtoMsg::new(Op::MemRead, addr)));
        self.set_busy(
            addr,
            Txn {
                req,
                is_write,
                waiting: Waiting::Mem,
            },
        );
    }

    /// Exclusive grant: E for loads with no sharers, M for stores (the L1
    /// decides which from its pending miss kind).
    fn grant_exclusive(&mut self, addr: BlockAddr, req: NodeId, out: &mut Out) {
        out.push((req, ProtoMsg::new(Op::DataExcl, addr)));
        self.set_state(addr, DirState::Owned(req));
        self.clear_busy(addr);
    }

    fn handle_mem_data(&mut self, addr: BlockAddr, out: &mut Out) {
        let Some(txn) = self.busy(addr) else {
            return; // stale (cannot normally happen)
        };
        debug_assert_eq!(txn.waiting, Waiting::Mem);
        self.install_l2(addr, false, out);
        // Complete according to the stable state we fetched under.
        match self.dir_state(addr) {
            DirState::Shared(mut s) => {
                // GetS under a Shared block whose L2 copy was evicted.
                out.push((txn.req, ProtoMsg::new(Op::Data, addr)));
                if !s.contains(&txn.req) {
                    s.push(txn.req);
                }
                self.set_state(addr, DirState::Shared(s));
                self.clear_busy(addr);
            }
            _ => self.grant_exclusive(addr, txn.req, out),
        }
    }

    fn handle_inv_ack(&mut self, addr: BlockAddr, out: &mut Out) {
        let Some(mut txn) = self.busy(addr) else {
            return; // stale ack for a block we already unblocked
        };
        let Waiting::InvAcks(n) = txn.waiting else {
            return;
        };
        if n > 1 {
            txn.waiting = Waiting::InvAcks(n - 1);
            self.set_busy(addr, txn);
            return;
        }
        // All sharers gone: grant exclusivity.
        self.set_state(addr, DirState::Uncached);
        if self.l2.get(addr).is_some() {
            self.stats.l2_hits += 1;
            self.grant_exclusive(addr, txn.req, out);
        } else {
            self.stats.l2_misses += 1;
            out.push((self.mem_for(addr), ProtoMsg::new(Op::MemRead, addr)));
            txn.waiting = Waiting::Mem;
            self.set_busy(addr, txn);
        }
    }

    /// Owner data arrived — either an `OwnerData` response to a forward or
    /// a racing `PutM`/`PutE` from the current owner.
    fn handle_owner_data(&mut self, src: NodeId, addr: BlockAddr, clean: bool, out: &mut Out) {
        let Some(txn) = self.busy(addr) else {
            return; // transaction already completed via the racing PutM
        };
        if txn.waiting != Waiting::OwnerData {
            return;
        }
        // Only the *current* owner's data completes the transaction; a
        // heavily delayed OwnerData from a previous ownership era (its
        // transaction long completed by a racing PutM) must not — the live
        // forward is addressed to the current owner, who will answer.
        if !matches!(self.dir_state(addr), DirState::Owned(o) if o == src) {
            self.stats.stale_nacks += 1;
            return;
        }
        if !clean {
            self.install_l2(addr, true, out);
        }
        if txn.is_write {
            out.push((txn.req, ProtoMsg::new(Op::DataExcl, addr)));
            self.set_state(addr, DirState::Owned(txn.req));
            self.clear_busy(addr);
        } else {
            // Old owner downgraded to S (it keeps a copy only if it served
            // the forward from a live line; a stale sharer entry is
            // harmless).
            out.push((txn.req, ProtoMsg::new(Op::Data, addr)));
            let old_owner = match self.dir_state(addr) {
                DirState::Owned(o) => Some(o),
                _ => None,
            };
            let mut s = vec![txn.req];
            if let Some(o) = old_owner {
                if o != txn.req && o == src {
                    s.push(o);
                }
            }
            self.set_state(addr, DirState::Shared(s));
            self.clear_busy(addr);
        }
    }

    fn handle_put(&mut self, src: NodeId, msg: ProtoMsg, out: &mut Out) {
        let addr = msg.addr;
        let dirty = msg.op == Op::PutM;
        let owner_matches = matches!(self.dir_state(addr), DirState::Owned(o) if o == src);
        let busy = self.busy(addr);
        out.push((src, ProtoMsg::new(Op::WbAck, addr)));
        if !owner_matches {
            return; // stale writeback: ownership already moved on
        }
        self.stats.writebacks += 1;
        match busy {
            Some(txn) if txn.waiting == Waiting::OwnerData => {
                // The put races a forward we sent to this owner: use it as
                // the owner data. A clean PutE means the home-side copy
                // (L2 or memory) is current.
                if dirty {
                    self.handle_owner_data(src, addr, false, out);
                } else {
                    // Complete from home-side data.
                    self.set_state(addr, DirState::Uncached);
                    if self.l2.get(addr).is_some() {
                        self.stats.l2_hits += 1;
                        if txn.is_write {
                            self.grant_exclusive(addr, txn.req, out);
                        } else {
                            out.push((txn.req, ProtoMsg::new(Op::Data, addr)));
                            self.set_state(addr, DirState::Shared(vec![txn.req]));
                            self.clear_busy(addr);
                        }
                    } else {
                        self.stats.l2_misses += 1;
                        out.push((self.mem_for(addr), ProtoMsg::new(Op::MemRead, addr)));
                        let mut t = txn;
                        t.waiting = Waiting::Mem;
                        self.set_busy(addr, t);
                    }
                }
            }
            Some(_) => {
                // Busy waiting on memory or acks: ownership cannot be with
                // `src` in those phases.
                debug_assert!(false, "put from owner while not forwarding");
            }
            None => {
                // Plain eviction.
                if dirty {
                    self.install_l2(addr, true, out);
                }
                self.set_state(addr, DirState::Uncached);
            }
        }
    }

    /// Inserts into the L2 data array; a dirty victim is written to memory.
    fn install_l2(&mut self, addr: BlockAddr, dirty: bool, out: &mut Out) {
        if let Some(victim) = self.l2.insert(addr, dirty) {
            if victim.state {
                out.push((
                    self.mem_for(victim.addr),
                    ProtoMsg::new(Op::MemWrite, victim.addr),
                ));
            }
        }
    }

    fn busy(&self, addr: BlockAddr) -> Option<Txn> {
        self.blocks.get(&addr).and_then(|b| b.busy)
    }

    fn set_busy(&mut self, addr: BlockAddr, txn: Txn) {
        self.blocks.entry(addr).or_default().busy = Some(txn);
    }

    fn clear_busy(&mut self, addr: BlockAddr) {
        if let Some(b) = self.blocks.get_mut(&addr) {
            b.busy = None;
        }
    }

    fn set_state(&mut self, addr: BlockAddr, st: DirState) {
        self.blocks.entry(addr).or_default().state = Some(st);
    }

    /// Processes queued requests while the block is free.
    fn drain_queue(&mut self, addr: BlockAddr, out: &mut Out) {
        loop {
            if self.busy(addr).is_some() {
                return;
            }
            let Some(b) = self.blocks.get_mut(&addr) else {
                return;
            };
            let Some((src, msg)) = b.queue.pop_front() else {
                return;
            };
            self.start(src, msg, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: NodeId = NodeId(0);
    const A: BlockAddr = 0x40;

    fn bank() -> DirBank {
        DirBank::new(NodeId(9), 64, 4, vec![MEM])
    }

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn cold_gets_fetches_memory_then_grants_exclusive() {
        let mut d = bank();
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut out);
        assert_eq!(out, vec![(MEM, ProtoMsg::new(Op::MemRead, A))]);
        assert!(d.is_busy(A));
        out.clear();
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::new(Op::DataExcl, A))]);
        assert_eq!(d.dir_state(A), DirState::Owned(n(1)));
        assert!(!d.is_busy(A));
    }

    #[test]
    fn second_reader_triggers_forward_and_shares() {
        let mut d = bank();
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut out);
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        out.clear();
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::with_aux(Op::FwdGetS, A, n(2)))]);
        out.clear();
        d.handle(n(1), ProtoMsg::new(Op::OwnerData, A), &mut out);
        assert_eq!(out, vec![(n(2), ProtoMsg::new(Op::Data, A))]);
        match d.dir_state(A) {
            DirState::Shared(s) => {
                assert!(s.contains(&n(1)) && s.contains(&n(2)));
            }
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn writer_invalidates_all_sharers_then_gets_exclusive() {
        let mut d = bank();
        // Build Shared{1,2}.
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut Out::new());
        d.handle(n(1), ProtoMsg::new(Op::OwnerData, A), &mut Out::new());
        // Core 3 writes.
        let mut out = Out::new();
        d.handle(n(3), ProtoMsg::new(Op::GetM, A), &mut out);
        let invs: Vec<_> = out.iter().filter(|(_, m)| m.op == Op::Inv).collect();
        assert_eq!(invs.len(), 2);
        out.clear();
        d.handle(n(1), ProtoMsg::new(Op::InvAck, A), &mut out);
        assert!(out.is_empty(), "still one ack missing");
        d.handle(n(2), ProtoMsg::new(Op::InvAck, A), &mut out);
        assert_eq!(out, vec![(n(3), ProtoMsg::new(Op::DataExcl, A))]);
        assert_eq!(d.dir_state(A), DirState::Owned(n(3)));
    }

    #[test]
    fn requests_queue_behind_busy_block() {
        let mut d = bank();
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut out); // busy: Mem
        out.clear();
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut out);
        assert!(out.is_empty(), "queued");
        assert_eq!(d.stats.queued, 1);
        // MemData completes #1 and the queued #2 starts immediately
        // (forward to the new owner 1).
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut out);
        assert!(out.contains(&(n(1), ProtoMsg::new(Op::DataExcl, A))));
        assert!(out.contains(&(n(1), ProtoMsg::with_aux(Op::FwdGetS, A, n(2)))));
    }

    #[test]
    fn putm_race_with_forward_completes_transaction() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        assert_eq!(d.dir_state(A), DirState::Owned(n(1)));
        // Core 2 wants it; a forward goes out; but core 1's PutM arrives
        // first.
        let mut out = Out::new();
        d.handle(n(2), ProtoMsg::new(Op::GetM, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::with_aux(Op::FwdGetM, A, n(2)))]);
        out.clear();
        d.handle(n(1), ProtoMsg::new(Op::PutM, A), &mut out);
        assert!(out.contains(&(n(1), ProtoMsg::new(Op::WbAck, A))));
        assert!(out.contains(&(n(2), ProtoMsg::new(Op::DataExcl, A))));
        assert_eq!(d.dir_state(A), DirState::Owned(n(2)));
        // The dangling FwdNack from core 1 is dropped harmlessly.
        out.clear();
        d.handle(n(1), ProtoMsg::new(Op::FwdNack, A), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_putm_from_old_owner_is_acked_and_ignored() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        d.handle(n(2), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(n(1), ProtoMsg::new(Op::OwnerData, A), &mut Out::new());
        assert_eq!(d.dir_state(A), DirState::Owned(n(2)));
        // Core 1's stale writeback (it was evicting while forwarding).
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::PutM, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::new(Op::WbAck, A))]);
        assert_eq!(d.dir_state(A), DirState::Owned(n(2)), "unchanged");
    }

    #[test]
    fn plain_eviction_returns_block_to_home() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::PutM, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::new(Op::WbAck, A))]);
        assert_eq!(d.dir_state(A), DirState::Uncached);
        // Next reader hits in L2 (dirty data landed there).
        out.clear();
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut out);
        assert_eq!(out, vec![(n(2), ProtoMsg::new(Op::DataExcl, A))]);
        assert_eq!(d.stats.l2_hits, 1);
    }

    #[test]
    fn pute_racing_forward_completes_from_home_data() {
        let mut d = bank();
        // Core 1 gets E; its clean eviction races core 2's GetS.
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new()); // E at 1
        let mut out = Out::new();
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::with_aux(Op::FwdGetS, A, n(2)))]);
        out.clear();
        // The PutE arrives instead of OwnerData: the home answers from its
        // own (clean) L2 copy.
        d.handle(n(1), ProtoMsg::new(Op::PutE, A), &mut out);
        assert!(out.contains(&(n(1), ProtoMsg::new(Op::WbAck, A))));
        assert!(out.contains(&(n(2), ProtoMsg::new(Op::Data, A))));
        assert_eq!(d.dir_state(A), DirState::Shared(vec![n(2)]));
        assert!(!d.is_busy(A));
    }

    #[test]
    fn pute_racing_forward_getm_grants_exclusive() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new()); // E at 1
        d.handle(n(2), ProtoMsg::new(Op::GetM, A), &mut Out::new()); // FwdGetM -> 1
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::PutE, A), &mut out);
        assert!(out.contains(&(n(2), ProtoMsg::new(Op::DataExcl, A))));
        assert_eq!(d.dir_state(A), DirState::Owned(n(2)));
    }

    #[test]
    fn dirty_l2_victim_is_written_to_memory() {
        // A tiny L2 (1 set x 1 way) forces an eviction of dirty data.
        let mut d = DirBank::new(NodeId(9), 1, 1, vec![MEM]);
        const B: BlockAddr = 0x4000; // different L2 set hash irrelevant: 1 set
                                     // Block A becomes dirty in L2 via a PutM.
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        d.handle(n(1), ProtoMsg::new(Op::PutM, A), &mut Out::new());
        // Block B's fill evicts A: the dirty victim goes to memory.
        d.handle(n(2), ProtoMsg::new(Op::GetS, B), &mut Out::new());
        let mut out = Out::new();
        d.handle(MEM, ProtoMsg::new(Op::MemData, B), &mut out);
        assert!(
            out.contains(&(MEM, ProtoMsg::new(Op::MemWrite, A))),
            "dirty L2 victim must be written back: {out:?}"
        );
    }

    #[test]
    fn upgrade_from_sole_sharer_needs_no_invalidations() {
        let mut d = bank();
        // Build Shared{1} with data in L2 (via owner handover).
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new());
        d.handle(n(1), ProtoMsg::new(Op::PutM, A), &mut Out::new()); // Uncached, L2 dirty
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // E grant (uncached)
        d.handle(n(1), ProtoMsg::new(Op::PutE, A), &mut Out::new()); // back to Uncached
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // E again
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // Fwd -> 1
        d.handle(n(1), ProtoMsg::new(Op::OwnerData, A), &mut Out::new()); // Shared{2,1}
                                                                          // Core 1 upgrades: only core 2 needs an Inv.
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::GetM, A), &mut out);
        let invs: Vec<_> = out.iter().filter(|(_, m)| m.op == Op::Inv).collect();
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].0, n(2));
        out.clear();
        d.handle(n(2), ProtoMsg::new(Op::InvAck, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::new(Op::DataExcl, A))]);
        assert_eq!(d.dir_state(A), DirState::Owned(n(1)));
    }

    #[test]
    fn queue_drains_across_multiple_waiters() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // busy: Mem
        d.handle(n(2), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // queued
        d.handle(n(3), ProtoMsg::new(Op::GetS, A), &mut Out::new()); // queued
        assert_eq!(d.stats.queued, 2);
        let mut out = Out::new();
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut out);
        // #1 granted exclusive; #2 starts (forward); #3 still queued.
        assert!(out.contains(&(n(1), ProtoMsg::new(Op::DataExcl, A))));
        assert!(out.contains(&(n(1), ProtoMsg::with_aux(Op::FwdGetS, A, n(2)))));
        assert!(d.is_busy(A));
        out.clear();
        d.handle(n(1), ProtoMsg::new(Op::OwnerData, A), &mut out);
        // #2 granted shared; #3 drains too (L2 hit: Data immediately).
        assert!(out.contains(&(n(2), ProtoMsg::new(Op::Data, A))));
        assert!(out.contains(&(n(3), ProtoMsg::new(Op::Data, A))));
        assert!(!d.is_busy(A));
    }

    #[test]
    fn pute_clears_ownership_without_data() {
        let mut d = bank();
        d.handle(n(1), ProtoMsg::new(Op::GetS, A), &mut Out::new());
        d.handle(MEM, ProtoMsg::new(Op::MemData, A), &mut Out::new()); // E at 1
        let mut out = Out::new();
        d.handle(n(1), ProtoMsg::new(Op::PutE, A), &mut out);
        assert_eq!(out, vec![(n(1), ProtoMsg::new(Op::WbAck, A))]);
        assert_eq!(d.dir_state(A), DirState::Uncached);
    }
}
