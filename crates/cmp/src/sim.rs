//! The full-system CMP simulation: cores + L1s + directory banks + memory
//! controllers over the NoC, under any power-gating scheme.

use std::collections::VecDeque;

use punchsim_core::build_power_manager;
use punchsim_noc::{Message, Network, NetworkReport};
use punchsim_types::{Coord, Cycle, NodeId, SchemeKind, SimConfig, SimRng};

use crate::benchmark::{Benchmark, SyntheticCore};
use crate::dir::DirBank;
use crate::mem::MemCtrl;
use crate::protocol::{BlockAddr, Op, ProtoMsg};
use crate::tile::{Access, L1};

/// Configuration of a full-system run.
#[derive(Debug, Clone)]
pub struct CmpConfig {
    /// Network + power-gating + scheme configuration.
    pub sim: SimConfig,
    /// Workload preset.
    pub benchmark: Benchmark,
    /// Instructions each core must retire (after warm-up).
    pub instr_per_core: u64,
    /// Instructions per core before statistics reset.
    pub warmup_instr: u64,
    /// Hard cap on simulated cycles (guards against protocol bugs).
    pub max_cycles: u64,
    /// L1 capacity in blocks (Table 2: 32 KB / 64 B = 512) and ways.
    pub l1_blocks: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 bank capacity in blocks (256 KB / 64 B = 4096) and ways.
    pub l2_blocks: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2/directory access latency in cycles (Table 2: 6).
    pub l2_latency: Cycle,
    /// Memory access latency in cycles (Table 2: 128).
    pub mem_latency: Cycle,
}

impl CmpConfig {
    /// The paper's Table 2 system running `benchmark` under `scheme`.
    pub fn new(benchmark: Benchmark, scheme: SchemeKind) -> Self {
        CmpConfig {
            sim: SimConfig::with_scheme(scheme),
            benchmark,
            instr_per_core: 80_000,
            warmup_instr: 8_000,
            max_cycles: 5_000_000,
            l1_blocks: 512,
            l1_ways: 2,
            l2_blocks: 4096,
            l2_ways: 16,
            l2_latency: 6,
            mem_latency: 128,
        }
    }
}

/// Results of a full-system run.
#[derive(Debug, Clone)]
pub struct CmpReport {
    /// Workload that ran.
    pub benchmark: Benchmark,
    /// Power-gating scheme.
    pub scheme: SchemeKind,
    /// Cycles from end of warm-up until the last core retired its quota.
    pub exec_cycles: u64,
    /// Every simulated cycle, warm-up included — the denominator campaign
    /// runners use for wall-clock throughput (cycles/sec).
    pub total_cycles: u64,
    /// Total instructions retired (all cores, including warm-up).
    pub instructions: u64,
    /// L1 miss rate over all references.
    pub l1_miss_rate: f64,
    /// Network statistics for the measured window.
    pub net: NetworkReport,
    /// Whether every core finished within the cycle cap.
    pub completed: bool,
}

/// The full-system simulator (the gem5+PARSEC stand-in; see DESIGN.md).
///
/// # Examples
///
/// ```no_run
/// use punchsim_cmp::{Benchmark, CmpConfig, CmpSim};
/// use punchsim_types::SchemeKind;
///
/// let mut cfg = CmpConfig::new(Benchmark::Blackscholes, SchemeKind::PowerPunchFull);
/// cfg.instr_per_core = 10_000;
/// let report = CmpSim::new(cfg).run();
/// assert!(report.completed);
/// ```
pub struct CmpSim {
    cfg: CmpConfig,
    net: Network,
    cores: Vec<SyntheticCore>,
    l1s: Vec<L1>,
    dirs: Vec<DirBank>,
    mems: Vec<MemCtrl>,
    blocked: Vec<bool>,
    rng: SimRng,
    /// Scheduled protocol sends per node: `(send_at, dst, msg)` FIFO.
    sends: Vec<VecDeque<(Cycle, NodeId, ProtoMsg)>>,
    warmed: bool,
    measure_start: Cycle,
}

impl std::fmt::Debug for CmpSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSim")
            .field("benchmark", &self.cfg.benchmark)
            .field("scheme", &self.cfg.sim.scheme)
            .field("cycle", &self.net.cycle())
            .finish()
    }
}

impl CmpSim {
    /// Builds the system of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CmpConfig) -> Self {
        let pm = build_power_manager(&cfg.sim).expect("invalid SimConfig");
        let mut net = Network::new(&cfg.sim.noc, pm).expect("config validated above");
        if cfg.sim.trace.enabled {
            net.set_sink(Box::new(punchsim_noc::obs::RingSink::new(
                cfg.sim.trace.ring_capacity,
            )));
        }
        let topo = cfg.sim.noc.topology;
        let n = topo.nodes();
        let mem_nodes = corner_nodes(topo.width(), topo.height());
        let cores = (0..n)
            .map(|i| SyntheticCore::new(cfg.benchmark, i as u64, cfg.instr_per_core))
            .collect();
        let l1s = (0..n)
            .map(|i| L1::new(NodeId(i as u16), cfg.l1_blocks, cfg.l1_ways))
            .collect();
        let dirs = (0..n)
            .map(|i| {
                DirBank::new(
                    NodeId(i as u16),
                    cfg.l2_blocks,
                    cfg.l2_ways,
                    mem_nodes.clone(),
                )
            })
            .collect();
        let mems = mem_nodes
            .iter()
            .map(|&m| MemCtrl::new(m, cfg.mem_latency))
            .collect();
        let rng = SimRng::seed_from_u64(cfg.sim.seed);
        CmpSim {
            net,
            cores,
            l1s,
            dirs,
            mems,
            blocked: vec![false; n],
            rng,
            sends: vec![VecDeque::new(); n],
            warmed: false,
            measure_start: 0,
            cfg,
        }
    }

    /// The network under test.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The network under test, mutably — e.g. to attach or detach an
    /// observability sink around a run.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn home_of(&self, addr: BlockAddr) -> NodeId {
        home_node(addr, self.cfg.sim.noc.topology.nodes())
    }

    /// Advances the system by one cycle.
    pub fn tick(&mut self) {
        let now = self.net.cycle();
        self.deliver(now);
        self.flush_sends(now);
        self.mem_tick(now);
        self.core_tick(now);
        self.net
            .tick()
            .expect("CMP watchdog: the MESI protocol wedged");
        if !self.warmed
            && self
                .cores
                .iter()
                .all(|c| c.retired >= self.cfg.warmup_instr)
        {
            self.warmed = true;
            self.net.reset_stats();
            self.measure_start = self.net.cycle();
        }
    }

    /// Runs to completion (or the cycle cap) and reports.
    pub fn run(mut self) -> CmpReport {
        self.run_hooked(u64::MAX, &mut |_| {})
    }

    /// Runs like [`CmpSim::run`], invoking `hook` with the network after
    /// every `every` simulated cycles — the full-system twin of
    /// [`Network::run_hooked`], used by campaign runners for progress and
    /// interval sampling. Takes `&mut self` so callers can retrieve the
    /// event sink (or other network state) after the run finishes.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_hooked(&mut self, every: u64, hook: &mut dyn FnMut(&Network)) -> CmpReport {
        assert!(every > 0, "hook period must be positive");
        while !self.done() && self.net.cycle() < self.cfg.max_cycles {
            self.tick();
            if self.net.cycle() % every == 0 {
                hook(&self.net);
            }
        }
        let completed = self.done();
        let exec_cycles = self.net.cycle() - self.measure_start;
        let refs: u64 = self
            .l1s
            .iter()
            .map(|l| l.stats.loads + l.stats.stores)
            .sum();
        let misses: u64 = self.l1s.iter().map(|l| l.stats.misses).sum();
        CmpReport {
            benchmark: self.cfg.benchmark,
            scheme: self.cfg.sim.scheme,
            exec_cycles,
            total_cycles: self.net.cycle(),
            instructions: self.cores.iter().map(|c| c.retired).sum(),
            l1_miss_rate: if refs == 0 {
                0.0
            } else {
                misses as f64 / refs as f64
            },
            net: self.net.report(),
            completed,
        }
    }

    fn done(&self) -> bool {
        self.cores.iter().all(SyntheticCore::done)
    }

    /// Routes every message delivered by the network to its tile component.
    fn deliver(&mut self, now: Cycle) {
        let nodes = self.cfg.sim.noc.topology.nodes();
        let l2_lat = self.cfg.l2_latency;
        for idx in 0..nodes {
            let node = NodeId(idx as u16);
            for msg in self.net.take_delivered(node) {
                let pm = ProtoMsg::decode(msg.payload).expect("well-formed payload");
                let src = msg.src;
                match pm.op {
                    // Directory-side messages.
                    Op::GetS
                    | Op::GetM
                    | Op::PutM
                    | Op::PutE
                    | Op::InvAck
                    | Op::OwnerData
                    | Op::FwdNack
                    | Op::MemData => {
                        let mut out = Vec::new();
                        self.dirs[idx].handle(src, pm, &mut out);
                        if !out.is_empty() {
                            // Slack 2: the L2/directory access that will
                            // produce these messages starts now.
                            self.net
                                .notify_future_injection(node)
                                .expect("directory node is in the topology");
                        }
                        for (dst, m) in out {
                            self.sends[idx].push_back((now + l2_lat, dst, m));
                        }
                    }
                    // L1-side messages.
                    Op::Inv | Op::FwdGetS | Op::FwdGetM | Op::Data | Op::DataExcl | Op::WbAck => {
                        let mut out = Vec::new();
                        let total = nodes;
                        let resumed =
                            self.l1s[idx].handle(src, pm, |a| home_node(a, total), &mut out);
                        if resumed {
                            self.blocked[idx] = false;
                        }
                        for (dst, m) in out {
                            self.sends[idx].push_back((now + 1, dst, m));
                        }
                    }
                    // Memory-controller messages.
                    Op::MemRead | Op::MemWrite => {
                        let mc = self
                            .mems
                            .iter_mut()
                            .find(|m| m.node() == node)
                            .expect("memory request routed to a controller");
                        mc.handle(src, pm, now);
                    }
                }
            }
        }
    }

    /// Injects scheduled protocol messages whose time has come.
    fn flush_sends(&mut self, now: Cycle) {
        for idx in 0..self.sends.len() {
            while let Some(&(at, dst, m)) = self.sends[idx].front() {
                if at > now {
                    break;
                }
                self.sends[idx].pop_front();
                self.net
                    .send(Message {
                        src: NodeId(idx as u16),
                        dst,
                        vnet: m.op.vnet(),
                        class: m.op.class(),
                        payload: m.encode(),
                        gen_cycle: now,
                    })
                    .expect("protocol destinations are always in-mesh");
            }
        }
    }

    fn mem_tick(&mut self, now: Cycle) {
        let slack2 = self.cfg.sim.power.slack2_cycles as Cycle;
        let mut to_send = Vec::new();
        for mc in &mut self.mems {
            let node = mc.node();
            let (warn, due) = mc.tick(now, slack2);
            for w in warn {
                self.net
                    .notify_future_injection(w)
                    .expect("memory-controller node is in the topology");
            }
            for (dst, m) in due {
                to_send.push((node, dst, m));
            }
        }
        for (src, dst, m) in to_send {
            self.net
                .send(Message {
                    src,
                    dst,
                    vnet: m.op.vnet(),
                    class: m.op.class(),
                    payload: m.encode(),
                    gen_cycle: now,
                })
                .expect("protocol destinations are always in-mesh");
        }
    }

    fn core_tick(&mut self, now: Cycle) {
        let nodes = self.cfg.sim.noc.topology.nodes();
        for idx in 0..nodes {
            if self.blocked[idx] || self.cores[idx].done() {
                continue;
            }
            let Some(mref) = self.cores[idx].tick(&mut self.rng) else {
                continue;
            };
            let home = self.home_of(mref.addr);
            let mut out = Vec::new();
            let res = self.l1s[idx].access(mref.addr, mref.is_write, home, &mut out);
            for (dst, m) in out {
                self.sends[idx].push_back((now + 1, dst, m));
            }
            if res == Access::Miss {
                self.blocked[idx] = true;
            }
        }
    }
}

impl CmpSim {
    /// Checks the MESI single-writer invariant across all L1s: a block held
    /// in `M` or `E` anywhere may not be resident in any other L1. Returns
    /// human-readable violations (empty = coherent). Test hook.
    pub fn coherence_violations(&self) -> Vec<String> {
        use std::collections::HashMap;
        let mut holders: HashMap<BlockAddr, Vec<(usize, crate::tile::L1State)>> = HashMap::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            for (addr, st) in l1.resident() {
                holders.entry(addr).or_default().push((i, st));
            }
        }
        let mut v = Vec::new();
        for (addr, hs) in holders {
            let exclusive = hs
                .iter()
                .any(|(_, s)| matches!(s, crate::tile::L1State::M | crate::tile::L1State::E));
            if exclusive && hs.len() > 1 {
                v.push(format!("block {addr:#x} held by {hs:?}"));
            }
        }
        v
    }
}

/// The four corner nodes hosting memory controllers (Table 2).
fn corner_nodes(w: u16, h: u16) -> Vec<NodeId> {
    let mesh = punchsim_types::Mesh::new(w, h);
    let mut v = vec![
        mesh.node(Coord::new(0, 0)),
        mesh.node(Coord::new(w - 1, 0)),
        mesh.node(Coord::new(0, h - 1)),
        mesh.node(Coord::new(w - 1, h - 1)),
    ];
    v.dedup();
    v
}

/// Home L2 bank of a block: a hash interleave over all tiles.
fn home_node(addr: BlockAddr, nodes: usize) -> NodeId {
    let h = addr ^ (addr >> 17) ^ (addr >> 31);
    NodeId((h % nodes as u64) as u16)
}

impl CmpSim {
    /// Prints a forward-progress diagnostic (debugging aid).
    pub fn debug_dump(&mut self) {
        println!("cycle {}", self.net.cycle());
        println!("net in_flight {}", self.net.in_flight());
        for (i, c) in self.cores.iter().enumerate() {
            if !c.done() {
                let pend = self.l1s[i].pending();
                println!(
                    "core {i}: retired {}/{} blocked={} pending={:?}",
                    c.retired, c.quota, self.blocked[i], pend
                );
                if let Some(p) = pend {
                    let home = home_node(p.addr, self.cfg.sim.noc.topology.nodes());
                    let d = &self.dirs[home.index()];
                    println!(
                        "   home {home}: state {:?} busy {}",
                        d.dir_state(p.addr),
                        d.is_busy(p.addr)
                    );
                }
            }
        }
        for (i, s) in self.sends.iter().enumerate() {
            if !s.is_empty() {
                println!("sends[{i}]: {:?}", s.front());
            }
        }
        for m in &self.mems {
            if m.outstanding() > 0 {
                println!("mem {} outstanding {}", m.node(), m.outstanding());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn small_cfg(scheme: SchemeKind) -> CmpConfig {
        let mut cfg = CmpConfig::new(Benchmark::Blackscholes, scheme);
        cfg.sim.noc.topology = Mesh::new(4, 4).into();
        cfg.instr_per_core = 6_000;
        cfg.warmup_instr = 1_500;
        cfg.max_cycles = 2_000_000;
        cfg
    }

    #[test]
    fn small_system_completes_no_pg() {
        let r = CmpSim::new(small_cfg(SchemeKind::NoPg)).run();
        assert!(r.completed, "protocol must make forward progress");
        assert_eq!(r.instructions, 16 * 6_000);
        assert!(
            r.l1_miss_rate > 0.0 && r.l1_miss_rate < 0.2,
            "miss rate {}",
            r.l1_miss_rate
        );
        assert!(r.net.stats.packets_delivered > 0);
    }

    #[test]
    fn completes_under_every_scheme() {
        // Every registered scheme, including the rival baselines, must
        // carry the full-system MESI protocol to completion.
        for scheme in SchemeKind::ALL {
            let r = CmpSim::new(small_cfg(scheme)).run();
            assert!(r.completed, "{scheme} hangs");
        }
    }

    #[test]
    fn sharing_workload_completes() {
        let mut cfg = small_cfg(SchemeKind::PowerPunchFull);
        cfg.benchmark = Benchmark::Canneal; // heavy sharing + invalidations
        let r = CmpSim::new(cfg).run();
        assert!(r.completed);
        assert!(r.net.stats.packets_delivered > 100);
    }

    #[test]
    fn power_gating_slows_execution_but_saves_energy() {
        let no = CmpSim::new(small_cfg(SchemeKind::NoPg)).run();
        let conv = CmpSim::new(small_cfg(SchemeKind::ConvOptPg)).run();
        let pp = CmpSim::new(small_cfg(SchemeKind::PowerPunchFull)).run();
        assert!(conv.exec_cycles > no.exec_cycles);
        assert!(
            pp.exec_cycles < conv.exec_cycles,
            "PowerPunch-PG {} must beat ConvOpt {}",
            pp.exec_cycles,
            conv.exec_cycles
        );
        assert!(conv.net.off_fraction() > 0.2);
        assert!(pp.net.off_fraction() > 0.2);
    }

    #[test]
    fn trace_config_records_full_system_events() {
        let mut cfg = small_cfg(SchemeKind::PowerPunchFull);
        cfg.sim.trace = punchsim_types::TraceConfig::enabled();
        cfg.instr_per_core = 1_000;
        cfg.warmup_instr = 0;
        let mut sim = CmpSim::new(cfg);
        let r = sim.run_hooked(u64::MAX, &mut |_| {});
        assert!(r.completed);
        let sink = sim.network_mut().take_sink().expect("sink attached");
        let kinds: Vec<&str> = sink.snapshot().iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"inject"), "{kinds:?}");
        assert!(kinds.contains(&"slack1"), "{kinds:?}");
        assert!(kinds.contains(&"punch-emit"), "{kinds:?}");
        assert!(kinds.contains(&"power"), "{kinds:?}");
    }

    #[test]
    fn determinism() {
        let a = CmpSim::new(small_cfg(SchemeKind::PowerPunchFull)).run();
        let b = CmpSim::new(small_cfg(SchemeKind::PowerPunchFull)).run();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.net.stats.packets_delivered, b.net.stats.packets_delivered);
    }

    #[test]
    fn corner_nodes_are_corners() {
        let c = corner_nodes(8, 8);
        assert_eq!(c, vec![NodeId(0), NodeId(7), NodeId(56), NodeId(63)]);
    }

    #[test]
    fn home_map_covers_all_banks() {
        let mut seen = [false; 64];
        for a in 0..100_000u64 {
            seen[home_node(a, 64).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
