//! Memory controllers (one per mesh corner, as in Table 2).

use punchsim_types::{Cycle, NodeId};

use crate::protocol::{Op, ProtoMsg};

/// A memory controller endpoint: fixed-latency reads, posted writes.
#[derive(Debug, Clone)]
pub struct MemCtrl {
    node: NodeId,
    latency: Cycle,
    /// Pending `(ready_at, home, response)` in arrival order.
    pending: Vec<(Cycle, NodeId, ProtoMsg)>,
    /// Reads served.
    pub reads: u64,
    /// Writes absorbed.
    pub writes: u64,
}

impl MemCtrl {
    /// Creates a controller at `node` with the given access latency
    /// (Table 2: 128 cycles).
    pub fn new(node: NodeId, latency: Cycle) -> Self {
        MemCtrl {
            node,
            latency,
            pending: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// This controller's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Handles a request delivered at `now`.
    pub fn handle(&mut self, src: NodeId, msg: ProtoMsg, now: Cycle) {
        match msg.op {
            Op::MemRead => {
                self.reads += 1;
                self.pending.push((
                    now + self.latency,
                    src,
                    ProtoMsg::new(Op::MemData, msg.addr),
                ));
            }
            Op::MemWrite => {
                // Posted write: absorbed without a response.
                self.writes += 1;
            }
            other => panic!("memory controller received unexpected {other:?}"),
        }
    }

    /// Returns responses due at `now`, and homes to forewarn (`slack2`
    /// cycles before each response — the controller knows a packet is
    /// coming, the paper's slack-2 resource valid bit).
    pub fn tick(&mut self, now: Cycle, slack2: Cycle) -> (Vec<NodeId>, Vec<(NodeId, ProtoMsg)>) {
        let mut warn = Vec::new();
        let mut due = Vec::new();
        self.pending.retain(|&(at, home, msg)| {
            if at == now + slack2 {
                warn.push(self.node);
                let _ = home;
            }
            if at <= now {
                due.push((home, msg));
                false
            } else {
                true
            }
        });
        (warn, due)
    }

    /// Outstanding reads (test hook).
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_completes_after_latency() {
        let mut m = MemCtrl::new(NodeId(0), 128);
        m.handle(NodeId(9), ProtoMsg::new(Op::MemRead, 0x40), 10);
        assert_eq!(m.outstanding(), 1);
        for c in 11..138 {
            let (_, due) = m.tick(c, 6);
            assert!(due.is_empty(), "cycle {c}");
        }
        let (_, due) = m.tick(138, 6);
        assert_eq!(due, vec![(NodeId(9), ProtoMsg::new(Op::MemData, 0x40))]);
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.reads, 1);
    }

    #[test]
    fn forewarning_fires_before_response() {
        let mut m = MemCtrl::new(NodeId(0), 128);
        m.handle(NodeId(9), ProtoMsg::new(Op::MemRead, 0x40), 0);
        let mut warned_at = None;
        for c in 1..=128 {
            let (warn, _) = m.tick(c, 6);
            if !warn.is_empty() {
                warned_at = Some(c);
            }
        }
        assert_eq!(warned_at, Some(122), "6 cycles before the response");
    }

    #[test]
    fn writes_are_posted() {
        let mut m = MemCtrl::new(NodeId(0), 128);
        m.handle(NodeId(9), ProtoMsg::new(Op::MemWrite, 0x80), 0);
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.writes, 1);
    }
}
