//! The private L1 cache controller of one tile.
//!
//! In-order cores block on L1 misses, so each L1 has at most one
//! outstanding demand miss, plus a small writeback buffer whose entries
//! live until the home acknowledges the eviction — the buffer is what
//! resolves the classic writeback/forward races.

use punchsim_types::NodeId;

use crate::cache::SetAssoc;
use crate::protocol::{BlockAddr, Op, ProtoMsg};

/// MESI state of a resident L1 line (`I` = not resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Shared, clean, read-only.
    S,
    /// Exclusive, clean, writable-by-upgrade-in-place.
    E,
    /// Modified, dirty.
    M,
}

/// The single outstanding demand miss of the in-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMiss {
    /// Block being fetched.
    pub addr: BlockAddr,
    /// Whether the access was a store.
    pub is_write: bool,
    /// An `Inv` overtook the (shared) data grant: consume the data to
    /// satisfy the load but do not install the line (the gem5 `IS_I`
    /// treatment of the Inv-vs-Data race).
    pub invalidated: bool,
}

/// Counters for L1 behaviour (model validation and load calibration).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Stats {
    /// Load references.
    pub loads: u64,
    /// Store references.
    pub stores: u64,
    /// Demand misses sent to the home (includes S->M upgrades).
    pub misses: u64,
    /// Dirty writebacks issued.
    pub writebacks: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Forwards served from the writeback buffer (race resolution).
    pub wb_forwards: u64,
}

/// Outcome of a core reference at the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Served locally in one cycle.
    Hit,
    /// A coherence transaction was issued; the core must block.
    Miss,
}

/// One tile's private L1 cache + coherence controller.
#[derive(Debug, Clone)]
pub struct L1 {
    node: NodeId,
    cache: SetAssoc<L1State>,
    pending: Option<PendingMiss>,
    /// Blocks evicted from E/M whose `PutE`/`PutM` has not been
    /// acknowledged yet.
    wb: Vec<BlockAddr>,
    /// Forwards that arrived before our own exclusive grant for the same
    /// block (a 1-flit forward can outrun the multi-flit grant); they are
    /// served right after the grant installs.
    deferred_fwd: Vec<(NodeId, ProtoMsg)>,
    /// Behaviour counters.
    pub stats: L1Stats,
}

/// Messages an L1 emits this cycle: `(destination, message)`.
pub type Out = Vec<(NodeId, ProtoMsg)>;

impl L1 {
    /// Creates an L1 with `blocks` capacity and `ways` associativity.
    pub fn new(node: NodeId, blocks: usize, ways: usize) -> Self {
        L1 {
            node,
            cache: SetAssoc::with_capacity_blocks(blocks, ways),
            pending: None,
            wb: Vec::new(),
            deferred_fwd: Vec::new(),
            stats: L1Stats::default(),
        }
    }

    /// This tile's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The outstanding demand miss, if any.
    pub fn pending(&self) -> Option<PendingMiss> {
        self.pending
    }

    /// Issues a core reference. `home` is the block's home bank.
    ///
    /// # Panics
    ///
    /// Panics if a miss is issued while another is outstanding (the
    /// in-order core must block).
    pub fn access(
        &mut self,
        addr: BlockAddr,
        is_write: bool,
        home: NodeId,
        out: &mut Out,
    ) -> Access {
        if is_write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        match self.cache.get(addr).copied() {
            Some(L1State::M) => Access::Hit,
            Some(L1State::E) => {
                if is_write {
                    *self.cache.peek_mut(addr).expect("resident") = L1State::M;
                }
                Access::Hit
            }
            Some(L1State::S) if !is_write => Access::Hit,
            Some(L1State::S) => {
                // Upgrade: request ownership; the S copy may be invalidated
                // under us while we wait, which is fine — DataExcl re-fills.
                self.start_miss(addr, true, home, out);
                Access::Miss
            }
            None => {
                self.start_miss(addr, is_write, home, out);
                Access::Miss
            }
        }
    }

    fn start_miss(&mut self, addr: BlockAddr, is_write: bool, home: NodeId, out: &mut Out) {
        assert!(self.pending.is_none(), "in-order core: one miss at a time");
        self.pending = Some(PendingMiss {
            addr,
            is_write,
            invalidated: false,
        });
        self.stats.misses += 1;
        let op = if is_write { Op::GetM } else { Op::GetS };
        out.push((home, ProtoMsg::new(op, addr)));
    }

    /// Handles a protocol message delivered to this tile. Returns `true`
    /// when the pending miss completed and the core may resume.
    ///
    /// `home_of` maps a block to its home bank (needed for evictions
    /// triggered by fills).
    pub fn handle(
        &mut self,
        src: NodeId,
        msg: ProtoMsg,
        home_of: impl Fn(BlockAddr) -> NodeId,
        out: &mut Out,
    ) -> bool {
        match msg.op {
            Op::Data | Op::DataExcl => {
                let p = self
                    .pending
                    .take()
                    .expect("data grant without a pending miss");
                debug_assert_eq!(p.addr, msg.addr, "grant for the wrong block");
                // A shared grant overtaken by an Inv satisfies the load but
                // is not installed; exclusive grants are always fresh (the
                // home serialized any Inv before granting ownership).
                if msg.op == Op::Data && p.invalidated {
                    return true;
                }
                let state = match (msg.op, p.is_write) {
                    (Op::Data, _) => L1State::S,
                    (Op::DataExcl, true) => L1State::M,
                    (Op::DataExcl, false) => L1State::E,
                    _ => unreachable!(),
                };
                if let Some(victim) = self.cache.insert(msg.addr, state) {
                    let home = home_of(victim.addr);
                    match victim.state {
                        L1State::M => {
                            self.stats.writebacks += 1;
                            self.wb.push(victim.addr);
                            out.push((home, ProtoMsg::new(Op::PutM, victim.addr)));
                        }
                        L1State::E => {
                            self.wb.push(victim.addr);
                            out.push((home, ProtoMsg::new(Op::PutE, victim.addr)));
                        }
                        L1State::S => {} // silent S eviction
                    }
                }
                // Serve any forward that outran this grant, now that the
                // line is resident (the home's order: grant, then forward).
                if let Some(pos) = self
                    .deferred_fwd
                    .iter()
                    .position(|(_, m)| m.addr == msg.addr)
                {
                    let (fsrc, fmsg) = self.deferred_fwd.remove(pos);
                    self.handle(fsrc, fmsg, home_of, out);
                }
                true
            }
            Op::Inv => {
                // Invalidate whatever we have (possibly nothing — sharer
                // lists can be stale after silent S evictions) and ack the
                // home, which collects acks for the writer.
                self.stats.invalidations += 1;
                let had_line = self.cache.remove(msg.addr).is_some();
                if !had_line {
                    if let Some(p) = self.pending.as_mut() {
                        if p.addr == msg.addr {
                            // The Inv may have overtaken our shared grant.
                            p.invalidated = true;
                        }
                    }
                }
                out.push((src, ProtoMsg::new(Op::InvAck, msg.addr)));
                false
            }
            Op::FwdGetS => {
                if let Some(st @ (L1State::M | L1State::E)) = self.cache.peek_mut(msg.addr) {
                    *st = L1State::S;
                    out.push((src, ProtoMsg::new(Op::OwnerData, msg.addr)));
                } else if self.wb.contains(&msg.addr) {
                    // Our own eviction races this forward (possibly our own
                    // re-request): the WB buffer must answer, or the home
                    // would wait on us forever.
                    self.forward_from_wb(src, msg.addr, out);
                } else if self.awaiting_grant(msg.addr) {
                    self.deferred_fwd.push((src, msg));
                } else {
                    self.forward_from_wb(src, msg.addr, out);
                }
                false
            }
            Op::FwdGetM => {
                if matches!(
                    self.cache.peek_mut(msg.addr).copied(),
                    Some(L1State::M | L1State::E)
                ) {
                    self.cache.remove(msg.addr);
                    out.push((src, ProtoMsg::new(Op::OwnerData, msg.addr)));
                } else if self.wb.contains(&msg.addr) {
                    self.forward_from_wb(src, msg.addr, out);
                } else if self.awaiting_grant(msg.addr) {
                    self.deferred_fwd.push((src, msg));
                } else {
                    self.forward_from_wb(src, msg.addr, out);
                }
                false
            }
            Op::WbAck => {
                if let Some(pos) = self.wb.iter().position(|&a| a == msg.addr) {
                    self.wb.remove(pos);
                }
                false
            }
            other => panic!("L1 at {} received unexpected {:?}", self.node, other),
        }
    }

    /// `true` when a forward for `addr` must wait for our own exclusive
    /// grant, which is still in flight (the home made us owner before
    /// forwarding, and the 1-flit forward can outrun the multi-flit grant).
    fn awaiting_grant(&self, addr: BlockAddr) -> bool {
        self.pending.is_some_and(|p| p.addr == addr)
    }

    /// A forward raced an eviction: serve it from the writeback buffer if
    /// the block is there, otherwise tell the home the data went by `PutM`.
    fn forward_from_wb(&mut self, home: NodeId, addr: BlockAddr, out: &mut Out) {
        if self.wb.contains(&addr) {
            self.stats.wb_forwards += 1;
            out.push((home, ProtoMsg::new(Op::OwnerData, addr)));
        } else {
            out.push((home, ProtoMsg::new(Op::FwdNack, addr)));
        }
    }

    /// All resident lines as `(block, state)` pairs (test hook).
    pub fn resident(&self) -> Vec<(BlockAddr, L1State)> {
        self.cache.iter().map(|l| (l.addr, l.state)).collect()
    }

    /// `true` if the L1 holds `addr` in any state (test hook).
    pub fn holds(&self, addr: BlockAddr) -> bool {
        self.cache.contains(addr)
    }

    /// Resident state of `addr`, if any (test hook).
    pub fn state_of(&mut self, addr: BlockAddr) -> Option<L1State> {
        self.cache.peek_mut(addr).map(|s| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOME: NodeId = NodeId(9);

    fn l1() -> L1 {
        L1::new(NodeId(1), 8, 2)
    }

    fn home_of(_: BlockAddr) -> NodeId {
        HOME
    }

    #[test]
    fn read_miss_fetch_then_hit() {
        let mut c = l1();
        let mut out = Out::new();
        assert_eq!(c.access(0x40, false, HOME, &mut out), Access::Miss);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::GetS, 0x40))]);
        out.clear();
        let resumed = c.handle(HOME, ProtoMsg::new(Op::DataExcl, 0x40), home_of, &mut out);
        assert!(resumed);
        assert_eq!(c.state_of(0x40), Some(L1State::E));
        assert_eq!(c.access(0x40, false, HOME, &mut out), Access::Hit);
        // Silent E->M upgrade on a store hit.
        assert_eq!(c.access(0x40, true, HOME, &mut out), Access::Hit);
        assert_eq!(c.state_of(0x40), Some(L1State::M));
    }

    #[test]
    fn shared_write_upgrades_via_getm() {
        let mut c = l1();
        let mut out = Out::new();
        c.access(0x40, false, HOME, &mut out);
        out.clear();
        c.handle(HOME, ProtoMsg::new(Op::Data, 0x40), home_of, &mut out);
        assert_eq!(c.state_of(0x40), Some(L1State::S));
        assert_eq!(c.access(0x40, true, HOME, &mut out), Access::Miss);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::GetM, 0x40))]);
        out.clear();
        c.handle(HOME, ProtoMsg::new(Op::DataExcl, 0x40), home_of, &mut out);
        assert_eq!(c.state_of(0x40), Some(L1State::M));
    }

    #[test]
    fn inv_during_upgrade_still_completes() {
        let mut c = l1();
        let mut out = Out::new();
        c.access(0x40, false, HOME, &mut out);
        c.handle(
            HOME,
            ProtoMsg::new(Op::Data, 0x40),
            home_of,
            &mut Out::new(),
        );
        c.access(0x40, true, HOME, &mut Out::new());
        // Another core won the race: we get invalidated while upgrading.
        out.clear();
        let resumed = c.handle(HOME, ProtoMsg::new(Op::Inv, 0x40), home_of, &mut out);
        assert!(!resumed);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::InvAck, 0x40))]);
        assert!(!c.holds(0x40));
        // The DataExcl still arrives and refills in M.
        let resumed = c.handle(
            HOME,
            ProtoMsg::new(Op::DataExcl, 0x40),
            home_of,
            &mut Out::new(),
        );
        assert!(resumed);
        assert_eq!(c.state_of(0x40), Some(L1State::M));
    }

    #[test]
    fn dirty_eviction_issues_putm_and_buffers() {
        let mut c = L1::new(NodeId(1), 2, 2); // 1 set x 2 ways
        let mut out = Out::new();
        for (i, addr) in [0x40u64, 0x80].iter().enumerate() {
            c.access(*addr, true, HOME, &mut out);
            c.handle(
                HOME,
                ProtoMsg::new(Op::DataExcl, *addr),
                home_of,
                &mut Out::new(),
            );
            let _ = i;
        }
        out.clear();
        // Third block evicts LRU (0x40, Modified).
        c.access(0xC0, false, HOME, &mut out);
        c.handle(HOME, ProtoMsg::new(Op::Data, 0xC0), home_of, &mut out);
        assert!(out.contains(&(HOME, ProtoMsg::new(Op::PutM, 0x40))));
        // The block sits in the WB buffer: a racing forward is served.
        out.clear();
        c.handle(HOME, ProtoMsg::new(Op::FwdGetM, 0x40), home_of, &mut out);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::OwnerData, 0x40))]);
        assert_eq!(c.stats.wb_forwards, 1);
        // WbAck clears the buffer; a later forward is nacked.
        c.handle(
            HOME,
            ProtoMsg::new(Op::WbAck, 0x40),
            home_of,
            &mut Out::new(),
        );
        out.clear();
        c.handle(HOME, ProtoMsg::new(Op::FwdGetS, 0x40), home_of, &mut out);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::FwdNack, 0x40))]);
    }

    #[test]
    fn fwd_gets_downgrades_owner() {
        let mut c = l1();
        c.access(0x40, true, HOME, &mut Out::new());
        c.handle(
            HOME,
            ProtoMsg::new(Op::DataExcl, 0x40),
            home_of,
            &mut Out::new(),
        );
        let mut out = Out::new();
        c.handle(HOME, ProtoMsg::new(Op::FwdGetS, 0x40), home_of, &mut out);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::OwnerData, 0x40))]);
        assert_eq!(c.state_of(0x40), Some(L1State::S));
        // FwdGetM removes the line entirely.
        out.clear();
        c.access(0x40, true, HOME, &mut out); // re-upgrade pending
        out.clear();
        c.handle(HOME, ProtoMsg::new(Op::Inv, 0x40), home_of, &mut out);
        assert!(!c.holds(0x40));
    }

    #[test]
    fn forward_that_outran_the_grant_is_deferred_until_install() {
        // The home granted us exclusivity and immediately forwarded the
        // next requestor to us; the 1-flit forward arrives first.
        let mut c = l1();
        let mut out = Out::new();
        c.access(0x40, true, HOME, &mut out); // pending GetM
        out.clear();
        let resumed = c.handle(
            HOME,
            ProtoMsg::with_aux(Op::FwdGetM, 0x40, NodeId(2)),
            home_of,
            &mut out,
        );
        assert!(!resumed);
        assert!(out.is_empty(), "forward must wait for the grant: {out:?}");
        // The grant lands: install M, then serve the deferred forward
        // (losing the line again) in the same step.
        let resumed = c.handle(HOME, ProtoMsg::new(Op::DataExcl, 0x40), home_of, &mut out);
        assert!(resumed);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::OwnerData, 0x40))]);
        assert!(!c.holds(0x40), "FwdGetM surrendered the line");
    }

    #[test]
    fn deferred_fwd_gets_downgrades_after_install() {
        let mut c = l1();
        c.access(0x40, false, HOME, &mut Out::new()); // pending GetS
        let mut out = Out::new();
        c.handle(
            HOME,
            ProtoMsg::with_aux(Op::FwdGetS, 0x40, NodeId(2)),
            home_of,
            &mut out,
        );
        assert!(out.is_empty());
        c.handle(HOME, ProtoMsg::new(Op::DataExcl, 0x40), home_of, &mut out);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::OwnerData, 0x40))]);
        assert_eq!(
            c.state_of(0x40),
            Some(L1State::S),
            "downgraded by the forward"
        );
    }

    #[test]
    fn inv_that_outran_a_shared_grant_suppresses_install() {
        // We asked for a read copy; the home granted Data(S) and then a
        // writer invalidated all sharers. The Inv overtakes the grant.
        let mut c = l1();
        c.access(0x40, false, HOME, &mut Out::new()); // pending GetS
        let mut out = Out::new();
        let resumed = c.handle(HOME, ProtoMsg::new(Op::Inv, 0x40), home_of, &mut out);
        assert!(!resumed);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::InvAck, 0x40))]);
        // The stale Data arrives: the load completes, but the line is NOT
        // installed (it was already invalidated).
        let resumed = c.handle(
            HOME,
            ProtoMsg::new(Op::Data, 0x40),
            home_of,
            &mut Out::new(),
        );
        assert!(resumed, "the core's load still completes");
        assert!(!c.holds(0x40), "stale shared copy must not be kept");
    }

    #[test]
    fn exclusive_grant_after_stale_inv_still_installs() {
        // The Inv belonged to an *earlier* transaction (we were a stale
        // sharer); our own GetM was queued behind it, so its DataExcl is
        // fresh and must install.
        let mut c = l1();
        c.access(0x40, true, HOME, &mut Out::new()); // pending GetM
        c.handle(HOME, ProtoMsg::new(Op::Inv, 0x40), home_of, &mut Out::new());
        let resumed = c.handle(
            HOME,
            ProtoMsg::new(Op::DataExcl, 0x40),
            home_of,
            &mut Out::new(),
        );
        assert!(resumed);
        assert_eq!(c.state_of(0x40), Some(L1State::M));
    }

    #[test]
    fn inv_for_absent_block_still_acked() {
        let mut c = l1();
        let mut out = Out::new();
        c.handle(HOME, ProtoMsg::new(Op::Inv, 0x77), home_of, &mut out);
        assert_eq!(out, vec![(HOME, ProtoMsg::new(Op::InvAck, 0x77))]);
    }
}
