//! The busy-tick kernel and sharded ticking are execution details: a
//! full-system run must produce bit-identical results whether the network
//! sweeps SoA bitset words or per-router structs, and for any shard
//! count. The synthetic-traffic differential suite (`tests/
//! soa_differential.rs` at the workspace root) pins this cycle-by-cycle
//! on open-loop traffic; this test pins it end to end through the MESI
//! protocol stack, where injection timing feeds back into core progress
//! and any divergence compounds into different instruction counts.

use punchsim_cmp::{Benchmark, CmpConfig, CmpSim};
use punchsim_noc::BusyKernel;
use punchsim_types::SchemeKind;

fn digest(benchmark: Benchmark, scheme: SchemeKind, kernel: BusyKernel, shards: usize) -> String {
    let mut cfg = CmpConfig::new(benchmark, scheme);
    cfg.instr_per_core = 500;
    cfg.warmup_instr = 50;
    let mut sim = CmpSim::new(cfg);
    sim.network_mut().set_busy_kernel(kernel);
    sim.network_mut()
        .set_shards(shards)
        .expect("8 rows accommodate the test's shard counts");
    let r = sim.run();
    // The full Debug rendering covers every report field, float bits and
    // all — any divergence anywhere shows up as a string mismatch.
    format!("{r:?}")
}

#[test]
fn full_system_runs_are_identical_across_busy_kernels_and_shards() {
    for (benchmark, scheme) in [
        (Benchmark::Canneal, SchemeKind::PowerPunchFull),
        (Benchmark::Blackscholes, SchemeKind::ConvOptPg),
    ] {
        let reference = digest(benchmark, scheme, BusyKernel::Struct, 1);
        for (kernel, shards) in [
            (BusyKernel::Soa, 1),
            (BusyKernel::Soa, 2),
            (BusyKernel::Soa, 4),
        ] {
            assert_eq!(
                reference,
                digest(benchmark, scheme, kernel, shards),
                "{benchmark:?}/{scheme:?} diverged under {kernel:?} x{shards}"
            );
        }
    }
}
