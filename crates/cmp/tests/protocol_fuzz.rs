//! Protocol fuzzing: L1 controllers and a directory bank exchanging
//! messages over an adversarial channel that delays and reorders messages
//! *more* aggressively than the real NoC ever could (only per-pair
//! same-class FIFO order is preserved where the design relies on it —
//! nothing else). Every interleaving must terminate with a coherent
//! system and every request answered.

use punchsim_cmp::dir::DirBank;
use punchsim_cmp::protocol::{BlockAddr, Op, ProtoMsg};
use punchsim_cmp::tile::{Access, L1State, L1};
use punchsim_types::{NodeId, SimRng};

const HOME: NodeId = NodeId(100);
const MEM: NodeId = NodeId(101);

/// A message in flight with its delivery time.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    at: u64,
    src: NodeId,
    dst: NodeId,
    msg: ProtoMsg,
}

struct Harness {
    l1s: Vec<L1>,
    dir: DirBank,
    wire: Vec<InFlight>,
    mem_pending: Vec<(u64, ProtoMsg)>,
    now: u64,
    rng: SimRng,
    pending_core: Vec<Option<(BlockAddr, bool)>>,
    completed: usize,
}

impl Harness {
    fn new(cores: usize, seed: u64) -> Self {
        Harness {
            l1s: (0..cores)
                .map(|i| L1::new(NodeId(i as u16), 4, 2)) // tiny: heavy evictions
                .collect(),
            dir: DirBank::new(HOME, 4, 2, vec![MEM]), // tiny L2: heavy refetches
            wire: Vec::new(),
            mem_pending: Vec::new(),
            now: 0,
            rng: SimRng::seed_from_u64(seed),
            pending_core: vec![None; cores],
            completed: 0,
        }
    }

    /// Sends with a random delay; same-source protocol-class pairs keep
    /// their order only when the real network would (same vnet + class).
    fn post(&mut self, src: NodeId, dst: NodeId, msg: ProtoMsg) {
        let mut at = self.now + 1 + self.rng.random_range(0..12u64);
        // Preserve FIFO only for identical (src, dst, vnet) *control*
        // traffic — the only ordering the real NoC guarantees (one control
        // VC per vnet). Data-class messages ride two VCs and may reorder
        // freely, so the fuzzer lets them.
        if msg.op.class() == punchsim_noc::MsgClass::Control {
            for f in &self.wire {
                if f.src == src
                    && f.dst == dst
                    && f.msg.op.vnet() == msg.op.vnet()
                    && f.msg.op.class() == msg.op.class()
                {
                    at = at.max(f.at + 1);
                }
            }
        }
        if std::env::var("FUZZ_TRACE").is_ok() && msg.addr == 0xf {
            eprintln!(
                "[{}] post {}->{} {:?} (deliver @{at})",
                self.now, src, dst, msg.op
            );
        }
        self.wire.push(InFlight { at, src, dst, msg });
    }

    fn step(&mut self) {
        self.now += 1;
        // Memory responses.
        let due_mem: Vec<ProtoMsg> = {
            let now = self.now;
            let mut v = Vec::new();
            self.mem_pending.retain(|&(at, m)| {
                if at <= now {
                    v.push(m);
                    false
                } else {
                    true
                }
            });
            v
        };
        for m in due_mem {
            self.post(MEM, HOME, m);
        }
        // Wire deliveries (in timestamp order for determinism).
        let mut due: Vec<InFlight> = Vec::new();
        let now = self.now;
        self.wire.retain(|f| {
            if f.at <= now {
                due.push(*f);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| (f.at, f.src.0, f.msg.encode()));
        for f in due {
            if f.dst == HOME {
                let mut out = Vec::new();
                self.dir.handle(f.src, f.msg, &mut out);
                for (dst, m) in out {
                    if matches!(m.op, Op::MemRead) {
                        self.mem_pending
                            .push((self.now + 5, ProtoMsg::new(Op::MemData, m.addr)));
                    } else if matches!(m.op, Op::MemWrite) {
                        // absorbed
                    } else {
                        self.post(HOME, dst, m);
                    }
                }
            } else if f.dst == MEM {
                if f.msg.op == Op::MemRead {
                    self.mem_pending
                        .push((self.now + 5, ProtoMsg::new(Op::MemData, f.msg.addr)));
                }
            } else {
                let idx = f.dst.index();
                let mut out = Vec::new();
                let resumed = self.l1s[idx].handle(f.src, f.msg, |_| HOME, &mut out);
                for (dst, m) in out {
                    self.post(f.dst, dst, m);
                }
                if resumed {
                    self.pending_core[idx] = None;
                    self.completed += 1;
                }
            }
        }
    }

    fn maybe_issue(&mut self, blocks: u64) {
        for i in 0..self.l1s.len() {
            if self.pending_core[i].is_some() {
                continue;
            }
            if self.rng.random_f64() < 0.3 {
                let addr: BlockAddr = self.rng.random_range(0..blocks);
                let is_write = self.rng.random_f64() < 0.4;
                let mut out = Vec::new();
                let res = self.l1s[i].access(addr, is_write, HOME, &mut out);
                for (dst, m) in out {
                    self.post(NodeId(i as u16), dst, m);
                }
                if res == Access::Miss {
                    self.pending_core[i] = Some((addr, is_write));
                } else {
                    self.completed += 1;
                }
            }
        }
    }

    fn quiesced(&self) -> bool {
        self.wire.is_empty()
            && self.mem_pending.is_empty()
            && self.pending_core.iter().all(Option::is_none)
    }

    fn check_coherence(&self) {
        // Single-writer invariant across all L1s at quiescence.
        use std::collections::HashMap;
        let mut holders: HashMap<BlockAddr, Vec<(usize, L1State)>> = HashMap::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            for (addr, st) in l1.resident() {
                holders.entry(addr).or_default().push((i, st));
            }
        }
        for (addr, hs) in holders {
            let excl = hs.iter().any(|(_, s)| matches!(s, L1State::M | L1State::E));
            assert!(
                !(excl && hs.len() > 1),
                "block {addr:#x} incoherent: {hs:?}"
            );
        }
    }
}

fn fuzz(seed: u64, cores: usize, blocks: u64, rounds: u64) {
    let mut h = Harness::new(cores, seed);
    for _ in 0..rounds {
        h.maybe_issue(blocks);
        h.step();
    }
    // Drain.
    let mut guard = 0;
    while !h.quiesced() {
        h.step();
        guard += 1;
        if guard >= 200_000 {
            for (i, p) in h.pending_core.iter().enumerate() {
                if let Some((a, w)) = p {
                    eprintln!(
                        "core {i}: pending addr {a:#x} write={w}; dir state {:?} busy {}",
                        h.dir.dir_state(*a),
                        h.dir.is_busy(*a)
                    );
                }
            }
            panic!("seed {seed}: protocol failed to quiesce");
        }
    }
    h.check_coherence();
    assert!(h.completed > 0);
}

#[test]
fn fuzz_small_hot_block_set() {
    // 4 cores hammering 3 blocks: maximal contention and eviction churn.
    for seed in 0..150 {
        fuzz(seed, 4, 3, 800);
    }
}

#[test]
fn fuzz_medium_working_set() {
    for seed in 1000..1060 {
        fuzz(seed, 8, 16, 600);
    }
}

#[test]
fn fuzz_many_cores_one_block() {
    // Every core fights for the same block: pure ownership migration.
    for seed in 2000..2080 {
        fuzz(seed, 12, 1, 500);
    }
}

#[test]
fn fuzz_with_extreme_delays() {
    // Long soaks with large random reorder windows.
    for seed in [7777, 31337, 424242, 5150, 90210] {
        fuzz(seed, 6, 8, 5_000);
    }
}
