//! Ablation: the idle-timeout filter (§2.3) — short timeouts gate
//! aggressively but power off before short idle gaps end (break-even
//! losses + blocking); long timeouts waste exploitable idle cycles. The
//! paper fixes 4 cycles, consistent with [7, 9]; Power Punch's exact
//! forewarning is what removes this dilemma.

use punchsim::power::PowerModel;
use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    let pm = PowerModel::default_45nm();
    for scheme in [SchemeKind::ConvOptPg, SchemeKind::PowerPunchFull] {
        println!("== ablation: idle timeout under {scheme} ==");
        let mut t = Table::new([
            "timeout (cyc)",
            "latency",
            "wait cyc/pkt",
            "off %",
            "wake events",
            "static saved %",
        ]);
        for timeout in [2u32, 4, 8, 16, 32] {
            let mut cfg = SimConfig::with_scheme(scheme);
            cfg.power.idle_timeout = timeout;
            let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
            let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
            t.row([
                timeout.to_string(),
                format!("{:.1}", r.avg_packet_latency()),
                format!("{:.2}", r.avg_wakeup_wait()),
                format!("{:.1}", r.off_fraction() * 100.0),
                r.pg.total_wake_events().to_string(),
                format!("{:.1}", pm.static_savings(&r) * 100.0),
            ]);
        }
        println!("{t}");
    }
    println!(
        "expected: ConvOpt trades latency against savings through the\n\
         timeout; PowerPunch-PG's latency is flat because forewarning, not\n\
         the timeout, decides when sleeping is safe."
    );
}
