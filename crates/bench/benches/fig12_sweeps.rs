//! Figure 12: packet latency and router static power across the full load
//! range for uniform-random, bit-complement and transpose traffic, under
//! No-PG, ConvOpt-PG and PowerPunch-PG.
//!
//! Paper shape to match: ConvOpt shows the "power-gating curve" (high
//! latency at low load, dipping, then rising to saturation); PowerPunch-PG
//! tracks No-PG across the entire range and reaches the same saturation
//! throughput; both gating schemes save similar static power.

use punchsim::power::PowerModel;
use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    let pm = PowerModel::default_45nm();
    let schemes = [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchFull,
    ];
    for pattern in TrafficPattern::FIGURE12 {
        // Transpose and bit-complement saturate earlier than uniform.
        let rates: &[f64] = if pattern == TrafficPattern::UniformRandom {
            &[0.0025, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.20]
        } else {
            &[0.0025, 0.01, 0.02, 0.04, 0.06, 0.09, 0.12]
        };
        println!("== Figure 12 ({pattern}): latency / static power vs load ==");
        let mut t = Table::new([
            "load",
            "No-PG lat",
            "ConvOpt lat",
            "PP-PG lat",
            "No-PG W",
            "ConvOpt W",
            "PP-PG W",
        ]);
        for &rate in rates {
            let mut lats = Vec::new();
            let mut watts = Vec::new();
            for scheme in schemes {
                let cfg = SimConfig::with_scheme(scheme);
                let mut sim = SyntheticSim::new(cfg, pattern, rate);
                let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
                lats.push(format!("{:.1}", r.avg_packet_latency()));
                watts.push(format!("{:.2}", pm.static_power_watts(&r)));
            }
            let mut row = vec![format!("{rate:.4}")];
            row.extend(lats);
            row.extend(watts);
            t.row(row);
        }
        println!("{t}");
    }
    println!(
        "paper shape: ConvOpt latency is worst at low load and stays above\n\
         No-PG everywhere; PowerPunch-PG is indistinguishable from No-PG and\n\
         reaches the same saturation; static power of both gating schemes\n\
         rises from ~0 W toward the ~1.8 W always-on ceiling as load grows."
    );
}
