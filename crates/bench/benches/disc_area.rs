//! §6.6(1): hardware cost of the punch-signal network — wire widths from
//! the codebook enumeration and the area overhead versus conventional
//! power-gating (paper: ~2.4% of NoC area for the H=3 design).

use punchsim::core::Codebook;
use punchsim::power::AreaModel;
use punchsim::stats::Table;
use punchsim::types::Mesh;

fn main() {
    println!("== §6.6(1): punch-network hardware cost ==");
    let area = AreaModel::default_45nm();
    let mut t = Table::new([
        "punch depth H",
        "X bits",
        "Y bits",
        "wire bits/router",
        "NoC area overhead",
    ]);
    for h in 2..=4u16 {
        let cb = Codebook::enumerate(Mesh::new(8, 8), h);
        let (x, y) = (cb.max_x_width(), cb.max_y_width());
        t.row([
            h.to_string(),
            x.to_string(),
            y.to_string(),
            (2 * x + 2 * y).to_string(),
            format!("{:.1}%", area.punch_overhead(x, y) * 100.0),
        ]);
    }
    println!("{t}");
    println!("paper: 2.4% additional NoC area for the 5-bit/2-bit H=3 design");
    let cb3 = Codebook::enumerate(Mesh::new(8, 8), 3);
    let o = area.punch_overhead(cb3.max_x_width(), cb3.max_y_width());
    assert!((0.015..0.035).contains(&o), "area overhead {o} out of band");
    println!("disc_area: OK");
}
