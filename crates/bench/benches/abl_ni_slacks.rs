//! Ablation: the two injection-node slack sources of §4.2, separately.
//!
//! * **Slack 1**: destination known at NI entry → multi-hop punches leave
//!   `ni_latency` (~3) cycles early.
//! * **Slack 2**: the node knows "a packet is coming" at resource-access
//!   start → the local router wakes ~6 cycles earlier still (no
//!   destination needed).
//!
//! Figure 10's PP-Signal vs PP-PG gap is the combination; this bench pulls
//! them apart. Uses a custom-wired network (the ablation constructor
//! `PowerPunchManager::with_slacks`).

use punchsim::core::manager::PowerPunchManager;
use punchsim::stats::Table;
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    println!("== ablation: injection-node slack sources (§4.2) ==");
    let mut t = Table::new([
        "slack 1 (NI entry)",
        "slack 2 (resource access)",
        "latency",
        "wait cyc/pkt",
        "blocked/pkt",
    ]);
    for (s1, s2) in [(false, false), (true, false), (false, true), (true, true)] {
        let cfg = SimConfig::with_scheme(SchemeKind::PowerPunchSignal);
        let mesh = cfg.noc.topology;
        let hop = cfg.noc.hop_latency();
        // Build the manager with the ablated slack combination directly
        // (the `build_power_manager` factory only exposes the paper's two
        // endpoint configurations).
        let pm = Box::new(PowerPunchManager::with_slacks(
            mesh, &cfg.power, hop, s1, s2,
        ));
        let mut net = punchsim::noc::Network::new(&cfg.noc, pm).unwrap();
        let r = drive(&mut net, synth_cycles());
        t.row([
            if s1 { "on" } else { "off" }.to_string(),
            if s2 { "on" } else { "off" }.to_string(),
            format!("{:.1}", r.0),
            format!("{:.2}", r.1),
            format!("{:.2}", r.2),
        ]);
    }
    println!("{t}");
    println!(
        "expected: slack 1 helps the first network hops; slack 2 removes\n\
         the local-router wakeup; together they reach PowerPunch-PG."
    );
}

/// Drives `net` with a deterministic light load, firing slack-2
/// notifications 6 cycles ahead of each injection; returns
/// (mean latency, mean wait, mean blocked).
fn drive(net: &mut punchsim::noc::Network, cycles: u64) -> (f64, f64, f64) {
    use punchsim::noc::{Message, MsgClass};
    use punchsim::types::{NodeId, VnetId};
    let nodes = net.topology().nodes() as u64;
    let mut pending: Vec<(u64, NodeId, NodeId)> = Vec::new();
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let warmup = cycles / 4;
    for c in 0..(warmup + cycles) {
        if c == warmup {
            net.reset_stats();
        }
        // ~0.002 packets/node/cycle total => one packet every ~8 cycles
        // on a 64-node mesh.
        if rand() % 8 == 0 {
            let src = NodeId((rand() % nodes) as u16);
            let dst = NodeId((rand() % nodes) as u16);
            net.notify_future_injection(src).unwrap();
            pending.push((c + 6, src, dst));
        }
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= c {
                let (_, src, dst) = pending.remove(i);
                net.send(Message {
                    src,
                    dst,
                    vnet: VnetId(0),
                    class: MsgClass::Control,
                    payload: 0,
                    gen_cycle: c,
                })
                .unwrap();
            } else {
                i += 1;
            }
        }
        net.tick().unwrap();
        for n in 0..nodes {
            net.take_delivered(NodeId(n as u16));
        }
    }
    let r = net.report();
    (
        r.avg_packet_latency(),
        r.avg_wakeup_wait(),
        r.avg_pg_encounters(),
    )
}
