//! Figure 9: average number of powered-off (blocked) routers a packet
//! encounters from source to destination.
//!
//! Paper shape to match: 4.21 (ConvOpt) -> 1.09 (PP-Signal) -> 0.96 (PP-PG).

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{average, parsec_campaign, pick};

fn main() {
    let runs = parsec_campaign();
    println!("== Figure 9: powered-off routers encountered per packet ==");
    let mut t = Table::new([
        "benchmark",
        "ConvOpt-PG",
        "PowerPunch-Signal",
        "PowerPunch-PG",
    ]);
    for b in Benchmark::ALL {
        t.row([
            b.name().to_string(),
            format!("{:.2}", pick(&runs, b, SchemeKind::ConvOptPg).encounters),
            format!(
                "{:.2}",
                pick(&runs, b, SchemeKind::PowerPunchSignal).encounters
            ),
            format!(
                "{:.2}",
                pick(&runs, b, SchemeKind::PowerPunchFull).encounters
            ),
        ]);
    }
    println!("{t}");
    println!("averages (paper in parentheses):");
    for (scheme, paper) in [
        (SchemeKind::ConvOptPg, "4.21"),
        (SchemeKind::PowerPunchSignal, "1.09"),
        (SchemeKind::PowerPunchFull, "0.96"),
    ] {
        println!(
            "  {:<18} {:.2}   (paper {paper})",
            scheme.label(),
            average(&runs, scheme, |r| r.encounters)
        );
    }
}
