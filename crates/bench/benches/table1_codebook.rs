//! Table 1: the 22 distinct punch-signal target sets on the X+ link of R27
//! (8x8 mesh, 3-hop punches) and the resulting wire widths.

use punchsim::core::Codebook;
use punchsim::stats::Table;
use punchsim::types::{Direction, Mesh, NodeId};

fn main() {
    let mesh = Mesh::new(8, 8);
    let cb = Codebook::enumerate(mesh, 3);
    let link = cb.link(NodeId(27), Direction::East).expect("interior link");

    println!("== Table 1: punch-signal sets on the X+ link of R27 ==");
    let mut t = Table::new(["#", "set of targeted routers", "punch signal"]);
    for (i, set) in link.sets().iter().enumerate() {
        let code = link.encode(set).expect("in codebook");
        t.row([(i + 1).to_string(), set.to_string(), format!("{code:05b}")]);
    }
    println!("{t}");
    println!(
        "measured: {} sets in {} bits   |   paper: 22 sets in 5 bits",
        link.set_count(),
        link.width_bits()
    );
    let y = cb.max_y_width();
    println!("Y-direction links: {y} bits   |   paper: 2 bits");
    assert_eq!(link.set_count(), 22, "Table 1 must reproduce exactly");
    assert_eq!(link.width_bits(), 5);
    assert_eq!(y, 2);
    println!("table1_codebook: OK");
}
