//! Figure 7: average packet latency of the PARSEC benchmarks under the
//! four schemes (full-system runs on the MESI CMP substrate).
//!
//! Paper shape to match: ConvOpt-PG +69.1% over No-PG on average,
//! PowerPunch-Signal +12.6%, PowerPunch-PG +7.9%.

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{average, parsec_campaign, pick};

fn main() {
    let runs = parsec_campaign();
    println!("== Figure 7: average packet latency (cycles) ==");
    let mut t = Table::new([
        "benchmark",
        "No-PG",
        "ConvOpt-PG",
        "PowerPunch-Signal",
        "PowerPunch-PG",
    ]);
    for b in Benchmark::ALL {
        t.row([
            b.name().to_string(),
            format!("{:.1}", pick(&runs, b, SchemeKind::NoPg).latency),
            format!("{:.1}", pick(&runs, b, SchemeKind::ConvOptPg).latency),
            format!(
                "{:.1}",
                pick(&runs, b, SchemeKind::PowerPunchSignal).latency
            ),
            format!("{:.1}", pick(&runs, b, SchemeKind::PowerPunchFull).latency),
        ]);
    }
    println!("{t}");
    let base = average(&runs, SchemeKind::NoPg, |r| r.latency);
    println!("average latency increase over No-PG (paper in parentheses):");
    for (scheme, paper) in [
        (SchemeKind::ConvOptPg, "+69.1%"),
        (SchemeKind::PowerPunchSignal, "+12.6%"),
        (SchemeKind::PowerPunchFull, "+7.9%"),
    ] {
        let avg = average(&runs, scheme, |r| r.latency);
        println!(
            "  {:<18} {:+.1}%   (paper {paper})",
            scheme.label(),
            (avg / base - 1.0) * 100.0
        );
    }
}
