//! Figure 8: full-system execution time, normalized to No-PG.
//!
//! Paper shape to match: PowerPunch-Signal +2.3% and PowerPunch-PG +0.4%
//! execution time on average; ConvOpt-PG visibly worse.

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{parsec_campaign, pick};

fn main() {
    let runs = parsec_campaign();
    println!("== Figure 8: execution time normalized to No-PG ==");
    let mut t = Table::new([
        "benchmark",
        "No-PG",
        "ConvOpt-PG",
        "PowerPunch-Signal",
        "PowerPunch-PG",
    ]);
    let mut sums = [0.0f64; 3];
    for b in Benchmark::ALL {
        let base = pick(&runs, b, SchemeKind::NoPg).exec_cycles as f64;
        let conv = pick(&runs, b, SchemeKind::ConvOptPg).exec_cycles as f64 / base;
        let pps = pick(&runs, b, SchemeKind::PowerPunchSignal).exec_cycles as f64 / base;
        let ppf = pick(&runs, b, SchemeKind::PowerPunchFull).exec_cycles as f64 / base;
        sums[0] += conv;
        sums[1] += pps;
        sums[2] += ppf;
        t.row([
            b.name().to_string(),
            "1.000".to_string(),
            format!("{conv:.3}"),
            format!("{pps:.3}"),
            format!("{ppf:.3}"),
        ]);
    }
    println!("{t}");
    let n = Benchmark::ALL.len() as f64;
    println!("average execution-time increase (paper in parentheses):");
    println!("  ConvOpt-PG         {:+.2}%", (sums[0] / n - 1.0) * 100.0);
    println!(
        "  PowerPunch-Signal  {:+.2}%   (paper +2.3%)",
        (sums[1] / n - 1.0) * 100.0
    );
    println!(
        "  PowerPunch-PG      {:+.2}%   (paper +0.4%)",
        (sums[2] / n - 1.0) * 100.0
    );
}
