//! Ablation: what the "Opt" in ConvOpt-PG buys (§2.3). Plain conventional
//! gating wakes a router only when a packet is already stalled next to it;
//! the optimized version adds the look-ahead early wakeup [24] and the
//! idle-timeout filter. Power Punch then removes the remaining blocking.

use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    println!("== ablation: conventional gating optimizations ==");
    let mut t = Table::new([
        "scheme",
        "latency",
        "blocked/pkt",
        "wait cyc/pkt",
        "off %",
    ]);
    for scheme in [
        SchemeKind::NoPg,
        SchemeKind::ConvPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ] {
        let cfg = SimConfig::with_scheme(scheme);
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
        let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
        t.row([
            scheme.label().to_string(),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:.2}", r.avg_pg_encounters()),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{:.1}", r.off_fraction() * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "expected: each step cuts waiting — blocked-only wakeups (Conv) >\n\
         one-hop early wakeups (ConvOpt) > multi-hop punches (PP-Signal) >\n\
         punches + NI slack (PP-PG)."
    );
}
