//! Ablation: traffic burstiness. Real coherence traffic arrives in bursts;
//! bursts are friendlier to power-gating (long coherent quiet periods)
//! but punish blocking schemes at burst onsets. Power Punch should keep
//! its near-No-PG latency across the burstiness range.

use punchsim::power::PowerModel;
use punchsim::stats::Table;
use punchsim::traffic::{InjectionConfig, SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    let pm = PowerModel::default_45nm();
    println!("== ablation: traffic burstiness at 0.005 flits/node/cycle ==");
    let mut t = Table::new([
        "burstiness",
        "scheme",
        "latency",
        "wait/pkt",
        "off %",
        "static saved %",
    ]);
    for b in [0.0, 0.3, 0.6, 0.8] {
        for scheme in [
            SchemeKind::NoPg,
            SchemeKind::ConvOptPg,
            SchemeKind::PowerPunchFull,
        ] {
            let cfg = SimConfig::with_scheme(scheme);
            let mut inj = InjectionConfig::at_rate(0.005);
            inj.burstiness = b;
            let mut sim =
                SyntheticSim::with_injection(cfg, TrafficPattern::UniformRandom, inj);
            let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
            t.row([
                format!("{b:.1}"),
                scheme.label().to_string(),
                format!("{:.1}", r.avg_packet_latency()),
                format!("{:.2}", r.avg_wakeup_wait()),
                format!("{:.1}", r.off_fraction() * 100.0),
                format!("{:.1}", pm.static_savings(&r) * 100.0),
            ]);
        }
    }
    println!("{t}");
    println!(
        "expected: burstier traffic lengthens idle periods (more off-time\n\
         for every scheme) while Power Punch's latency stays pinned to\n\
         No-PG; ConvOpt's penalty persists at burst onsets."
    );
}
