//! Criterion performance benchmarks of the simulator itself (not a paper
//! figure): cycles/second of the network substrate and the codebook
//! enumeration cost quoted in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use punchsim::core::Codebook;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{Mesh, SchemeKind, SimConfig};

fn bench_network_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for scheme in [SchemeKind::NoPg, SchemeKind::PowerPunchFull] {
        g.bench_function(format!("1k cycles 8x8 {scheme}"), |b| {
            b.iter_batched(
                || {
                    let cfg = SimConfig::with_scheme(scheme);
                    let mut sim =
                        SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.05);
                    sim.run(500).unwrap(); // warm structures
                    sim
                },
                |mut sim| {
                    sim.run(1_000).unwrap();
                    black_box(sim.report().stats.packets_delivered)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_codebook(c: &mut Criterion) {
    c.bench_function("codebook enumerate 8x8 H=3", |b| {
        b.iter(|| black_box(Codebook::enumerate(Mesh::new(8, 8), 3)).total_wire_bits());
    });
}

criterion_group!(benches, bench_network_tick, bench_codebook);
criterion_main!(benches);
