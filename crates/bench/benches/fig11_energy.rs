//! Figure 11: breakdown of router energy (dynamic / static / power-gating
//! overhead), normalized to No-PG.
//!
//! Paper shape to match: ~83% net static-energy savings for all three
//! gating schemes; total router energy savings 50.3% (ConvOpt), 52.9%
//! (PP-Signal), 54.1% (PP-PG) — Power Punch slightly ahead.

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{parsec_campaign, pick, RunMetrics};

fn total(r: RunMetrics) -> f64 {
    r.dynamic_pj + r.static_pj + r.overhead_pj
}

fn main() {
    let runs = parsec_campaign();
    println!("== Figure 11: router energy breakdown, normalized to No-PG ==");
    let mut t = Table::new([
        "benchmark",
        "scheme",
        "dynamic",
        "static",
        "PG overhead",
        "total",
    ]);
    let mut agg = [(0.0, 0.0); 4]; // (total ratio, net static ratio)
    for b in Benchmark::ALL {
        let base = total(pick(&runs, b, SchemeKind::NoPg));
        let base_static = pick(&runs, b, SchemeKind::NoPg).static_pj;
        for (i, scheme) in SchemeKind::EVALUATED.iter().enumerate() {
            let r = pick(&runs, b, *scheme);
            t.row([
                b.name().to_string(),
                scheme.label().to_string(),
                format!("{:.3}", r.dynamic_pj / base),
                format!("{:.3}", r.static_pj / base),
                format!("{:.3}", r.overhead_pj / base),
                format!("{:.3}", total(r) / base),
            ]);
            agg[i].0 += total(r) / base;
            agg[i].1 += (r.static_pj + r.overhead_pj) / base_static;
        }
    }
    println!("{t}");
    let n = Benchmark::ALL.len() as f64;
    println!("averages (paper in parentheses):");
    for (i, (scheme, paper_total)) in [
        (SchemeKind::NoPg, "0.0%"),
        (SchemeKind::ConvOptPg, "50.3%"),
        (SchemeKind::PowerPunchSignal, "52.9%"),
        (SchemeKind::PowerPunchFull, "54.1%"),
    ]
    .iter()
    .enumerate()
    {
        println!(
            "  {:<18} total energy saved {:>5.1}% (paper {paper_total}); net static saved {:>5.1}% (paper ~83%)",
            scheme.label(),
            (1.0 - agg[i].0 / n) * 100.0,
            (1.0 - agg[i].1 / n) * 100.0,
        );
    }
}
