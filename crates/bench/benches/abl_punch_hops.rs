//! Ablation: punch-signal depth H (§4.1 discusses the simplified 2-hop and
//! extended 4-hop designs).
//!
//! Expected shape: H=2 cannot cover Twakeup=8 on a 3-stage router
//! (2 x Trouter = 6 < 8) and leaves residual blocking; H=3 covers it;
//! H=4 buys nothing at Twakeup=8 but wakes routers earlier, costing
//! off-cycles ("sending wakeup signals with 5 hops or more would be
//! counter-productive").

use punchsim::power::PowerModel;
use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    let pm = PowerModel::default_45nm();
    println!("== ablation: punch depth H (3-stage router, Twakeup=8) ==");
    let mut t = Table::new([
        "H",
        "latency",
        "vs No-PG",
        "wait cyc/pkt",
        "off %",
        "static saved %",
        "punch hops sent",
    ]);
    let base = {
        let cfg = SimConfig::with_scheme(SchemeKind::NoPg);
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
        sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap()
            .avg_packet_latency()
    };
    for h in 1..=4u16 {
        let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
        cfg.power.punch_hops = h;
        let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.005);
        let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
        t.row([
            h.to_string(),
            format!("{:.1}", r.avg_packet_latency()),
            format!("{:+.1}%", (r.avg_packet_latency() / base - 1.0) * 100.0),
            format!("{:.2}", r.avg_wakeup_wait()),
            format!("{:.1}", r.off_fraction() * 100.0),
            format!("{:.1}", pm.static_savings(&r) * 100.0),
            r.pg.punch_hops.to_string(),
        ]);
    }
    println!("{t}");
    println!("expected: latency penalty shrinks up to H=3; H=4 only spends more wire activity and on-time.");
}
