//! Figure 13: sensitivity of average packet latency to the wakeup latency
//! and the router pipeline depth (uniform random at the PARSEC-average
//! load, 3-hop punch signals).
//!
//! Paper shape to match: ConvOpt-PG is 1.5x-2x No-PG everywhere;
//! PowerPunch-PG stays within 2.4%-9.2% of No-PG, with the worst case at
//! Twakeup=10 on the 3-stage router, where 3 hops of punch slack (9 cycles)
//! cannot cover the full wakeup.

use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    // PARSEC-average load (see EXPERIMENTS.md).
    let rate = 0.005;
    println!("== Figure 13: wakeup-latency / pipeline sensitivity ==");
    let mut t = Table::new([
        "router",
        "Twakeup",
        "No-PG",
        "ConvOpt-PG",
        "PowerPunch-PG",
        "PP-PG vs No-PG",
    ]);
    for (stages, wakeups) in [(3u8, [6u32, 8, 10]), (4u8, [8, 10, 12])] {
        for wakeup in wakeups {
            let mut lats = Vec::new();
            for scheme in [
                SchemeKind::NoPg,
                SchemeKind::ConvOptPg,
                SchemeKind::PowerPunchFull,
            ] {
                let mut cfg = SimConfig::with_scheme(scheme);
                cfg.noc.router_stages = stages;
                cfg.power.wakeup_latency = wakeup;
                cfg.power.punch_hops = 3;
                let mut sim =
                    SyntheticSim::new(cfg, TrafficPattern::UniformRandom, rate);
                let r = sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap();
                lats.push(r.avg_packet_latency());
            }
            t.row([
                format!("{stages}-stage"),
                wakeup.to_string(),
                format!("{:.1}", lats[0]),
                format!("{:.1}", lats[1]),
                format!("{:.1}", lats[2]),
                format!("{:+.1}%", (lats[2] / lats[0] - 1.0) * 100.0),
            ]);
        }
    }
    println!("{t}");
    println!(
        "paper shape: PP-PG stays within single-digit percent of No-PG in\n\
         all cases; the worst case is Twakeup=10 with the 3-stage router\n\
         (3-hop punches hide at most 9 cycles); ConvOpt is 1.5x-2x."
    );
}
