//! §2.1 motivation: "router static power still accounts for nearly 64% of
//! the total router power consumption" at real-application loads — the
//! reason power-gating matters at all. Computed from the No-PG runs of the
//! full-system campaign.

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{parsec_campaign, pick};

fn main() {
    let runs = parsec_campaign();
    println!("== §2.1 motivation: static share of router power under No-PG ==");
    let mut t = Table::new(["benchmark", "static share", "offered traffic energy share"]);
    let mut sum = 0.0;
    for b in Benchmark::ALL {
        let r = pick(&runs, b, SchemeKind::NoPg);
        let total = r.dynamic_pj + r.static_pj;
        let share = r.static_pj / total;
        sum += share;
        t.row([
            b.name().to_string(),
            format!("{:.1}%", share * 100.0),
            format!("{:.1}%", r.dynamic_pj / total * 100.0),
        ]);
    }
    println!("{t}");
    let avg = sum / Benchmark::ALL.len() as f64;
    println!("average static share: {:.1}%   (paper: ~64%)", avg * 100.0);
    println!(
        "note: our synthetic workloads offer smoother, lower average loads\n\
         than PARSEC's phase-structured traffic, so static dominates even\n\
         more strongly here; the savings *ratios* (Figure 11) are computed\n\
         against the same model and are unaffected. See EXPERIMENTS.md."
    );
    assert!(
        avg > 0.6,
        "static must dominate at real-application loads (got {avg})"
    );
    println!("disc_motivation: OK");
}
