//! §6.6(2): scalability — PowerPunch-PG's latency reduction over ConvOpt-PG
//! at a fixed light load for 4x4 through 64x64 meshes.
//!
//! Paper shape to match: 43.4% / 54.9% / 69.1% at 0.01 flits/node/cycle
//! for 4x4/8x8/16x16 — the advantage grows with network size because
//! conventional gating accumulates wakeup latency per hop while punch
//! signals always run H hops ahead. Our ConvOpt baseline additionally
//! overlaps the wakeup tail with flit transit (see DESIGN.md), which
//! makes it stronger on long paths, so the trend is reproduced at a lower
//! load (0.002) and with a gentler slope; see EXPERIMENTS.md.
//!
//! The 32x32 and 64x64 rows extrapolate past the paper's largest mesh
//! (no published number — the paper column shows "—"): they exist to
//! exercise the SoA busy-tick kernel at the sizes it was built for, and
//! to check the hop-count advantage keeps holding as diameters double.
//! Sharded ticking speeds these rows up without changing a single
//! result byte: set `PP_SHARDS` (or run the `busy` campaign suite with
//! `--shards`).

use punchsim::stats::Table;
use punchsim::traffic::{SyntheticSim, TrafficPattern};
use punchsim::types::{Mesh, SchemeKind, SimConfig};
use punchsim_bench::synth_cycles;

fn main() {
    println!("== §6.6(2): scalability at 0.002 flits/node/cycle ==");
    let mut t = Table::new([
        "mesh",
        "No-PG",
        "ConvOpt-PG",
        "PowerPunch-PG",
        "PP-PG reduction vs ConvOpt",
        "paper",
    ]);
    let mut reductions = Vec::new();
    let meshes = [
        ((4u16, 4u16), "43.4%"),
        ((8, 8), "54.9%"),
        ((16, 16), "69.1%"),
        ((32, 32), "—"),
        ((64, 64), "—"),
    ];
    for ((w, h), paper) in meshes {
        let run = |scheme| {
            let mut cfg = SimConfig::with_scheme(scheme);
            cfg.noc.topology = Mesh::new(w, h).into();
            let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.002);
            sim.run_experiment(synth_cycles() / 4, synth_cycles()).unwrap()
                .avg_packet_latency()
        };
        let no = run(SchemeKind::NoPg);
        let conv = run(SchemeKind::ConvOptPg);
        let pp = run(SchemeKind::PowerPunchFull);
        let red = 1.0 - pp / conv;
        reductions.push(red);
        t.row([
            format!("{w}x{h}"),
            format!("{no:.1}"),
            format!("{conv:.1}"),
            format!("{pp:.1}"),
            format!("{:.1}%", red * 100.0),
            paper.to_string(),
        ]);
    }
    println!("{t}");
    assert!(
        *reductions.last().unwrap() > reductions[0] - 0.01,
        "the advantage must not shrink with mesh size: {reductions:?}"
    );
    println!("disc_scalability: OK (advantage sustained as the network grows)");
}
