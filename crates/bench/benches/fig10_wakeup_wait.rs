//! Figure 10: cycles per packet spent waiting for routers to wake up.
//!
//! Paper shape to match: PP-PG improves on PP-Signal by ~36% here (the NI
//! slack hides wakeup latency that the encounter count of Figure 9 cannot
//! show), and both are far below ConvOpt-PG.

use punchsim::cmp::Benchmark;
use punchsim::stats::Table;
use punchsim::types::SchemeKind;
use punchsim_bench::{average, parsec_campaign, pick};

fn main() {
    let runs = parsec_campaign();
    println!("== Figure 10: cycles/packet waiting for router wakeup ==");
    let mut t = Table::new([
        "benchmark",
        "ConvOpt-PG",
        "PowerPunch-Signal",
        "PowerPunch-PG",
    ]);
    for b in Benchmark::ALL {
        t.row([
            b.name().to_string(),
            format!("{:.2}", pick(&runs, b, SchemeKind::ConvOptPg).wait),
            format!("{:.2}", pick(&runs, b, SchemeKind::PowerPunchSignal).wait),
            format!("{:.2}", pick(&runs, b, SchemeKind::PowerPunchFull).wait),
        ]);
    }
    println!("{t}");
    let conv = average(&runs, SchemeKind::ConvOptPg, |r| r.wait);
    let pps = average(&runs, SchemeKind::PowerPunchSignal, |r| r.wait);
    let ppf = average(&runs, SchemeKind::PowerPunchFull, |r| r.wait);
    println!("averages: ConvOpt {conv:.2}, PP-Signal {pps:.2}, PP-PG {ppf:.2}");
    if pps > 0.0 {
        println!(
            "PP-PG improvement over PP-Signal: {:.1}%   (paper: 36.2%)",
            (1.0 - ppf / pps) * 100.0
        );
    }
}
