//! Shared infrastructure for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target in `benches/`; `cargo bench` prints each one as a text table with
//! the paper's reported numbers alongside for shape comparison (see
//! EXPERIMENTS.md). The 8-benchmark x 4-scheme full-system campaign behind
//! Figures 7-11 is expensive, so its results are cached on disk and shared
//! by those five targets.
//!
//! Set `PP_FAST=1` to run shortened simulations (smoke mode).

use std::fmt::Write as _;
use std::path::PathBuf;

use punchsim::cmp::{Benchmark, CmpConfig, CmpSim};
use punchsim::power::PowerModel;
use punchsim::types::SchemeKind;

/// `true` when `PP_FAST=1`: run shortened simulations.
pub fn fast_mode() -> bool {
    std::env::var("PP_FAST").is_ok_and(|v| v == "1")
}

/// Instructions per core for full-system runs (shortened in fast mode).
pub fn instr_per_core() -> u64 {
    if fast_mode() {
        20_000
    } else {
        80_000
    }
}

/// Measured cycles for synthetic-traffic runs.
pub fn synth_cycles() -> u64 {
    if fast_mode() {
        6_000
    } else {
        20_000
    }
}

/// One full-system run's distilled metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Workload.
    pub benchmark: Benchmark,
    /// Scheme.
    pub scheme: SchemeKind,
    /// Execution cycles (measured window).
    pub exec_cycles: u64,
    /// Mean packet latency in cycles.
    pub latency: f64,
    /// Mean powered-off routers encountered per packet (Fig 9).
    pub encounters: f64,
    /// Mean wakeup-wait cycles per packet (Fig 10).
    pub wait: f64,
    /// Dynamic router energy, pJ (Fig 11).
    pub dynamic_pj: f64,
    /// Static router energy, pJ (Fig 11).
    pub static_pj: f64,
    /// Power-gating overhead energy, pJ (Fig 11).
    pub overhead_pj: f64,
    /// No-PG static energy of the same window, pJ.
    pub baseline_static_pj: f64,
}

impl RunMetrics {
    fn to_line(self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{} {} {} {} {} {} {} {} {} {}",
            self.benchmark.name(),
            scheme_tag(self.scheme),
            self.exec_cycles,
            self.latency,
            self.encounters,
            self.wait,
            self.dynamic_pj,
            self.static_pj,
            self.overhead_pj,
            self.baseline_static_pj,
        );
        s
    }

    fn from_line(line: &str) -> Option<RunMetrics> {
        let mut it = line.split_whitespace();
        let bench = it.next()?;
        let benchmark = Benchmark::ALL.into_iter().find(|b| b.name() == bench)?;
        let scheme = scheme_from_tag(it.next()?)?;
        Some(RunMetrics {
            benchmark,
            scheme,
            exec_cycles: it.next()?.parse().ok()?,
            latency: it.next()?.parse().ok()?,
            encounters: it.next()?.parse().ok()?,
            wait: it.next()?.parse().ok()?,
            dynamic_pj: it.next()?.parse().ok()?,
            static_pj: it.next()?.parse().ok()?,
            overhead_pj: it.next()?.parse().ok()?,
            baseline_static_pj: it.next()?.parse().ok()?,
        })
    }
}

fn scheme_tag(s: SchemeKind) -> &'static str {
    match s {
        SchemeKind::NoPg => "nopg",
        SchemeKind::ConvPg => "conv",
        SchemeKind::ConvOptPg => "convopt",
        SchemeKind::PowerPunchSignal => "pps",
        SchemeKind::PowerPunchFull => "ppf",
    }
}

fn scheme_from_tag(t: &str) -> Option<SchemeKind> {
    Some(match t {
        "nopg" => SchemeKind::NoPg,
        "conv" => SchemeKind::ConvPg,
        "convopt" => SchemeKind::ConvOptPg,
        "pps" => SchemeKind::PowerPunchSignal,
        "ppf" => SchemeKind::PowerPunchFull,
        _ => return None,
    })
}

fn cache_path() -> PathBuf {
    // Benches run with the package as CWD; anchor the cache in the
    // workspace target directory (or the temp dir as a fallback) so every
    // figure target shares it.
    let dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!(
        "punchsim-parsec-campaign-v1-{}.txt",
        instr_per_core()
    ))
}

/// Runs (or loads from the on-disk cache) the full PARSEC campaign:
/// every benchmark under every evaluated scheme. This is the data behind
/// Figures 7, 8, 9, 10 and 11.
pub fn parsec_campaign() -> Vec<RunMetrics> {
    let path = cache_path();
    if let Ok(text) = std::fs::read_to_string(&path) {
        let runs: Vec<RunMetrics> = text.lines().filter_map(RunMetrics::from_line).collect();
        if runs.len() == Benchmark::ALL.len() * SchemeKind::EVALUATED.len() {
            eprintln!("(loaded cached campaign from {})", path.display());
            return runs;
        }
    }
    let pm = PowerModel::default_45nm();
    let mut runs = Vec::new();
    for bench in Benchmark::ALL {
        for scheme in SchemeKind::EVALUATED {
            eprintln!("running {bench} under {scheme}...");
            let mut cfg = CmpConfig::new(bench, scheme);
            cfg.instr_per_core = instr_per_core();
            cfg.warmup_instr = instr_per_core() / 10;
            let r = CmpSim::new(cfg).run();
            assert!(r.completed, "{bench}/{scheme} did not complete");
            let b = pm.breakdown(&r.net);
            runs.push(RunMetrics {
                benchmark: bench,
                scheme,
                exec_cycles: r.exec_cycles,
                latency: r.net.avg_packet_latency(),
                encounters: r.net.avg_pg_encounters(),
                wait: r.net.avg_wakeup_wait(),
                dynamic_pj: b.dynamic_pj,
                static_pj: b.static_pj,
                overhead_pj: b.overhead_pj,
                baseline_static_pj: pm.baseline_static_pj(&r.net),
            });
        }
    }
    let text: String = runs.iter().map(|r| r.to_line() + "\n").collect();
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not cache campaign at {}: {e}", path.display());
    }
    runs
}

/// The metrics of `bench` under `scheme` from a campaign slice.
pub fn pick(runs: &[RunMetrics], bench: Benchmark, scheme: SchemeKind) -> RunMetrics {
    *runs
        .iter()
        .find(|r| r.benchmark == bench && r.scheme == scheme)
        .expect("campaign covers all pairs")
}

/// Geometric-mean-free average of a metric across benchmarks for a scheme.
pub fn average<F: Fn(RunMetrics) -> f64>(
    runs: &[RunMetrics],
    scheme: SchemeKind,
    f: F,
) -> f64 {
    let vals: Vec<f64> = runs
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| f(*r))
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_line_roundtrip() {
        let m = RunMetrics {
            benchmark: Benchmark::Canneal,
            scheme: SchemeKind::PowerPunchFull,
            exec_cycles: 12345,
            latency: 35.25,
            encounters: 0.5,
            wait: 1.25,
            dynamic_pj: 1e9,
            static_pj: 2e9,
            overhead_pj: 3e7,
            baseline_static_pj: 4e9,
        };
        let back = RunMetrics::from_line(&m.to_line()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn scheme_tags_roundtrip() {
        for s in [
            SchemeKind::NoPg,
            SchemeKind::ConvPg,
            SchemeKind::ConvOptPg,
            SchemeKind::PowerPunchSignal,
            SchemeKind::PowerPunchFull,
        ] {
            assert_eq!(scheme_from_tag(scheme_tag(s)), Some(s));
        }
    }
}
