//! Shared infrastructure for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target in `benches/`; `cargo bench` prints each one as a text table with
//! the paper's reported numbers alongside for shape comparison (see
//! EXPERIMENTS.md). The 8-benchmark x 4-scheme full-system campaign behind
//! Figures 7-11 is expensive, so it runs through `punchsim::campaign`: one
//! worker per core and a content-hashed result store in the target
//! directory shared by all five figure targets (and by
//! `punchsim-cli campaign`).
//!
//! Set `PP_FAST=1` to run shortened simulations (smoke mode); the switch is
//! defined once, in [`punchsim::campaign::fast_mode`].

use punchsim::campaign::{self, Runner, Store, Workload};
use punchsim::cmp::Benchmark;
use punchsim::types::SchemeKind;

pub use punchsim::campaign::{fast_mode, instr_per_core, synth_cycles};

/// One full-system run's distilled metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Workload.
    pub benchmark: Benchmark,
    /// Scheme.
    pub scheme: SchemeKind,
    /// Execution cycles (measured window).
    pub exec_cycles: u64,
    /// Mean packet latency in cycles.
    pub latency: f64,
    /// Mean powered-off routers encountered per packet (Fig 9).
    pub encounters: f64,
    /// Mean wakeup-wait cycles per packet (Fig 10).
    pub wait: f64,
    /// Dynamic router energy, pJ (Fig 11).
    pub dynamic_pj: f64,
    /// Static router energy, pJ (Fig 11).
    pub static_pj: f64,
    /// Power-gating overhead energy, pJ (Fig 11).
    pub overhead_pj: f64,
    /// No-PG static energy of the same window, pJ.
    pub baseline_static_pj: f64,
}

/// Runs (or loads from the campaign result store) the full PARSEC
/// campaign: every benchmark under every evaluated scheme, in parallel.
/// This is the data behind Figures 7, 8, 9, 10 and 11.
pub fn parsec_campaign() -> Vec<RunMetrics> {
    let specs = campaign::parsec_suite(campaign::DEFAULT_SEED);
    let runner = Runner {
        threads: 0,
        store: Some(Store::in_target()),
        ..Default::default()
    };
    let outcomes = runner.run_with(&specs, &|_, outcome| {
        if let Some(rec) = outcome.record() {
            if !rec.cached {
                eprintln!("ran {}", rec.spec.id());
            }
        }
    });
    specs
        .into_iter()
        .zip(outcomes)
        .map(|(spec, outcome)| {
            let rec = outcome
                .record()
                .unwrap_or_else(|| panic!("{}", outcome.error().expect("failed run")));
            let m = &rec.metrics;
            assert!(m.completed, "{} did not complete", spec.id());
            let Workload::Parsec { benchmark, .. } = spec.workload else {
                unreachable!("parsec_suite yields only Parsec workloads")
            };
            RunMetrics {
                benchmark,
                scheme: spec.scheme,
                exec_cycles: m.exec_cycles,
                latency: m.latency,
                encounters: m.encounters,
                wait: m.wait,
                dynamic_pj: m.dynamic_pj,
                static_pj: m.static_pj,
                overhead_pj: m.overhead_pj,
                baseline_static_pj: m.baseline_static_pj,
            }
        })
        .collect()
}

/// The metrics of `bench` under `scheme` from a campaign slice.
pub fn pick(runs: &[RunMetrics], bench: Benchmark, scheme: SchemeKind) -> RunMetrics {
    *runs
        .iter()
        .find(|r| r.benchmark == bench && r.scheme == scheme)
        .expect("campaign covers all pairs")
}

/// Geometric-mean-free average of a metric across benchmarks for a scheme.
pub fn average<F: Fn(RunMetrics) -> f64>(
    runs: &[RunMetrics],
    scheme: SchemeKind,
    f: F,
) -> f64 {
    let vals: Vec<f64> = runs
        .iter()
        .filter(|r| r.scheme == scheme)
        .map(|r| f(*r))
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(benchmark: Benchmark, scheme: SchemeKind, latency: f64) -> RunMetrics {
        RunMetrics {
            benchmark,
            scheme,
            exec_cycles: 1000,
            latency,
            encounters: 0.0,
            wait: 0.0,
            dynamic_pj: 0.0,
            static_pj: 0.0,
            overhead_pj: 0.0,
            baseline_static_pj: 0.0,
        }
    }

    #[test]
    fn pick_and_average_select_by_pair_and_scheme() {
        let runs = vec![
            metrics(Benchmark::Canneal, SchemeKind::NoPg, 20.0),
            metrics(Benchmark::Canneal, SchemeKind::PowerPunchFull, 30.0),
            metrics(Benchmark::Dedup, SchemeKind::PowerPunchFull, 50.0),
        ];
        let hit = pick(&runs, Benchmark::Canneal, SchemeKind::PowerPunchFull);
        assert_eq!(hit.latency, 30.0);
        let avg = average(&runs, SchemeKind::PowerPunchFull, |r| r.latency);
        assert_eq!(avg, 40.0);
    }
}
