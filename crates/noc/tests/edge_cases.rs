//! Substrate edge cases: degenerate meshes, fairness, vnet isolation,
//! and trace recording.

use punchsim_noc::{AlwaysOn, Message, MsgClass, Network};
use punchsim_types::{Mesh, NocConfig, NodeId, VnetId};

fn msg(src: u16, dst: u16, vnet: u8, class: MsgClass) -> Message {
    Message {
        src: NodeId(src),
        dst: NodeId(dst),
        vnet: VnetId(vnet),
        class,
        payload: 0,
        gen_cycle: 0,
    }
}

fn net_with_mesh(mesh: Mesh) -> Network {
    let cfg = NocConfig {
        topology: mesh.into(),
        ..NocConfig::default()
    };
    Network::new(&cfg, Box::new(AlwaysOn::new(mesh.nodes()))).expect("valid config")
}

#[test]
fn one_dimensional_mesh_works() {
    let mut n = net_with_mesh(Mesh::new(8, 1));
    n.send(msg(0, 7, 0, MsgClass::Data)).unwrap();
    n.send(msg(7, 0, 1, MsgClass::Control)).unwrap();
    for _ in 0..200 {
        n.tick().unwrap();
    }
    assert_eq!(n.in_flight(), 0);
    assert_eq!(n.take_delivered(NodeId(7)).len(), 1);
    assert_eq!(n.take_delivered(NodeId(0)).len(), 1);
}

#[test]
fn single_column_mesh_works() {
    let mut n = net_with_mesh(Mesh::new(1, 6));
    n.send(msg(0, 5, 2, MsgClass::Data)).unwrap();
    for _ in 0..200 {
        n.tick().unwrap();
    }
    assert_eq!(n.take_delivered(NodeId(5)).len(), 1);
}

#[test]
fn rectangular_mesh_works() {
    let mut n = net_with_mesh(Mesh::new(8, 2));
    for s in 0..16u16 {
        n.send(msg(s, 15 - s, 0, MsgClass::Control)).unwrap();
    }
    for _ in 0..500 {
        n.tick().unwrap();
    }
    assert_eq!(n.in_flight(), 0);
}

#[test]
fn contending_flows_share_a_link_fairly() {
    // Nodes 0 and 8 both stream to node 2: their packets share the link
    // 1->2 (flow A) and the column into 2 (flow B). Over a long run both
    // make comparable progress (round-robin arbitration, no starvation).
    let mut n = net_with_mesh(Mesh::new(4, 4));
    let mut sent = 0;
    for round in 0..300 {
        if round % 2 == 0 && sent < 200 {
            n.send(msg(0, 2, 0, MsgClass::Data)).unwrap();
            n.send(msg(8, 2, 0, MsgClass::Data)).unwrap();
            sent += 2;
        }
        n.tick().unwrap();
    }
    for _ in 0..3000 {
        n.tick().unwrap();
        if n.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(n.in_flight(), 0, "no starvation");
    let got = n.take_delivered(NodeId(2));
    assert_eq!(got.len(), sent);
    // Both sources appear throughout the delivery order, not one after
    // the other: check the first half contains both.
    let half = &got[..got.len() / 2];
    assert!(half.iter().any(|m| m.src == NodeId(0)));
    assert!(half.iter().any(|m| m.src == NodeId(8)));
}

#[test]
fn vnets_are_isolated_under_congestion() {
    // Saturate vnet 0 with data packets into a hotspot; sparse vnet 2
    // control packets must still be delivered promptly (separate VCs keep
    // the classes from blocking each other — the basis of the MESI
    // deadlock-freedom argument).
    let mut n = net_with_mesh(Mesh::new(4, 4));
    let mut ctrl_sent = 0usize;
    let mut ctrl_got = 0usize;
    for round in 0..400u64 {
        for s in 0..16u16 {
            if s != 5 {
                n.send(msg(s, 5, 0, MsgClass::Data)).unwrap();
            }
        }
        if round % 40 == 0 {
            n.send(msg(0, 15, 2, MsgClass::Control)).unwrap();
            ctrl_sent += 1;
        }
        n.tick().unwrap();
        ctrl_got += n
            .take_delivered(NodeId(15))
            .iter()
            .filter(|m| m.vnet == VnetId(2))
            .count();
    }
    // All but possibly the last in-flight control packet arrived while the
    // hotspot was still fully congested.
    assert!(
        ctrl_got + 1 >= ctrl_sent,
        "only {ctrl_got}/{ctrl_sent} control packets got through congestion"
    );
}

#[test]
fn trace_records_every_delivery() {
    let mut n = net_with_mesh(Mesh::new(4, 4));
    n.enable_trace(100);
    for i in 0..20u16 {
        n.send(msg(i % 16, (i * 3 + 1) % 16, 0, MsgClass::Control))
            .unwrap();
    }
    for _ in 0..500 {
        n.tick().unwrap();
    }
    assert_eq!(n.in_flight(), 0);
    let trace = n.take_trace().expect("tracing enabled");
    assert_eq!(trace.records().len(), 20);
    assert_eq!(trace.dropped(), 0);
    for r in trace.records() {
        assert!(r.delivered > r.enqueued);
        assert!(r.latency() >= 8, "minimum local latency");
        assert_eq!(r.hops as u32, Mesh::new(4, 4).distance(r.src, r.dst) as u32);
    }
    let csv = trace.to_csv();
    assert_eq!(csv.lines().count(), 21);
}

#[test]
fn trace_capacity_drops_excess() {
    let mut n = net_with_mesh(Mesh::new(4, 4));
    n.enable_trace(5);
    for i in 0..12u16 {
        n.send(msg(i % 16, (i + 1) % 16, 0, MsgClass::Control))
            .unwrap();
    }
    for _ in 0..500 {
        n.tick().unwrap();
    }
    let trace = n.trace().expect("enabled");
    assert_eq!(trace.records().len(), 5);
    assert_eq!(trace.dropped(), 7);
}
