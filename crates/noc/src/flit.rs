//! Messages, packets and flits.
//!
//! Endpoints (traffic generators, cache controllers) exchange [`Message`]s;
//! the network interface segments each message into a packet of [`Flit`]s
//! and reassembles it at the destination.

use punchsim_types::{Cycle, NodeId, PacketId, Port, VnetId};

/// Message class, which selects the VC type and the packet length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Short message (requests, acks): one flit, travels in control VCs.
    Control,
    /// Long message (cache-line data): multi-flit, travels in data VCs.
    Data,
}

impl MsgClass {
    /// Stable index in `0..2`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Control => 0,
            MsgClass::Data => 1,
        }
    }
}

/// An end-to-end message handed to / delivered by a network interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network (message class for deadlock avoidance).
    pub vnet: VnetId,
    /// Control (1 flit) or data (cache line) message.
    pub class: MsgClass,
    /// Opaque payload interpreted by the endpoint (e.g. a protocol event).
    pub payload: u64,
    /// Cycle at which the producing endpoint generated the message.
    pub gen_cycle: Cycle,
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing info.
    Head,
    /// Intermediate flit.
    Body,
    /// Last flit of a multi-flit packet; releases resources.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// `true` for `Head` and `HeadTail`.
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// Stable discriminant for state snapshots.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        }
    }
}

/// A flow-control unit traversing the network.
///
/// The `route_port` field implements *look-ahead routing* (Figure 3 of the
/// paper): the output port a flit will request at router `i` is computed at
/// router `i-1` (or at the NI for the first hop), so route computation never
/// occupies a pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Virtual network of the packet.
    pub vnet: VnetId,
    /// Control or data class (selects VC type).
    pub class: MsgClass,
    /// Final destination node.
    pub dst: NodeId,
    /// Output port to request at the router currently holding the flit
    /// (pre-computed one hop ahead — look-ahead routing).
    pub route_port: Port,
    /// Input VC index at the router currently holding the flit, assigned by
    /// the upstream VC allocator (or the NI for the first hop).
    pub vc: usize,
    /// Sequence number within the packet (head = 0).
    pub seq: u16,
    /// Cycle the flit was latched into the current input buffer; it becomes
    /// eligible for allocation the following cycle (the BW stage).
    pub latched_at: Cycle,
}

impl Flit {
    /// Appends this flit's canonical snapshot encoding (see
    /// [`crate::snapshot`]): every field that affects future dynamics.
    /// `latched_at` is excluded — between ticks it is always strictly below
    /// the current cycle (a flit latched during cycle `t` becomes eligible
    /// at `t + 1`), so the rebased encoding carries no information in it.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_u16, put_u64, put_u8};
        put_u64(out, self.packet.0);
        put_u8(out, self.kind.tag());
        put_u8(out, self.vnet.0);
        put_u8(out, self.class.index() as u8);
        put_u16(out, self.dst.0);
        put_u8(out, self.route_port.index() as u8);
        put_u8(out, self.vc as u8);
        put_u16(out, self.seq);
    }
}

/// Per-packet bookkeeping kept by the network from injection to ejection.
#[derive(Debug, Clone)]
pub struct PacketMeta {
    /// The message this packet carries (returned at ejection).
    pub message: Message,
    /// Number of flits in the packet.
    pub len_flits: u16,
    /// Cycle the message entered the NI injection queue.
    pub ni_enqueue: Cycle,
    /// Cycle the head flit left the NI into the local router (0 until then).
    pub inject: Cycle,
    /// Hops traversed so far.
    pub hops: u16,
    /// Number of powered-off (or waking) routers encountered on the way
    /// (Figure 9 metric).
    pub pg_encounters: u32,
    /// Cycles spent stalled waiting for a router to finish waking up
    /// (Figure 10 metric).
    pub wakeup_wait: u64,
    /// The router this packet is currently counted as blocked on, so each
    /// powered-off router is counted once per encounter (Figure 9).
    pub blocked_on: Option<NodeId>,
    /// Whether this packet counts toward measured statistics (false for
    /// packets injected during warm-up).
    pub measured: bool,
}

impl PacketMeta {
    /// Creates bookkeeping for a message entering the NI at `ni_enqueue`.
    pub fn new(message: Message, len_flits: u16, ni_enqueue: Cycle, measured: bool) -> Self {
        PacketMeta {
            message,
            len_flits,
            ni_enqueue,
            inject: 0,
            hops: 0,
            pg_encounters: 0,
            wakeup_wait: 0,
            blocked_on: None,
            measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn class_indices_distinct() {
        assert_ne!(MsgClass::Control.index(), MsgClass::Data.index());
    }
}
