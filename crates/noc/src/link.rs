//! Fixed-latency delivery pipes modelling links and sideband wires.

use std::collections::VecDeque;

use punchsim_types::Cycle;

/// A FIFO pipe that delivers items a fixed number of cycles after they are
/// pushed — used for flit links, credit return wires and the NI-to-router
/// connection.
///
/// # Examples
///
/// ```
/// use punchsim_noc::link::Pipe;
///
/// let mut p: Pipe<&str> = Pipe::new();
/// p.push_at("hello", 5);
/// assert!(p.pop_ready(4).is_none());
/// assert_eq!(p.pop_ready(5), Some("hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    queue: VecDeque<(Cycle, T)>,
}

impl<T> Default for Pipe<T> {
    fn default() -> Self {
        Pipe {
            queue: VecDeque::new(),
        }
    }
}

impl<T> Pipe<T> {
    /// Creates an empty pipe.
    pub fn new() -> Self {
        Pipe::default()
    }

    /// Schedules `item` for delivery at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is earlier than the delivery cycle
    /// of the last queued item — deliveries must be scheduled in order.
    pub fn push_at(&mut self, item: T, at: Cycle) {
        debug_assert!(
            self.queue.back().is_none_or(|(t, _)| *t <= at),
            "out-of-order pipe scheduling"
        );
        self.queue.push_back((at, item));
    }

    /// Pops the next item whose delivery cycle is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.queue.front().is_some_and(|(t, _)| *t <= now) {
            self.queue.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// In-flight items with their delivery cycles, oldest first (read-only;
    /// used by state snapshots and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.queue.iter().map(|(at, item)| (*at, item))
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_at_time() {
        let mut p = Pipe::new();
        p.push_at(1, 10);
        p.push_at(2, 10);
        p.push_at(3, 12);
        assert_eq!(p.pop_ready(9), None);
        assert_eq!(p.pop_ready(10), Some(1));
        assert_eq!(p.pop_ready(10), Some(2));
        assert_eq!(p.pop_ready(10), None);
        assert_eq!(p.pop_ready(12), Some(3));
        assert!(p.is_empty());
    }

    #[test]
    fn late_pop_still_delivers() {
        let mut p = Pipe::new();
        p.push_at("x", 1);
        assert_eq!(p.pop_ready(100), Some("x"));
    }
}
