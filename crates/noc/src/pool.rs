//! Persistent shard worker pool for the two-phase sharded SoA tick.
//!
//! PR 7 spawned phase-A shard threads with `std::thread::scope` every
//! tick, and the timing sidecars priced that at ~6 μs/spawn — 16% of
//! 32x32 wall time at `PP_SHARDS=4`. This module replaces the per-tick
//! spawn with long-lived worker threads parked on a condvar epoch
//! barrier: the host publishes one type-erased [`Job`] per worker, bumps
//! the epoch, runs shard 0 itself, and blocks until every worker has
//! checked back in. Workers are created once (lazily, on the first
//! sharded tick), re-created only when the shard count changes, and
//! joined on drop.
//!
//! # Safety model
//!
//! A job is a raw `(fn, data)` pair whose `data` points at borrows of the
//! dispatching tick's stack (shard views into the network's per-router
//! state). That is sound because [`ShardPool::run_tick`] does not return
//! — not even by unwinding — until every worker has finished its job and
//! passed the completion barrier, so the pointed-to state strictly
//! outlives every worker access. Shard views are disjoint row bands, so
//! concurrent workers never alias.
//!
//! # Failure model
//!
//! A panicking job must never hang the simulation: workers run jobs
//! under `catch_unwind`, always reach the completion barrier, and report
//! the panic payload back to the host, which surfaces it as a typed
//! [`PoolPanic`] (mapped to `SimError::ShardPanic` by the network). The
//! pool itself stays usable after a panic — the worker parks again and
//! picks up the next epoch.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One type-erased unit of shard work: `unsafe { (run)(data) }` executes
/// a single shard's phase A.
///
/// # Safety
///
/// The constructor of a `Job` promises that `data` stays valid (and
/// unaliased by the host) until the dispatching [`ShardPool::run_tick`]
/// call's completion barrier has passed.
pub(crate) struct Job {
    pub run: unsafe fn(*mut ()),
    pub data: *mut (),
}

// SAFETY: a Job is only a (fn, pointer) pair; the pointed-to shard state
// is accessed by exactly one worker between dispatch and the completion
// barrier, while the host is excluded from it (disjoint row-band splits).
unsafe impl Send for Job {}

/// A shard worker panicked while running its job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Worker index (shard `index + 1`; shard 0 runs on the host thread).
    pub worker: usize,
    /// Stringified panic payload.
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for PoolPanic {}

struct State {
    /// Bumped once per dispatched tick; workers run when they see an
    /// epoch they have not processed yet.
    epoch: u64,
    /// One slot per worker, taken by its owner at the start of an epoch.
    jobs: Vec<Option<Job>>,
    /// Workers that have finished the current epoch's job.
    done: usize,
    /// First panic observed this epoch, if any.
    panic: Option<PoolPanic>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new epoch published, or shutdown.
    work: Condvar,
    /// Signals the host: all workers done with the current epoch.
    idle: Condvar,
}

/// Long-lived shard worker threads parked on a condvar epoch barrier.
pub(crate) struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` parked threads. Returns the pool and the wall
    /// nanoseconds spent issuing the spawns (the one-off cost the pool
    /// amortizes over every later tick), or the OS error if a thread
    /// could not be created — the caller falls back to per-tick spawns.
    pub fn new(workers: usize) -> std::io::Result<(Self, u64)> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                jobs: (0..workers).map(|_| None).collect(),
                done: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("pp-shard-{}", i + 1))
                .spawn(move || worker_loop(&sh, i));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Join what we started before reporting failure.
                    let pool = ShardPool {
                        shared,
                        workers: handles,
                    };
                    drop(pool);
                    return Err(e);
                }
            }
        }
        let spawn_nanos = t0.elapsed().as_nanos() as u64;
        let pool = ShardPool {
            shared,
            workers: handles,
        };
        Ok((pool, spawn_nanos))
    }

    /// Number of worker threads (the host thread is not counted).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Dispatches one tick: publishes `jobs` (exactly one per worker),
    /// wakes the pool, runs `host` on the calling thread (shard 0), then
    /// blocks until every worker has finished. Returns the wall
    /// nanoseconds the host spent waiting at the completion barrier
    /// after `host` returned.
    ///
    /// The completion barrier is unconditional: even if `host` unwinds,
    /// the barrier is waited out before the panic propagates, so job
    /// data can safely borrow the caller's stack.
    ///
    /// # Errors
    ///
    /// [`PoolPanic`] when any worker's job panicked this tick; the pool
    /// remains usable.
    pub fn run_tick(
        &self,
        jobs: impl IntoIterator<Item = Job>,
        host: impl FnOnce(),
    ) -> Result<u64, PoolPanic> {
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.done == 0 || st.done == self.workers.len());
            st.done = 0;
            st.panic = None;
            let mut count = 0usize;
            for (slot, job) in st.jobs.iter_mut().zip(jobs) {
                *slot = Some(job);
                count += 1;
            }
            debug_assert_eq!(count, self.workers.len(), "one job per worker");
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work.notify_all();
        }
        // The guard guarantees the barrier is waited out even if the host
        // shard panics below.
        let mut guard = BarrierGuard {
            shared: &self.shared,
            expected: self.workers.len(),
            waited: false,
        };
        host();
        let t0 = Instant::now();
        guard.wait();
        let wait_nanos = t0.elapsed().as_nanos() as u64;
        let mut st = lock(&self.shared.state);
        match st.panic.take() {
            Some(p) => Err(p),
            None => Ok(wait_nanos),
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker's loop body cannot panic (jobs run under
            // catch_unwind), so join errors are unreachable; swallow
            // rather than double-panic in drop.
            let _ = h.join();
        }
    }
}

/// Waits out the completion barrier on drop, so `run_tick`'s job borrows
/// stay valid even when the host shard unwinds.
struct BarrierGuard<'a> {
    shared: &'a Shared,
    expected: usize,
    waited: bool,
}

impl BarrierGuard<'_> {
    fn wait(&mut self) {
        if self.waited {
            return;
        }
        let mut st = lock(&self.shared.state);
        while st.done < self.expected {
            st = match self.shared.idle.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        self.waited = true;
    }
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        self.wait();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // Worker bodies never panic while holding the lock (jobs run outside
    // it, under catch_unwind), so poisoning is unreachable; recover the
    // guard rather than unwrap-panic if it ever happens.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = match shared.work.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            seen = st.epoch;
            st.jobs[index].take()
        };
        let panicked = match job {
            // SAFETY: the dispatcher's barrier (run_tick / BarrierGuard)
            // keeps `job.data` alive and unaliased until we report done.
            Some(job) => panic::catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data) }))
                .err()
                .map(payload_to_string),
            None => None,
        };
        let mut st = lock(&shared.state);
        if let Some(message) = panicked {
            st.panic.get_or_insert(PoolPanic {
                worker: index,
                message,
            });
        }
        st.done += 1;
        shared.idle.notify_all();
    }
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A job that adds `arg` into a shared counter.
    struct AddTask<'a> {
        sum: &'a AtomicU64,
        arg: u64,
    }

    unsafe fn run_add(p: *mut ()) {
        let t = unsafe { &mut *(p as *mut AddTask) };
        t.sum.fetch_add(t.arg, Ordering::SeqCst);
    }

    unsafe fn run_panic(_p: *mut ()) {
        panic!("injected worker panic");
    }

    fn add_jobs<'a>(tasks: &mut [AddTask<'a>]) -> Vec<Job> {
        tasks
            .iter_mut()
            .map(|t| Job {
                run: run_add,
                data: t as *mut AddTask as *mut (),
            })
            .collect()
    }

    #[test]
    fn runs_every_job_every_epoch() {
        let (pool, spawn_nanos) = ShardPool::new(3).expect("spawn pool");
        assert_eq!(pool.workers(), 3);
        assert!(spawn_nanos > 0);
        let sum = AtomicU64::new(0);
        for round in 0..50u64 {
            let mut tasks: Vec<AddTask> = (0..3)
                .map(|i| AddTask {
                    sum: &sum,
                    arg: i + 1,
                })
                .collect();
            let jobs = add_jobs(&mut tasks);
            let wait = pool
                .run_tick(jobs, || {
                    sum.fetch_add(100, Ordering::SeqCst);
                })
                .expect("no panic");
            let _ = wait;
            assert_eq!(sum.load(Ordering::SeqCst), (round + 1) * 106);
        }
    }

    #[test]
    fn worker_panic_is_reported_not_hung_and_pool_survives() {
        let (pool, _) = ShardPool::new(2).expect("spawn pool");
        let sum = AtomicU64::new(0);
        let mut ok = AddTask { sum: &sum, arg: 7 };
        let jobs = vec![
            Job {
                run: run_add,
                data: &mut ok as *mut AddTask as *mut (),
            },
            Job {
                run: run_panic,
                data: std::ptr::null_mut(),
            },
        ];
        let err = pool.run_tick(jobs, || {}).expect_err("panic surfaces");
        assert_eq!(err.worker, 1);
        assert!(err.message.contains("injected worker panic"), "{err}");
        // The non-panicking worker still ran.
        assert_eq!(sum.load(Ordering::SeqCst), 7);
        // The pool is reusable after the panic.
        let mut tasks: Vec<AddTask> = (0..2).map(|_| AddTask { sum: &sum, arg: 1 }).collect();
        pool.run_tick(add_jobs(&mut tasks), || {})
            .expect("clean epoch");
        assert_eq!(sum.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn host_panic_still_waits_out_the_barrier() {
        let (pool, _) = ShardPool::new(2).expect("spawn pool");
        let sum = AtomicU64::new(0);
        let mut tasks: Vec<AddTask> = (0..2).map(|_| AddTask { sum: &sum, arg: 5 }).collect();
        let jobs = add_jobs(&mut tasks);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.run_tick(jobs, || panic!("host shard panicked"));
        }));
        assert!(r.is_err());
        // Both worker jobs completed before the unwind escaped run_tick;
        // the borrowed tasks were never dangling.
        assert_eq!(sum.load(Ordering::SeqCst), 10);
        // And the pool still works.
        let mut tasks: Vec<AddTask> = (0..2).map(|_| AddTask { sum: &sum, arg: 1 }).collect();
        pool.run_tick(add_jobs(&mut tasks), || {})
            .expect("clean epoch");
        assert_eq!(sum.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn drop_joins_all_workers() {
        let (pool, _) = ShardPool::new(4).expect("spawn pool");
        let sum = AtomicU64::new(0);
        let mut tasks: Vec<AddTask> = (0..4).map(|_| AddTask { sum: &sum, arg: 1 }).collect();
        pool.run_tick(add_jobs(&mut tasks), || {})
            .expect("clean epoch");
        drop(pool); // must not hang or leak parked threads
        assert_eq!(sum.load(Ordering::SeqCst), 4);
    }
}
