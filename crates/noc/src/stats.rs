//! Network-level statistics and the end-of-run report.

use punchsim_metrics::LogHistogram;
use punchsim_stats::RunningStats;
use punchsim_types::{Cycle, SchemeKind};

use crate::power::PgCounters;
use crate::router::RouterActivity;

/// Aggregated per-run network statistics, updated as packets complete.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets injected into NI queues (measured window).
    pub packets_injected: u64,
    /// Packets fully delivered (measured window).
    pub packets_delivered: u64,
    /// Flits delivered (measured window).
    pub flits_delivered: u64,
    /// End-to-end latency: NI enqueue to tail ejection.
    pub latency: RunningStats,
    /// Log-bucketed end-to-end latency distribution, recorded alongside
    /// `latency` for every measured delivery. Always on: the record is a
    /// handful of integer ops per packet, and cycle-valued samples make
    /// the histogram — and therefore the report percentiles — fully
    /// deterministic across kernels, shard counts and thread counts.
    pub latency_hist: LogHistogram,
    /// Network latency: head injection into the router to tail ejection.
    pub net_latency: RunningStats,
    /// Hop counts of delivered packets.
    pub hops: RunningStats,
    /// Powered-off routers encountered per packet (Figure 9).
    pub pg_encounters: RunningStats,
    /// Cycles per packet spent waiting on router wakeups (Figure 10).
    pub wakeup_wait: RunningStats,
    /// Flit link traversals (inter-router links only; energy input).
    pub link_traversals: u64,
}

impl NetStats {
    /// Resets every aggregate (end of warm-up).
    pub fn reset(&mut self) {
        *self = NetStats::default();
    }
}

/// A snapshot of everything a power model or figure harness needs after
/// (or during) a run.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Scheme that produced this run.
    pub scheme: SchemeKind,
    /// Number of routers.
    pub routers: usize,
    /// Cycles in the measured window.
    pub cycles: Cycle,
    /// Delivered-traffic statistics.
    pub stats: NetStats,
    /// Summed router datapath activity (measured window).
    pub activity: RouterActivity,
    /// Power-gating counters (measured window).
    pub pg: PgCounters,
    /// Flits handled by NIs (inject + eject), for NI energy.
    pub ni_flits: u64,
    /// Average injected load over the measured window, flits/node/cycle.
    pub offered_load: f64,
}

impl NetworkReport {
    /// Mean end-to-end packet latency in cycles; 0.0 when no packet was
    /// delivered in the measured window (matching the other `avg_*` and
    /// ratio helpers, which all define "empty run" as 0.0, never NaN).
    pub fn avg_packet_latency(&self) -> f64 {
        if self.stats.latency.count() == 0 {
            return 0.0;
        }
        self.stats.latency.mean()
    }

    /// Median end-to-end packet latency in cycles (0 on an empty run;
    /// like all histogram quantiles, within one sub-bucket of the true
    /// order statistic — see [`LogHistogram::percentile`]).
    pub fn latency_p50(&self) -> u64 {
        self.stats.latency_hist.percentile(0.50)
    }

    /// 95th-percentile end-to-end packet latency in cycles.
    pub fn latency_p95(&self) -> u64 {
        self.stats.latency_hist.percentile(0.95)
    }

    /// 99th-percentile end-to-end packet latency in cycles.
    pub fn latency_p99(&self) -> u64 {
        self.stats.latency_hist.percentile(0.99)
    }

    /// Exact maximum end-to-end packet latency in cycles.
    pub fn latency_max(&self) -> u64 {
        self.stats.latency_hist.max()
    }

    /// Fraction of router-cycles spent fully off (static-energy saving
    /// potential before overheads).
    pub fn off_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.pg.total_off_cycles() as f64 / (self.cycles as f64 * self.routers as f64)
    }

    /// Mean number of powered-off routers encountered per packet (Fig. 9);
    /// 0.0 on an empty run.
    pub fn avg_pg_encounters(&self) -> f64 {
        if self.stats.pg_encounters.count() == 0 {
            return 0.0;
        }
        self.stats.pg_encounters.mean()
    }

    /// Mean cycles per packet waiting for wakeups (Fig. 10); 0.0 on an
    /// empty run.
    pub fn avg_wakeup_wait(&self) -> f64 {
        if self.stats.wakeup_wait.count() == 0 {
            return 0.0;
        }
        self.stats.wakeup_wait.mean()
    }

    /// Delivered throughput in flits/node/cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats.flits_delivered as f64 / (self.cycles as f64 * self.routers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios() {
        let mut stats = NetStats::default();
        stats.latency.extend([10.0, 20.0]);
        stats.latency_hist.record(10);
        stats.latency_hist.record(20);
        stats.flits_delivered = 640;
        let mut pg = PgCounters::new(2);
        pg.off_cycles = vec![50, 150];
        let r = NetworkReport {
            scheme: SchemeKind::NoPg,
            routers: 2,
            cycles: 100,
            stats,
            activity: RouterActivity::default(),
            pg,
            ni_flits: 0,
            offered_load: 0.0,
        };
        assert_eq!(r.avg_packet_latency(), 15.0);
        assert_eq!(r.latency_p50(), 10);
        assert_eq!(r.latency_max(), 20);
        assert_eq!(r.off_fraction(), 1.0);
        assert!((r.throughput() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn empty_run_averages_are_zero_not_nan() {
        // Regression: every avg_*/ratio helper must agree that an empty
        // measured window reads 0.0 (finite), so downstream JSON reports
        // never see NaN.
        let r = NetworkReport {
            scheme: SchemeKind::NoPg,
            routers: 0,
            cycles: 0,
            stats: NetStats::default(),
            activity: RouterActivity::default(),
            pg: PgCounters::new(0),
            ni_flits: 0,
            offered_load: 0.0,
        };
        for v in [
            r.avg_packet_latency(),
            r.off_fraction(),
            r.avg_pg_encounters(),
            r.avg_wakeup_wait(),
            r.throughput(),
        ] {
            assert_eq!(v, 0.0);
            assert!(v.is_finite());
        }
    }
}
