//! Per-packet trace recording for offline analysis.

use punchsim_types::{Cycle, NodeId, PacketId, VnetId};

use crate::flit::{MsgClass, PacketMeta};

/// One delivered packet's lifecycle record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network.
    pub vnet: VnetId,
    /// Control or data packet.
    pub class: MsgClass,
    /// Cycle the message entered the NI.
    pub enqueued: Cycle,
    /// Cycle the head flit left the NI.
    pub injected: Cycle,
    /// Cycle the tail flit ejected.
    pub delivered: Cycle,
    /// Hops traversed.
    pub hops: u16,
    /// Powered-off routers encountered.
    pub pg_encounters: u32,
    /// Cycles spent waiting on wakeups.
    pub wakeup_wait: u64,
}

impl PacketRecord {
    /// Builds a record from completed-packet bookkeeping.
    pub fn from_meta(id: PacketId, meta: &PacketMeta, delivered: Cycle) -> Self {
        PacketRecord {
            id,
            src: meta.message.src,
            dst: meta.message.dst,
            vnet: meta.message.vnet,
            class: meta.message.class,
            enqueued: meta.ni_enqueue,
            injected: meta.inject,
            delivered,
            hops: meta.hops,
            pg_encounters: meta.pg_encounters,
            wakeup_wait: meta.wakeup_wait,
        }
    }

    /// End-to-end latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.delivered - self.enqueued
    }

    /// CSV header matching [`PacketRecord::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "id,src,dst,vnet,class,enqueued,injected,delivered,latency,hops,pg_encounters,wakeup_wait"
    }

    /// One CSV row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.id.0,
            self.src.0,
            self.dst.0,
            self.vnet.0,
            match self.class {
                MsgClass::Control => "ctrl",
                MsgClass::Data => "data",
            },
            self.enqueued,
            self.injected,
            self.delivered,
            self.latency(),
            self.hops,
            self.pg_encounters,
            self.wakeup_wait
        )
    }
}

/// A bounded in-memory trace of delivered packets.
#[derive(Debug, Clone)]
pub struct TraceLog {
    records: Vec<PacketRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    /// A trace with the default capacity of [`TraceLog::DEFAULT_CAPACITY`]
    /// records. (A derived `Default` would have capacity 0 and silently
    /// drop every record.)
    fn default() -> Self {
        TraceLog::new(TraceLog::DEFAULT_CAPACITY)
    }
}

impl TraceLog {
    /// Capacity used by [`TraceLog::default`]: enough for any single-run
    /// analysis while bounding memory to a few MiB.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a trace holding at most `capacity` records (older packets
    /// beyond the cap are counted in [`TraceLog::dropped`], not stored).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, respecting the capacity.
    pub fn push(&mut self, rec: PacketRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded packets, in completion order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Records that did not fit in the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole trace as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(PacketRecord::csv_header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Message;

    fn rec(id: u64) -> PacketRecord {
        let meta = PacketMeta::new(
            Message {
                src: NodeId(1),
                dst: NodeId(2),
                vnet: VnetId(0),
                class: MsgClass::Control,
                payload: 0,
                gen_cycle: 5,
            },
            1,
            5,
            true,
        );
        PacketRecord::from_meta(PacketId(id), &meta, 25)
    }

    #[test]
    fn latency_and_csv() {
        let r = rec(7);
        assert_eq!(r.latency(), 20);
        let row = r.to_csv_row();
        assert!(row.starts_with("7,1,2,0,ctrl,5,"));
        assert_eq!(
            row.split(',').count(),
            PacketRecord::csv_header().split(',').count()
        );
    }

    #[test]
    fn default_actually_records() {
        // Regression: the derived Default had capacity 0, so every record
        // was silently dropped.
        let mut log = TraceLog::default();
        log.push(rec(0));
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut log = TraceLog::new(2);
        for i in 0..5 {
            log.push(rec(i));
        }
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.to_csv().lines().count(), 3);
    }
}
