//! The wormhole virtual-channel router.
//!
//! Pipeline model (Figure 3 of the paper):
//!
//! * **3-stage** (look-ahead routing + speculative switch allocation):
//!   `BW | VA+SA | ST`, plus one link cycle — 4 cycles per hop at zero load.
//! * **4-stage** (look-ahead routing): `BW | VA | SA | ST`, plus one link
//!   cycle — 5 cycles per hop at zero load.
//!
//! A flit latched during cycle `t` (BW) becomes allocation-eligible at
//! `t + 1`. A head flit that wins VA at cycle `v` may compete in SA the same
//! cycle in 3-stage mode (speculation, at lower priority than committed
//! flits) or from `v + 1` in 4-stage mode. An SA winner traverses the
//! crossbar (ST) at `s + 1` and is latched downstream at
//! `s + 1 + link_latency + 1`.

use punchsim_types::{Cycle, NodeId, PacketId, Port, PortMap};

use crate::flit::Flit;
use crate::vc::{Vc, VcLayout, VcRoute};

/// Per-router dynamic-activity counters consumed by the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterActivity {
    /// Flits latched into input buffers (BW operations).
    pub buffer_writes: u64,
    /// Flits read out of input buffers (on SA grants).
    pub buffer_reads: u64,
    /// Crossbar traversals (equals `buffer_reads`).
    pub crossbar_traversals: u64,
    /// Successful VC allocations.
    pub va_grants: u64,
    /// Switch-allocation grants.
    pub sa_grants: u64,
}

impl RouterActivity {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, o: &RouterActivity) {
        self.buffer_writes += o.buffer_writes;
        self.buffer_reads += o.buffer_reads;
        self.crossbar_traversals += o.crossbar_traversals;
        self.va_grants += o.va_grants;
        self.sa_grants += o.sa_grants;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = RouterActivity::default();
    }
}

/// A flit leaving the router this cycle, as reported by [`Router::allocate`].
#[derive(Debug, Clone)]
pub struct Departure {
    /// Output port the flit leaves through.
    pub out_port: Port,
    /// Input port it came from (for credit return).
    pub in_port: Port,
    /// Input VC it came from (for credit return).
    pub in_vc: usize,
    /// The flit itself, with `vc` already set to the downstream VC.
    pub flit: Flit,
}

/// A head-of-line flit stalled only because the downstream router is not on.
#[derive(Debug, Clone, Copy)]
pub struct PgBlocked {
    /// The sleeping/waking router that must power on.
    pub next_router_port: Port,
    /// The stalled packet (for the Figure 10 waiting-cycles metric).
    pub packet: PacketId,
}

/// Result of one allocation cycle.
#[derive(Debug, Default)]
pub struct AllocOutcome {
    /// Flits granted ST this cycle.
    pub departures: Vec<Departure>,
    /// Packets stalled by power-gating this cycle (one entry per stalled
    /// packet whose *only* missing resource is the downstream router).
    pub pg_blocked: Vec<PgBlocked>,
}

/// One mesh router: five ports of VC buffers plus separable VA/SA allocators.
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    layout: VcLayout,
    stages: u8,
    inputs: PortMap<Vec<Vc>>,
    /// Credits toward each downstream VC, per output port. `Local` is the
    /// ejection port and is initialized effectively infinite (the NI is a
    /// guaranteed sink, required for protocol-level deadlock freedom).
    out_credits: PortMap<Vec<u32>>,
    /// Output VCs currently owned by an in-flight packet.
    out_vc_busy: PortMap<Vec<bool>>,
    va_rr: PortMap<usize>,
    sa_in_rr: PortMap<usize>,
    sa_out_rr: PortMap<usize>,
    /// Total flits across all input VCs, kept in sync by `latch` and the
    /// SA-grant pop so `datapath_empty` is O(1). The per-tick allocation
    /// early-out and the power manager's idle scan both sit on it.
    buffered: u32,
    /// Activity counters for the power model.
    pub activity: RouterActivity,
}

/// Effectively-infinite ejection credit for the `Local` output port.
const EJECT_CREDITS: u32 = 1 << 30;

impl Router {
    /// Creates a router with empty buffers and full credits.
    ///
    /// `has_neighbor` marks which link directions exist (mesh edges have
    /// fewer); absent neighbours get zero credits so allocation never
    /// selects them (XY routing never requests them anyway).
    pub fn new(id: NodeId, layout: VcLayout, stages: u8, has_neighbor: PortMap<bool>) -> Self {
        let total = layout.total();
        let inputs = PortMap::from_fn(|_| (0..total).map(|i| Vc::new(layout.depth(i))).collect());
        let out_credits = PortMap::from_fn(|p| match p {
            Port::Local => vec![EJECT_CREDITS; total],
            Port::Link(_) if has_neighbor[p] => {
                (0..total).map(|i| layout.depth(i) as u32).collect()
            }
            Port::Link(_) => vec![0; total],
        });
        Router {
            id,
            layout,
            stages,
            inputs,
            out_credits,
            out_vc_busy: PortMap::from_fn(|_| vec![false; total]),
            va_rr: PortMap::default(),
            sa_in_rr: PortMap::default(),
            sa_out_rr: PortMap::default(),
            buffered: 0,
            activity: RouterActivity::default(),
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Latches `flit` into input `port` (the BW stage) during `cycle`.
    pub fn latch(&mut self, port: Port, mut flit: Flit, cycle: Cycle) {
        flit.latched_at = cycle;
        self.activity.buffer_writes += 1;
        self.buffered += 1;
        let vc = flit.vc;
        self.inputs[port][vc].push(flit);
    }

    /// Returns a credit for downstream VC `vc` of output `port`.
    pub fn credit(&mut self, port: Port, vc: usize) {
        self.out_credits[port][vc] += 1;
        debug_assert!(
            port == Port::Local || self.out_credits[port][vc] <= self.layout.depth(vc) as u32,
            "credit overflow on {port} vc{vc}"
        );
    }

    /// `true` when every input VC is empty (no flit anywhere in the
    /// datapath) — one of the conditions for power-gating the router.
    /// O(1): the network checks it for every router every busy cycle.
    pub fn datapath_empty(&self) -> bool {
        debug_assert_eq!(
            self.buffered == 0,
            self.inputs
                .iter()
                .all(|(_, vcs)| vcs.iter().all(Vc::is_empty)),
            "buffered-flit counter out of sync with the input VCs"
        );
        self.buffered == 0
    }

    /// Total buffered flits (debug/occupancy metric).
    pub fn occupancy(&self) -> usize {
        self.inputs
            .iter()
            .map(|(_, vcs)| vcs.iter().map(Vc::len).sum::<usize>())
            .sum()
    }

    /// Appends this router's canonical snapshot encoding (see
    /// [`crate::snapshot`]): input VCs (sparse — an empty, unrouted VC is a
    /// single zero byte), link-port credit *deficits* (depth minus current
    /// credits, so a fully-credited idle router encodes as zeros), output-VC
    /// ownership and the three round-robin pointers. `Local` ejection
    /// credits are excluded: they start effectively infinite and only ever
    /// decrease, which makes them a monotone counter in disguise. Activity
    /// counters are statistics and excluded per the snapshot rules.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_bool, put_u8};
        for (_, vcs) in self.inputs.iter() {
            for vc in vcs {
                if vc.is_empty() && vc.route == VcRoute::Unrouted {
                    put_u8(out, 0);
                } else {
                    put_u8(out, 1);
                    vc.encode_state(out);
                }
            }
        }
        for (port, credits) in self.out_credits.iter() {
            if port == Port::Local {
                continue;
            }
            for (idx, &c) in credits.iter().enumerate() {
                let depth = self.layout.depth(idx) as u32;
                put_u8(out, depth.saturating_sub(c) as u8);
            }
        }
        for (_, busy) in self.out_vc_busy.iter() {
            for &b in busy {
                put_bool(out, b);
            }
        }
        for (_, &rr) in self.va_rr.iter() {
            put_u8(out, rr as u8);
        }
        for (_, &rr) in self.sa_in_rr.iter() {
            put_u8(out, rr as u8);
        }
        for (_, &rr) in self.sa_out_rr.iter() {
            put_u8(out, rr as u8);
        }
    }

    /// Runs VC allocation then switch allocation for `cycle`.
    ///
    /// `down_on[p]` tells whether the router downstream of output `p` is
    /// fully powered on (`Local` must be `true`). Departing flits carry a
    /// recomputed look-ahead route for the next router; the network layer
    /// does that, so `route_port` on departures still refers to *this*
    /// router's output.
    pub fn allocate(&mut self, cycle: Cycle, down_on: &PortMap<bool>) -> AllocOutcome {
        self.vc_allocate(cycle);
        self.switch_allocate(cycle, down_on)
    }

    /// VC allocation: head flits at the front of their VC request an output
    /// VC of their (vnet, class) at their look-ahead output port.
    fn vc_allocate(&mut self, cycle: Cycle) {
        // Gather requests: (in_port, in_vc, out_port) for eligible unrouted heads.
        let mut requests: Vec<(Port, usize, Port)> = Vec::new();
        for (in_port, vcs) in self.inputs.iter() {
            for (in_vc, vc) in vcs.iter().enumerate() {
                if !matches!(vc.route, VcRoute::Unrouted) {
                    continue;
                }
                let Some(front) = vc.front() else { continue };
                if !front.kind.is_head() || front.latched_at >= cycle {
                    continue;
                }
                requests.push((in_port, in_vc, front.route_port));
            }
        }
        // Grant per output port, rotating priority across the global input
        // VC index so no input starves.
        for out_port in Port::ALL {
            let total = self.layout.total();
            let space = 5 * total;
            let start = self.va_rr[out_port] % space;
            let mut granted_any = false;
            for off in 0..space {
                let g = (start + off) % space;
                let (ip_idx, iv) = (g / total, g % total);
                let in_port = Port::ALL[ip_idx];
                let Some(&(rp, rv, _)) = requests
                    .iter()
                    .find(|&&(p, v, o)| p == in_port && v == iv && o == out_port)
                else {
                    continue;
                };
                let _ = (rp, rv);
                // Find a free output VC of the right vnet/class.
                let front = self.inputs[in_port][iv]
                    .front()
                    .expect("request implies a front flit");
                let cand = self.layout.candidates(front.vnet, front.class);
                let free = cand.clone().find(|&ov| !self.out_vc_busy[out_port][ov]);
                let Some(out_vc) = free else { continue };
                self.out_vc_busy[out_port][out_vc] = true;
                self.inputs[in_port][iv].route = VcRoute::Routed {
                    out_port,
                    out_vc,
                    va_cycle: cycle,
                };
                self.activity.va_grants += 1;
                if !granted_any {
                    // Rotate past the first winner.
                    self.va_rr[out_port] = (g + 1) % space;
                    granted_any = true;
                }
            }
        }
    }

    /// Separable input-first switch allocation with speculation support.
    fn switch_allocate(&mut self, cycle: Cycle, down_on: &PortMap<bool>) -> AllocOutcome {
        let mut outcome = AllocOutcome::default();
        // Phase 0: classify each VC's front flit.
        // candidate = eligible + routed + credit + downstream on.
        // pg_blocked = eligible + routed + credit, downstream off.
        #[derive(Clone, Copy)]
        struct Cand {
            in_port: Port,
            in_vc: usize,
            out_port: Port,
            speculative: bool,
        }
        let mut per_input: PortMap<Option<Cand>> = PortMap::default();
        let mut seen_blocked: Vec<PacketId> = Vec::new();
        for in_port in Port::ALL {
            let total = self.layout.total();
            let start = self.sa_in_rr[in_port] % total;
            let mut best: Option<Cand> = None;
            for off in 0..total {
                let iv = (start + off) % total;
                let vc = &self.inputs[in_port][iv];
                let Some(front) = vc.front() else { continue };
                if front.latched_at >= cycle {
                    continue;
                }
                let VcRoute::Routed {
                    out_port,
                    out_vc,
                    va_cycle,
                } = vc.route
                else {
                    continue;
                };
                let speculative = va_cycle == cycle;
                if speculative && self.stages != 3 {
                    continue; // 4-stage: SA starts the cycle after VA.
                }
                if self.out_credits[out_port][out_vc] == 0 {
                    continue; // no downstream buffer space
                }
                if !down_on[out_port] {
                    // Stalled purely by power-gating: report for the WU
                    // handshake and the Fig. 9/10 metrics (once per packet).
                    if !seen_blocked.contains(&front.packet) {
                        seen_blocked.push(front.packet);
                        outcome.pg_blocked.push(PgBlocked {
                            next_router_port: out_port,
                            packet: front.packet,
                        });
                    }
                    continue;
                }
                let cand = Cand {
                    in_port,
                    in_vc: iv,
                    out_port,
                    speculative,
                };
                match &best {
                    None => best = Some(cand),
                    // Committed flits beat speculative ones.
                    Some(b) if b.speculative && !speculative => best = Some(cand),
                    _ => {}
                }
            }
            per_input[in_port] = best;
        }
        // Phase 2: output arbitration, committed-over-speculative, then
        // round-robin over input ports.
        for out_port in Port::ALL {
            let start = self.sa_out_rr[out_port] % 5;
            let mut winner: Option<(usize, Cand)> = None;
            for off in 0..5 {
                let ip_idx = (start + off) % 5;
                let in_port = Port::ALL[ip_idx];
                let Some(c) = per_input[in_port] else {
                    continue;
                };
                if c.out_port != out_port {
                    continue;
                }
                match &winner {
                    None => winner = Some((ip_idx, c)),
                    Some((_, w)) if w.speculative && !c.speculative => {
                        winner = Some((ip_idx, c));
                    }
                    _ => {}
                }
            }
            let Some((ip_idx, c)) = winner else { continue };
            self.sa_out_rr[out_port] = (ip_idx + 1) % 5;
            // Grant: pop the flit, consume a credit, update VC state.
            let VcRoute::Routed { out_vc, .. } = self.inputs[c.in_port][c.in_vc].route else {
                unreachable!("winner must be routed")
            };
            let vc = &mut self.inputs[c.in_port][c.in_vc];
            let mut flit = vc.pop().expect("winner has a front flit");
            self.buffered -= 1;
            if flit.kind.is_tail() {
                vc.route = VcRoute::Unrouted;
                self.out_vc_busy[c.out_port][out_vc] = false;
            }
            self.out_credits[c.out_port][out_vc] -= 1;
            self.sa_in_rr[c.in_port] = (c.in_vc + 1) % self.layout.total();
            self.activity.buffer_reads += 1;
            self.activity.crossbar_traversals += 1;
            self.activity.sa_grants += 1;
            flit.vc = out_vc;
            outcome.departures.push(Departure {
                out_port: c.out_port,
                in_port: c.in_port,
                in_vc: c.in_vc,
                flit,
            });
            // The input port is consumed for this cycle; make sure no other
            // output picks the same input (each input feeds one crossbar
            // line). `per_input` already guarantees this: one candidate per
            // input port.
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, MsgClass};
    use punchsim_types::{Direction, NocConfig, VnetId};

    fn mk_router() -> Router {
        let cfg = NocConfig::default();
        Router::new(
            NodeId(0),
            VcLayout::new(&cfg),
            3,
            PortMap::from_fn(|_| true),
        )
    }

    fn flit(kind: FlitKind, seq: u16, out: Port) -> Flit {
        Flit {
            packet: PacketId(7),
            kind,
            vnet: VnetId(0),
            class: MsgClass::Data,
            dst: NodeId(9),
            route_port: out,
            vc: 0,
            seq,
            latched_at: 0,
        }
    }

    fn all_on() -> PortMap<bool> {
        PortMap::from_fn(|_| true)
    }

    #[test]
    fn three_stage_head_departs_after_one_alloc_cycle() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        r.latch(Port::Local, flit(FlitKind::HeadTail, 0, out), 10);
        // Not eligible in the latch cycle.
        assert!(r.allocate(10, &all_on()).departures.is_empty());
        // Cycle 11: VA + speculative SA both succeed.
        let o = r.allocate(11, &all_on());
        assert_eq!(o.departures.len(), 1);
        assert_eq!(o.departures[0].out_port, out);
        assert!(r.datapath_empty());
    }

    #[test]
    fn four_stage_needs_two_alloc_cycles() {
        let cfg = NocConfig::default();
        let mut r = Router::new(
            NodeId(0),
            VcLayout::new(&cfg),
            4,
            PortMap::from_fn(|_| true),
        );
        let out = Port::Link(Direction::East);
        r.latch(Port::Local, flit(FlitKind::HeadTail, 0, out), 10);
        assert!(r.allocate(11, &all_on()).departures.is_empty()); // VA only
        let o = r.allocate(12, &all_on());
        assert_eq!(o.departures.len(), 1);
    }

    #[test]
    fn wormhole_streams_one_flit_per_cycle() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        r.latch(Port::Local, flit(FlitKind::Head, 0, out), 10);
        r.latch(Port::Local, flit(FlitKind::Body, 1, out), 11);
        r.latch(Port::Local, flit(FlitKind::Tail, 2, out), 12);
        let mut got = Vec::new();
        for c in 11..=14 {
            for d in r.allocate(c, &all_on()).departures {
                got.push((c, d.flit.seq));
            }
        }
        assert_eq!(got, vec![(11, 0), (12, 1), (13, 2)]);
        assert!(r.datapath_empty());
    }

    #[test]
    fn blocked_when_downstream_off() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        r.latch(Port::Local, flit(FlitKind::HeadTail, 0, out), 10);
        let mut down = all_on();
        down[out] = false;
        let o = r.allocate(11, &down);
        assert!(o.departures.is_empty());
        assert_eq!(o.pg_blocked.len(), 1);
        assert_eq!(o.pg_blocked[0].next_router_port, out);
        // Downstream wakes: flit proceeds.
        let o = r.allocate(12, &all_on());
        assert_eq!(o.departures.len(), 1);
    }

    #[test]
    fn credits_bound_departures() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        // Data VC 0 downstream has depth 3; stream a 5-flit packet without
        // returning credits: only 3 flits may leave. Latch one flit per
        // cycle (as a link would deliver them), interleaved with allocation
        // so the local 3-deep buffer never overflows.
        let kinds = [
            FlitKind::Head,
            FlitKind::Body,
            FlitKind::Body,
            FlitKind::Body,
            FlitKind::Tail,
        ];
        let mut next = 0usize;
        let mut sent = 0;
        for c in 10..30 {
            if next < kinds.len() && r.occupancy() < 3 {
                r.latch(Port::Local, flit(kinds[next], next as u16, out), c);
                next += 1;
            }
            sent += r.allocate(c, &all_on()).departures.len();
        }
        assert_eq!(sent, 3);
        // Return one credit; one more flit flows.
        r.credit(out, 0);
        for c in 30..33 {
            sent += r.allocate(c, &all_on()).departures.len();
        }
        assert_eq!(sent, 4);
    }

    #[test]
    fn two_inputs_share_one_output_fairly() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        // Two single-flit packets from different inputs, same output.
        let mut f1 = flit(FlitKind::HeadTail, 0, out);
        f1.packet = PacketId(1);
        let mut f2 = flit(FlitKind::HeadTail, 0, out);
        f2.packet = PacketId(2);
        f2.vc = 1;
        r.latch(Port::Local, f1, 10);
        r.latch(Port::Link(Direction::West), f2, 10);
        let o1 = r.allocate(11, &all_on());
        assert_eq!(o1.departures.len(), 1);
        let o2 = r.allocate(12, &all_on());
        assert_eq!(o2.departures.len(), 1);
        let a = o1.departures[0].flit.packet;
        let b = o2.departures[0].flit.packet;
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_outputs_depart_same_cycle() {
        let mut r = mk_router();
        let mut f1 = flit(FlitKind::HeadTail, 0, Port::Link(Direction::East));
        f1.packet = PacketId(1);
        let mut f2 = flit(FlitKind::HeadTail, 0, Port::Link(Direction::South));
        f2.packet = PacketId(2);
        r.latch(Port::Link(Direction::West), f1, 10);
        r.latch(Port::Link(Direction::North), f2, 10);
        let o = r.allocate(11, &all_on());
        assert_eq!(o.departures.len(), 2);
    }

    #[test]
    fn control_flits_use_control_vc() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        let mut f = flit(FlitKind::HeadTail, 0, out);
        f.class = MsgClass::Control;
        f.vc = 2; // control VC of vnet 0
        r.latch(Port::Local, f, 10);
        let o = r.allocate(11, &all_on());
        assert_eq!(o.departures.len(), 1);
        // Granted downstream VC must be the control VC (index 2).
        assert_eq!(o.departures[0].flit.vc, 2);
    }

    #[test]
    fn vc_allocation_exclusive_until_tail() {
        let mut r = mk_router();
        let out = Port::Link(Direction::East);
        // Packet A (multi-flit, in VC0) claims downstream VC 0 and stalls
        // after head (no more flits yet). Packet B in VC1 must get VC 1.
        let mut head_a = flit(FlitKind::Head, 0, out);
        head_a.packet = PacketId(1);
        head_a.vc = 0;
        let mut head_b = flit(FlitKind::Head, 0, out);
        head_b.packet = PacketId(2);
        head_b.vc = 1;
        r.latch(Port::Local, head_a, 10);
        r.latch(Port::Local, head_b, 10);
        let mut out_vcs = Vec::new();
        for c in 11..14 {
            for d in r.allocate(c, &all_on()).departures {
                out_vcs.push(d.flit.vc);
            }
        }
        out_vcs.sort_unstable();
        assert_eq!(out_vcs, vec![0, 1]);
    }
}
