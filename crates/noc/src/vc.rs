//! Virtual channels and input-port buffering.

use std::collections::VecDeque;

use punchsim_types::{NocConfig, Port, VnetId};

use crate::flit::{Flit, MsgClass};

/// Layout of the VCs of one input port: for each virtual network, first the
/// data VCs, then the control VCs (§2.1: two 3-flit data VCs and one 1-flit
/// control VC per vnet by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcLayout {
    vnets: u8,
    data_per_vnet: u8,
    data_depth: u8,
    ctrl_per_vnet: u8,
    ctrl_depth: u8,
}

impl VcLayout {
    /// Derives the layout from a network configuration.
    pub fn new(cfg: &NocConfig) -> Self {
        VcLayout {
            vnets: cfg.vnets,
            data_per_vnet: cfg.data_vcs_per_vnet,
            data_depth: cfg.data_vc_depth,
            ctrl_per_vnet: cfg.ctrl_vcs_per_vnet,
            ctrl_depth: cfg.ctrl_vc_depth,
        }
    }

    /// VCs per vnet (data + control).
    #[inline]
    pub fn per_vnet(self) -> usize {
        (self.data_per_vnet + self.ctrl_per_vnet) as usize
    }

    /// Total VCs in the port.
    #[inline]
    pub fn total(self) -> usize {
        self.vnets as usize * self.per_vnet()
    }

    /// Buffer depth (flits) of VC `idx`.
    pub fn depth(self, idx: usize) -> usize {
        let within = idx % self.per_vnet();
        if within < self.data_per_vnet as usize {
            self.data_depth as usize
        } else {
            self.ctrl_depth as usize
        }
    }

    /// The vnet VC `idx` belongs to.
    pub fn vnet(self, idx: usize) -> VnetId {
        VnetId((idx / self.per_vnet()) as u8)
    }

    /// The message class VC `idx` serves.
    pub fn class(self, idx: usize) -> MsgClass {
        let within = idx % self.per_vnet();
        if within < self.data_per_vnet as usize {
            MsgClass::Data
        } else {
            MsgClass::Control
        }
    }

    /// Indices of the VCs serving `(vnet, class)`, in ascending order.
    pub fn candidates(self, vnet: VnetId, class: MsgClass) -> std::ops::Range<usize> {
        let base = vnet.index() * self.per_vnet();
        match class {
            MsgClass::Data => base..base + self.data_per_vnet as usize,
            MsgClass::Control => base + self.data_per_vnet as usize..base + self.per_vnet(),
        }
    }
}

/// State of the packet currently at the front of a VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcRoute {
    /// No packet, or the head flit has not been granted an output VC yet.
    Unrouted,
    /// The head won VC allocation in the given cycle for `(out_port, out_vc)`;
    /// in 4-stage mode switch allocation may only start the following cycle.
    Routed {
        /// Output port the packet is traversing toward.
        out_port: Port,
        /// Downstream VC index granted by VA.
        out_vc: usize,
        /// Cycle VA was won (for the VA->SA pipeline bubble in 4-stage mode).
        va_cycle: u64,
    },
}

/// One virtual-channel FIFO of an input port.
#[derive(Debug, Clone)]
pub struct Vc {
    flits: VecDeque<Flit>,
    depth: usize,
    /// Allocation state of the packet at the front of the queue.
    pub route: VcRoute,
}

impl Vc {
    /// Creates an empty VC with the given buffer depth.
    pub fn new(depth: usize) -> Self {
        Vc {
            flits: VecDeque::with_capacity(depth),
            depth,
            route: VcRoute::Unrouted,
        }
    }

    /// Buffer depth in flits.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.flits.len()
    }

    /// `true` when no flits are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
    }

    /// Latches a flit into the buffer (the BW stage).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — upstream credit accounting must make
    /// this impossible.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            self.flits.len() < self.depth,
            "VC overflow: credit accounting violated"
        );
        self.flits.push_back(flit);
    }

    /// The flit at the front of the queue, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.flits.front()
    }

    /// Removes and returns the front flit (on a switch-allocation grant).
    pub fn pop(&mut self) -> Option<Flit> {
        self.flits.pop_front()
    }

    /// Appends this VC's canonical snapshot encoding (see
    /// [`crate::snapshot`]): the buffered flits and the allocation state of
    /// the front packet. `va_cycle` is excluded — it only distinguishes
    /// same-cycle speculative grants, and between ticks it is always
    /// strictly below the current cycle, so it carries no information in
    /// the rebased encoding.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::put_u8;
        put_u8(out, self.flits.len() as u8);
        for flit in &self.flits {
            flit.encode_state(out);
        }
        match self.route {
            VcRoute::Unrouted => put_u8(out, 0),
            VcRoute::Routed {
                out_port, out_vc, ..
            } => {
                put_u8(out, 1);
                put_u8(out, out_port.index() as u8);
                put_u8(out, out_vc as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::NocConfig;

    fn layout() -> VcLayout {
        VcLayout::new(&NocConfig::default())
    }

    #[test]
    fn default_layout_matches_table2() {
        let l = layout();
        assert_eq!(l.total(), 9); // 3 vnets x (2 data + 1 ctrl)
        assert_eq!(l.per_vnet(), 3);
        // VC 0,1 are vnet0 data; VC 2 is vnet0 control.
        assert_eq!(l.class(0), MsgClass::Data);
        assert_eq!(l.class(1), MsgClass::Data);
        assert_eq!(l.class(2), MsgClass::Control);
        assert_eq!(l.depth(0), 3);
        assert_eq!(l.depth(2), 1);
        assert_eq!(l.vnet(5), VnetId(1));
        assert_eq!(l.vnet(8), VnetId(2));
    }

    #[test]
    fn candidate_ranges() {
        let l = layout();
        assert_eq!(l.candidates(VnetId(0), MsgClass::Data), 0..2);
        assert_eq!(l.candidates(VnetId(0), MsgClass::Control), 2..3);
        assert_eq!(l.candidates(VnetId(2), MsgClass::Data), 6..8);
        assert_eq!(l.candidates(VnetId(2), MsgClass::Control), 8..9);
    }

    #[test]
    fn vc_fifo_order() {
        use crate::flit::{FlitKind, MsgClass};
        use punchsim_types::{NodeId, PacketId, Port};
        let mut vc = Vc::new(3);
        for seq in 0..3 {
            vc.push(Flit {
                packet: PacketId(1),
                kind: if seq == 0 {
                    FlitKind::Head
                } else {
                    FlitKind::Body
                },
                vnet: VnetId(0),
                class: MsgClass::Data,
                dst: NodeId(5),
                route_port: Port::Local,
                vc: 0,
                seq,
                latched_at: 0,
            });
        }
        assert_eq!(vc.len(), 3);
        assert_eq!(vc.pop().unwrap().seq, 0);
        assert_eq!(vc.pop().unwrap().seq, 1);
        assert_eq!(vc.front().unwrap().seq, 2);
    }

    #[test]
    #[should_panic]
    fn vc_overflow_panics() {
        use crate::flit::{FlitKind, MsgClass};
        use punchsim_types::{NodeId, PacketId, Port};
        let mut vc = Vc::new(1);
        let f = Flit {
            packet: PacketId(1),
            kind: FlitKind::HeadTail,
            vnet: VnetId(0),
            class: MsgClass::Control,
            dst: NodeId(0),
            route_port: Port::Local,
            vc: 0,
            seq: 0,
            latched_at: 0,
        };
        vc.push(f.clone());
        vc.push(f);
    }
}
