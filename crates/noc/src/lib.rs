//! Cycle-accurate 2D-mesh network-on-chip substrate for `punchsim`.
//!
//! This crate implements the network the Power Punch paper (HPCA 2015)
//! evaluates on: a mesh of wormhole virtual-channel routers with credit-based
//! flow control, look-ahead XY routing, speculative switch allocation
//! (3-stage) or plain allocation (4-stage), and per-node network interfaces —
//! the same microarchitecture GARNET models inside gem5.
//!
//! Power-gating schemes plug in through the [`PowerManager`] trait; the
//! schemes themselves (conventional, ConvOpt, Power Punch) live in
//! `punchsim-core`. The [`AlwaysOn`] baseline here is the paper's `No-PG`.
//!
//! # Examples
//!
//! ```
//! use punchsim_noc::{Network, Message, MsgClass, AlwaysOn};
//! use punchsim_types::{NocConfig, NodeId, VnetId};
//!
//! let cfg = NocConfig::default();
//! let mut net = Network::new(&cfg, Box::new(AlwaysOn::new(cfg.topology.nodes()))).unwrap();
//! net.send(Message {
//!     src: NodeId(0),
//!     dst: NodeId(63),
//!     vnet: VnetId(0),
//!     class: MsgClass::Data,
//!     payload: 7,
//!     gen_cycle: 0,
//! })
//! .unwrap();
//! while net.in_flight() > 0 {
//!     net.tick().unwrap();
//! }
//! assert_eq!(net.take_delivered(NodeId(63)).len(), 1);
//! ```

pub use punchsim_obs as obs;

pub mod flit;
pub mod link;
pub mod network;
pub mod ni;
mod pool;
pub mod power;
pub mod router;
pub mod snapshot;
pub mod soa;
pub mod stats;
pub mod trace;
pub mod vc;

pub use flit::{Flit, FlitKind, Message, MsgClass, PacketMeta};
pub use network::{Network, ShardExec, TickMode};
pub use power::{AlwaysOn, IdleInfo, PgCounters, PmEvent, PowerManager, PowerState};
pub use router::{Router, RouterActivity};
pub use soa::{BitWords, BusyKernel};
pub use stats::{NetStats, NetworkReport};
pub use trace::{PacketRecord, TraceLog};
pub use vc::VcLayout;
