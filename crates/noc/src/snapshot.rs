//! Little-endian byte-encoding helpers for canonical state snapshots.
//!
//! The exhaustive wakeup-protocol checker (`punchsim-verify`) deduplicates
//! reachable states by a canonical byte encoding of all dynamic simulator
//! state. Every component (VCs, routers, NIs, pipes, power managers)
//! appends its state through these helpers so the encoding is identical
//! across crates and platforms. Two rules, enforced by convention at every
//! call site:
//!
//! 1. **Time rebasing** — stored absolute cycles are encoded relative to
//!    the current cycle (`saturating_sub`), so states that differ only by a
//!    uniform time shift encode identically and the reachable set stays
//!    finite.
//! 2. **No monotone counters** — statistics (hop counts, energy tallies,
//!    delivered totals) never enter the encoding; they grow without bound
//!    and would make every state unique.

/// Appends one byte.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `bool` as one byte.
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Appends a `u16` little-endian.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as `u64` little-endian (platform-independent width).
#[inline]
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_little_endian_and_fixed_width() {
        let mut out = Vec::new();
        put_u8(&mut out, 0xAB);
        put_bool(&mut out, true);
        put_u16(&mut out, 0x0102);
        put_u32(&mut out, 0x03040506);
        put_u64(&mut out, 0x0708090A0B0C0D0E);
        put_usize(&mut out, 7);
        assert_eq!(out.len(), 1 + 1 + 2 + 4 + 8 + 8);
        assert_eq!(&out[..4], &[0xAB, 1, 0x02, 0x01]);
    }
}
