//! The whole-network simulation object: routers, links, NIs, and the power
//! manager, advanced one cycle at a time.
//!
//! A progress watchdog rides along with every tick: cheap per-cycle
//! invariant checks (flit conservation; no flit into a powered-off router's
//! datapath), a no-forward-progress detector that surfaces a structured
//! [`StallReport`] instead of silently looping, and an escalation path that
//! force-wakes a router whose sleep gate keeps ignoring the level-signaled
//! WU handshake — the executable form of the paper's §4.1–4.2 safety-net
//! argument.

use std::collections::HashMap;
use std::time::Instant;

use punchsim_metrics::{Phase, PhaseProfiler, Registry};
use punchsim_obs::{self as obs, Event, EventSink, PowerTag};
use punchsim_types::{
    BlockedPacket, ConfigError, Cycle, FaultChoice, InvariantViolation, NocConfig, NodeId,
    PacketId, Port, PortMap, RouteView, SimError, StallReport, Substrate, WatchdogConfig,
};

use crate::flit::{Flit, Message, MsgClass, PacketMeta};
use crate::link::Pipe;
use crate::ni::Ni;
use crate::pool::{Job, ShardPool};
use crate::power::{IdleInfo, PmEvent, PowerManager, PowerState};
use crate::router::{Router, RouterActivity};
use crate::soa::{self, BusyKernel, FlatAvail, PmAvail, ShardBuf, ShardView, SoaState, TickCtx};
use crate::stats::{NetStats, NetworkReport};
use crate::trace::{PacketRecord, TraceLog};
use crate::vc::VcLayout;

/// How [`Network::run`] / [`Network::run_hooked`] advance the clock.
///
/// Both modes are observationally identical — pinned by the differential
/// oracle in `tests/differential.rs` and by the CI no-drift gate running the
/// benchmark campaign in both modes and comparing artifacts byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickMode {
    /// Quiescence fast-forward enabled (the default): when nothing can
    /// change network state before new host input, `run` advances the clock
    /// to the end of the requested span (or the next hook boundary) in one
    /// bulk [`PowerManager::tick_quiet`] call instead of O(routers) work
    /// per cycle.
    #[default]
    Fast,
    /// The reference kernel: strictly one [`Network::tick`] per cycle.
    /// Selected by `PP_NAIVE_TICK=1` at construction, or
    /// [`Network::set_tick_mode`].
    Naive,
}

impl TickMode {
    /// Resolves the mode from the `PP_NAIVE_TICK` environment variable:
    /// `1` selects [`TickMode::Naive`], anything else (or unset) selects
    /// [`TickMode::Fast`].
    pub fn from_env() -> Self {
        match std::env::var("PP_NAIVE_TICK") {
            Ok(v) if v == "1" => TickMode::Naive,
            _ => TickMode::Fast,
        }
    }
}

/// How the sharded SoA tick executes phase A when `shards > 1`.
///
/// Both modes are observationally identical — the shard pool reuses the
/// exact record-then-commit protocol, only the thread lifecycle differs —
/// pinned end to end by `tests/shard_pool_determinism.rs` and by the CI
/// `shard_gate.sh` artifact diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardExec {
    /// Persistent worker pool (the default): shard threads are created
    /// lazily on the first sharded tick, parked on a condvar epoch
    /// barrier between ticks, resized on [`Network::set_shards`], and
    /// joined on drop. Amortizes the ~6 μs/spawn per-tick cost measured
    /// in PR 7's timing sidecars.
    #[default]
    Pool,
    /// The reference lifecycle: `std::thread::scope` spawns fresh shard
    /// threads every tick. Selected by `PP_SPAWN_TICK=1` at
    /// construction, or [`Network::set_shard_exec`].
    Spawn,
}

impl ShardExec {
    /// Resolves the mode from the `PP_SPAWN_TICK` environment variable:
    /// `1` selects [`ShardExec::Spawn`], anything else (or unset)
    /// selects [`ShardExec::Pool`].
    pub fn from_env() -> Self {
        match std::env::var("PP_SPAWN_TICK") {
            Ok(v) if v == "1" => ShardExec::Spawn,
            _ => ShardExec::Pool,
        }
    }
}

/// One pooled shard's phase-A work for one tick: the shard view plus the
/// shared read-only tick context, bundled so a type-erased pool [`Job`]
/// can point at it. Lives on `soa_phase_a`'s stack; the pool's
/// completion barrier guarantees workers are done with it before that
/// frame unwinds.
struct ShardTask<'a, 'b> {
    sv: ShardView<'b>,
    ctx: &'a TickCtx<'b>,
    avail: &'a FlatAvail<'b>,
    buf: &'a mut ShardBuf,
}

/// Pool job entry point for one shard's phase A.
///
/// # Safety
///
/// `p` must point at a live, exclusively-owned [`ShardTask`] — upheld by
/// `soa_phase_a`, which hands each task to exactly one worker and blocks
/// at the pool barrier until all of them are done.
unsafe fn run_shard_task(p: *mut ()) {
    let t = unsafe { &mut *(p as *mut ShardTask<'_, '_>) };
    soa::shard_phase_a(&mut t.sv, t.ctx, t.avail, t.buf);
}

/// Test-hook variant of [`run_shard_task`] that panics instead of
/// working, driving the pool's typed-error path
/// (see [`Network::debug_panic_next_pooled_tick`]).
unsafe fn run_shard_task_panicking(_p: *mut ()) {
    panic!("injected shard panic (test hook)");
}

/// A cycle-accurate mesh network under a pluggable power-gating scheme.
///
/// Endpoints interact through [`Network::send`] (hand a [`Message`] to a
/// node's NI), [`Network::take_delivered`] (collect messages that ejected at
/// a node), and [`Network::tick`].
///
/// # Examples
///
/// ```
/// use punchsim_noc::{Network, Message, MsgClass, AlwaysOn};
/// use punchsim_types::{NocConfig, NodeId, VnetId};
///
/// let cfg = NocConfig::default();
/// let pm = Box::new(AlwaysOn::new(cfg.topology.nodes()));
/// let mut net = Network::new(&cfg, pm).unwrap();
/// net.send(Message {
///     src: NodeId(0),
///     dst: NodeId(9),
///     vnet: VnetId(0),
///     class: MsgClass::Control,
///     payload: 42,
///     gen_cycle: 0,
/// }).unwrap();
/// for _ in 0..40 {
///     net.tick().unwrap();
/// }
/// let got = net.take_delivered(NodeId(9));
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].payload, 42);
/// ```
pub struct Network {
    cfg: NocConfig,
    view: RouteView,
    cycle: Cycle,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    /// Flit pipes into router `n`, per input port (`Local` = from its NI).
    flit_in: Vec<PortMap<Pipe<Flit>>>,
    /// Credit pipes into router `n`, per *output* port.
    credit_in: Vec<PortMap<Pipe<usize>>>,
    /// Credit pipes into NI `n` (for the local input port of its router).
    ni_credit_in: Vec<Pipe<usize>>,
    /// Ejected-flit pipes into NI `n`.
    eject_in: Vec<Pipe<Flit>>,
    packets: HashMap<u64, PacketMeta>,
    next_packet: u64,
    pm: Box<dyn PowerManager>,
    events: Vec<PmEvent>,
    stats: NetStats,
    outbox: Vec<Vec<Message>>,
    /// Messages currently sitting in `outbox` across all nodes, so hosts
    /// can skip their per-node drain scan when nothing was delivered.
    outbox_pending: u64,
    ni_flits: u64,
    injected_flits: u64,
    measure_start: Cycle,
    trace: Option<TraceLog>,
    /// Structured event sink (`None` = tracing disabled: the only cost on
    /// hot paths is this branch).
    sink: Option<Box<dyn EventSink>>,
    /// Last observed power tag per router, for transition detection.
    power_shadow: Vec<PowerTag>,
    /// Cycle each currently-off router went off at (BET epoch tracking).
    off_since: Vec<Cycle>,
    /// Credits currently inside credit pipes (all kinds), so the per-cycle
    /// credit sweep can skip entirely when none are in flight.
    credits_in_flight: u64,
    // --- watchdog state (lifetime of the network, never reset) ---
    /// Flits accepted by `send` since construction.
    conserv_injected: u64,
    /// Flits of fully delivered packets since construction.
    conserv_delivered: u64,
    /// Flits currently between NI enqueue and tail ejection.
    conserv_in_flight: u64,
    /// Last cycle that saw a flit latch, NI send, departure or ejection.
    last_progress: Cycle,
    /// Any flit movement during the current tick.
    moved: bool,
    /// Consecutive cycles each router's WU has been asserted and ignored.
    blocked_streak: Vec<Cycle>,
    /// First invariant violation observed (latched; tick keeps failing).
    violation: Option<InvariantViolation>,
    /// Clock-advance strategy for `run`/`run_hooked`.
    tick_mode: TickMode,
    /// Busy-cycle kernel for `tick`: the SoA word sweep (default) or the
    /// object-at-a-time struct reference.
    busy_kernel: BusyKernel,
    /// Row-band shard count for the SoA kernel (1 = no threading).
    shards: usize,
    /// Flat per-mesh bitset index over the router/NI structs (see
    /// [`crate::soa`]).
    soa: SoaState,
    /// The struct-path kernel does not maintain the SoA bits; after it has
    /// run, the next SoA tick rebuilds them from the structs.
    soa_dirty: bool,
    /// Per-shard phase-A outcome buffers (reused; steady-state ticks
    /// allocate nothing).
    shard_bufs: Vec<ShardBuf>,
    /// Reusable per-tick idleness scratch (steady-state tick allocates
    /// nothing).
    idle_scratch: Vec<bool>,
    /// Reusable per-tick scratch for the escalation streak scan.
    seen_scratch: Vec<bool>,
    /// `true` while any `blocked_streak` entry is non-zero, so the common
    /// no-blocked-wakeups cycle skips the escalation scan entirely.
    any_streak: bool,
    /// Tick-phase wall-time profiler (`None` = profiling disabled: like
    /// `sink`, the only cost on hot paths is one branch per phase
    /// boundary). Wall-clock data never feeds back into simulation state
    /// and is exported only toward the nondeterministic timing sidecar.
    profiler: Option<PhaseProfiler>,
    /// Shard threads created since the last stats reset: per-tick scoped
    /// spawns under [`ShardExec::Spawn`], pool thread creations under
    /// [`ShardExec::Pool`] (at most `shards - 1` per pool lifetime — the
    /// amortization the pool exists for).
    spawn_count: u64,
    /// Wall nanoseconds spent issuing those spawns.
    spawn_nanos: u64,
    /// Phase-A thread lifecycle under `shards > 1` (pool vs per-tick
    /// spawn; an execution detail like the shard count itself).
    shard_exec: ShardExec,
    /// The persistent shard worker pool, created lazily on the first
    /// pooled sharded tick; `None` under `ShardExec::Spawn`, for
    /// `shards == 1`, or before that first tick.
    pool: Option<ShardPool>,
    /// Sharded ticks dispatched through the pool since the last stats
    /// reset.
    pool_ticks: u64,
    /// Wall nanoseconds the host spent blocked at the pool's completion
    /// barrier (after finishing its own shard 0) since the last reset.
    pool_wait_nanos: u64,
    /// Test hook: makes the next pooled phase A panic in its last worker
    /// (see [`Network::debug_panic_next_pooled_tick`]).
    panic_next_shard: bool,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("cycle", &self.cycle)
            .field("scheme", &self.pm.kind())
            .field("nodes", &self.view.topo.nodes())
            .field("in_flight_packets", &self.packets.len())
            .finish()
    }
}

impl Network {
    /// Builds the network described by `cfg` under power manager `pm`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: &NocConfig, pm: Box<dyn PowerManager>) -> Result<Self, SimError> {
        cfg.validate()?;
        let view = cfg.view();
        let topo = view.topo;
        let layout = VcLayout::new(cfg);
        let n = topo.nodes();
        // `PP_SHARDS` mirrors the CLI's `--shards`: an execution detail like
        // the thread count, never part of a run's content hash. Unparsable
        // values fall back to 1; a parsed-but-invalid count is a config error.
        let shards = std::env::var("PP_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1);
        Self::validate_shards(shards, topo.height())?;
        let routers = topo
            .iter_nodes()
            .map(|id| {
                let has = PortMap::from_fn(|p| match p {
                    Port::Local => true,
                    Port::Link(d) => topo.neighbor(id, d).is_some(),
                });
                Router::new(id, layout, cfg.router_stages, has)
            })
            .collect();
        let nis = topo
            .iter_nodes()
            .map(|id| Ni::new(id, layout, cfg.ni_latency))
            .collect();
        Ok(Network {
            cfg: cfg.clone(),
            view,
            cycle: 0,
            routers,
            nis,
            flit_in: (0..n).map(|_| PortMap::from_fn(|_| Pipe::new())).collect(),
            credit_in: (0..n).map(|_| PortMap::from_fn(|_| Pipe::new())).collect(),
            ni_credit_in: (0..n).map(|_| Pipe::new()).collect(),
            eject_in: (0..n).map(|_| Pipe::new()).collect(),
            packets: HashMap::new(),
            next_packet: 0,
            pm,
            events: Vec::new(),
            stats: NetStats::default(),
            outbox: vec![Vec::new(); n],
            outbox_pending: 0,
            ni_flits: 0,
            injected_flits: 0,
            measure_start: 0,
            trace: None,
            sink: None,
            power_shadow: Vec::new(),
            off_since: Vec::new(),
            credits_in_flight: 0,
            conserv_injected: 0,
            conserv_delivered: 0,
            conserv_in_flight: 0,
            last_progress: 0,
            moved: false,
            blocked_streak: vec![0; n],
            violation: None,
            tick_mode: TickMode::from_env(),
            busy_kernel: BusyKernel::from_env(),
            shards,
            soa: SoaState::new(n),
            soa_dirty: false,
            shard_bufs: Vec::new(),
            idle_scratch: Vec::with_capacity(n),
            seen_scratch: Vec::with_capacity(n),
            any_streak: false,
            profiler: None,
            spawn_count: 0,
            spawn_nanos: 0,
            shard_exec: ShardExec::from_env(),
            pool: None,
            pool_ticks: 0,
            pool_wait_nanos: 0,
            panic_next_shard: false,
        })
    }

    /// Checks a shard count against this topology's row count.
    fn validate_shards(shards: usize, rows: u16) -> Result<(), ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if shards > rows as usize {
            return Err(ConfigError::ShardsExceedRows { shards, rows });
        }
        Ok(())
    }

    /// Sets the row-band shard count for the SoA busy-tick kernel
    /// (overrides the `PP_SHARDS` environment resolution done at
    /// construction). Shard count never changes results — phase A is
    /// confined to shard-owned state and the commit order is fixed — so
    /// this is an execution knob like the campaign thread count, not part
    /// of any run specification.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroShards`] for `0` and
    /// [`ConfigError::ShardsExceedRows`] when `shards` exceeds the
    /// topology's router rows (a shard would own no rows).
    pub fn set_shards(&mut self, shards: usize) -> Result<(), ConfigError> {
        Self::validate_shards(shards, self.view.topo.height())?;
        self.shards = shards;
        // An existing pool sized for a different count is torn down here
        // (workers joined); the right-sized pool is re-created lazily on
        // the next pooled sharded tick.
        let keep = shards > 1
            && self
                .pool
                .as_ref()
                .is_some_and(|p| p.workers() == shards - 1);
        if !keep {
            self.pool = None;
        }
        Ok(())
    }

    /// The active shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Selects the phase-A thread lifecycle for sharded ticks (overrides
    /// the `PP_SPAWN_TICK` environment resolution done at construction).
    /// Switching to [`ShardExec::Spawn`] joins any live pool workers.
    pub fn set_shard_exec(&mut self, exec: ShardExec) {
        self.shard_exec = exec;
        if exec == ShardExec::Spawn {
            self.pool = None;
        }
    }

    /// The active phase-A thread lifecycle.
    pub fn shard_exec(&self) -> ShardExec {
        self.shard_exec
    }

    /// Test hook: the next pooled sharded tick runs a panicking job in
    /// its last worker, exercising the pool's typed-error path
    /// ([`punchsim_types::SimError::ShardPanic`] instead of a hang). Only
    /// meaningful while `shards > 1` under [`ShardExec::Pool`].
    #[doc(hidden)]
    pub fn debug_panic_next_pooled_tick(&mut self) {
        self.panic_next_shard = true;
    }

    /// Selects the busy-cycle kernel (overrides the `PP_STRUCT_TICK`
    /// environment resolution done at construction).
    pub fn set_busy_kernel(&mut self, kernel: BusyKernel) {
        self.busy_kernel = kernel;
    }

    /// The active busy-cycle kernel.
    pub fn busy_kernel(&self) -> BusyKernel {
        self.busy_kernel
    }

    /// Selects how `run`/`run_hooked` advance the clock (overrides the
    /// `PP_NAIVE_TICK` environment resolution done at construction).
    pub fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick_mode = mode;
    }

    /// The active clock-advance strategy.
    pub fn tick_mode(&self) -> TickMode {
        self.tick_mode
    }

    /// Replaces the watchdog configuration (thresholds, invariant checks).
    pub fn set_watchdog(&mut self, w: WatchdogConfig) {
        self.cfg.watchdog = w;
    }

    /// The active watchdog configuration.
    pub fn watchdog(&self) -> &WatchdogConfig {
        &self.cfg.watchdog
    }

    /// Starts recording per-packet completion records (up to `capacity`);
    /// read them back with [`Network::trace`] or [`Network::take_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// The packet trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Takes the trace, disabling further recording.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take()
    }

    /// Attaches a structured event sink: from the next tick on, power-state
    /// transitions, punch/wakeup activity, NI slack events and packet
    /// inject/deliver milestones are recorded into it. Replaces any
    /// previously attached sink. Tracing does not alter simulation
    /// behaviour; with no sink attached the only overhead is one branch
    /// per emission site.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        let n = self.view.topo.nodes();
        // Prime the shadow from the current states so the first diff only
        // reports genuine transitions.
        self.power_shadow = (0..n)
            .map(|i| self.pm.state(NodeId(i as u16)).tag())
            .collect();
        self.off_since = vec![self.cycle; n];
        self.pm.set_tracing(true);
        self.sink = Some(sink);
    }

    /// The attached event sink, if any.
    pub fn sink(&self) -> Option<&dyn EventSink> {
        self.sink.as_deref()
    }

    /// Detaches and returns the event sink, disabling structured tracing.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        if self.sink.is_some() {
            self.pm.set_tracing(false);
        }
        self.sink.take()
    }

    /// Cumulative observability counters at the current cycle, for
    /// host-driven interval sampling (feed consecutive snapshots to
    /// [`punchsim_obs::Sampler::observe`]). Read-only: sampling cannot
    /// perturb the simulation.
    pub fn obs_sample(&self) -> obs::Sample {
        let pg = self.pm.counters();
        obs::Sample {
            cycle: self.cycle,
            delivered: self.stats.packets_delivered,
            latency_sum: self.stats.latency.sum(),
            latency_count: self.stats.latency.count(),
            off_cycles: pg.total_off_cycles(),
            punch_hops: pg.punch_hops,
            escalations: pg.escalations,
            wu_assertions: pg.wu_assertions,
        }
    }

    /// Attaches a fresh tick-phase profiler: from the next tick on, every
    /// phase boundary charges elapsed wall time to its phase. Profiling
    /// observes the simulation clock loop only — it cannot change results.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(PhaseProfiler::new());
    }

    /// The attached phase profiler, if any.
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_ref()
    }

    /// Detaches and returns the phase profiler, disabling profiling.
    pub fn take_profiler(&mut self) -> Option<PhaseProfiler> {
        self.profiler.take()
    }

    /// Shard-thread creation overhead since the last stats reset:
    /// `(spawn_count, spawn_nanos)` — threads created for the sharded SoA
    /// phase A and the wall time spent issuing those creations. Under
    /// [`ShardExec::Spawn`] this grows by `shards - 1` every sharded tick
    /// (the PR 7 baseline); under [`ShardExec::Pool`] it counts pool
    /// thread creations only, so it stays `<= shards - 1` per pool
    /// lifetime no matter how many ticks run. `(0, 0)` while
    /// `shards == 1`.
    pub fn spawn_stats(&self) -> (u64, u64) {
        (self.spawn_count, self.spawn_nanos)
    }

    /// Pool dispatch overhead since the last stats reset:
    /// `(pool_ticks, pool_wait_nanos)` — sharded ticks dispatched through
    /// the persistent worker pool, and the wall time the host thread
    /// spent blocked at the completion barrier after finishing its own
    /// shard. `(0, 0)` under [`ShardExec::Spawn`] or while `shards == 1`.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool_ticks, self.pool_wait_nanos)
    }

    /// Charges the wall time since the previous phase boundary to `p`.
    /// One branch when profiling is disabled.
    #[inline]
    fn mark(&mut self, p: Phase) {
        if let Some(pr) = self.profiler.as_mut() {
            pr.mark(p);
        }
    }

    /// Exports every deterministic metric of the current measured window
    /// into `reg`: run-level counters, the end-to-end latency histogram,
    /// and the per-router planes (power-gating cycles/events, WU
    /// assertions, escalations, and — for punch schemes — punch hops).
    /// Wall-clock phase data is *not* included here; export the profiler
    /// separately into a registry bound for the timing sidecar.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let pg = self.pm.counters();
        reg.inc("packets_injected_total", self.stats.packets_injected);
        reg.inc("packets_delivered_total", self.stats.packets_delivered);
        reg.inc("flits_delivered_total", self.stats.flits_delivered);
        reg.inc("link_traversals_total", self.stats.link_traversals);
        reg.inc("ni_flits_total", self.ni_flits);
        reg.inc("punch_hops_total", pg.punch_hops);
        reg.inc("wu_assertions_total", pg.wu_assertions);
        reg.inc("wu_retries_total", pg.wu_retries);
        reg.inc("escalations_total", pg.escalations);
        reg.inc("faults_injected_total", pg.faults_injected);
        reg.inc("deflections_total", pg.deflections);
        reg.hist_mut("packet_latency_cycles")
            .merge(&self.stats.latency_hist);
        let (w, h) = (
            self.view.topo.width() as usize,
            self.view.topo.height() as usize,
        );
        let planes: [(&str, &[u64]); 6] = [
            ("router_off_cycles", &pg.off_cycles),
            ("router_waking_cycles", &pg.waking_cycles),
            ("router_sleep_events", &pg.sleep_events),
            ("router_wake_events", &pg.wake_events),
            ("router_wu_assertions", &pg.wu_assertions_at),
            ("router_escalations", &pg.escalations_at),
        ];
        for (name, values) in planes {
            reg.plane_mut(name, w, h).add_row_major(w, values);
        }
        if let Some(hops) = self.pm.punch_hops_at() {
            reg.plane_mut("router_punch_hops", w, h)
                .add_row_major(w, hops);
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The topology this network is built on.
    pub fn topology(&self) -> Substrate {
        self.view.topo
    }

    /// The topology/routing pair this network routes with.
    pub fn view(&self) -> RouteView {
        self.view
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Power state of router `r` under the active scheme.
    pub fn power_state(&self, r: NodeId) -> PowerState {
        self.pm.state(r)
    }

    /// The active power manager (for scheme-specific inspection).
    pub fn power_manager(&self) -> &dyn PowerManager {
        self.pm.as_ref()
    }

    /// Number of packets somewhere between NI enqueue and tail ejection.
    pub fn in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Hands `msg` to the NI of `msg.src` at the current cycle.
    ///
    /// Returns the packet id assigned to the message.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] if `msg.src` or `msg.dst` is
    /// outside the mesh, and [`SimError::VnetOutOfRange`] if `msg.vnet` is
    /// not a configured virtual network.
    pub fn send(&mut self, msg: Message) -> Result<PacketId, SimError> {
        for node in [msg.src, msg.dst] {
            if !self.view.topo.contains(node) {
                return Err(SimError::NodeOutOfRange {
                    node,
                    nodes: self.view.topo.nodes(),
                });
            }
        }
        if msg.vnet.index() >= self.cfg.vnets as usize {
            return Err(SimError::VnetOutOfRange {
                vnet: msg.vnet,
                vnets: self.cfg.vnets,
            });
        }
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let len = match msg.class {
            MsgClass::Control => self.cfg.ctrl_packet_flits as u16,
            MsgClass::Data => self.cfg.data_packet_flits as u16,
        };
        let ni = &mut self.nis[msg.src.index()];
        ni.enqueue(id, &msg, len, self.cycle);
        // Look-ahead route for the first hop; a message to the local node
        // still traverses the local router (inject then immediately eject),
        // as in GARNET.
        let route_port = match self.view.direction(msg.src, msg.dst) {
            Some(d) => Port::Link(d),
            None => Port::Local,
        };
        ni.set_route_of_last(msg.vnet, route_port);
        // Slack 1: destination is known the moment the message enters the NI.
        self.events.push(PmEvent::NiMessageKnown {
            node: msg.src,
            dst: msg.dst,
        });
        if let Some(s) = self.sink.as_mut() {
            s.record(
                self.cycle,
                &Event::Inject {
                    packet: id.0,
                    src: msg.src,
                    dst: msg.dst,
                },
            );
        }
        // The NI now has injection-side work: flag it for the SoA sweep.
        self.soa.ni_pend.set(msg.src.index());
        self.packets
            .insert(id.0, PacketMeta::new(msg, len, self.cycle, true));
        self.stats.packets_injected += 1;
        self.injected_flits += len as u64;
        self.conserv_injected += len as u64;
        self.conserv_in_flight += len as u64;
        Ok(id)
    }

    /// Reports that `node` will generate a packet shortly although its
    /// destination is not yet known — the paper's "slack 2" (§4.2), e.g. the
    /// start of an L2 or directory access. Only `PowerPunch-PG` uses it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] if `node` is outside the
    /// topology (previously this fed an unchecked index into the power
    /// manager, which panicked several layers down).
    pub fn notify_future_injection(&mut self, node: NodeId) -> Result<(), SimError> {
        if !self.view.topo.contains(node) {
            return Err(SimError::NodeOutOfRange {
                node,
                nodes: self.view.topo.nodes(),
            });
        }
        self.events.push(PmEvent::FutureInjection { node });
        Ok(())
    }

    /// Takes every message that has been delivered to `node` so far.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Message> {
        let msgs = std::mem::take(&mut self.outbox[node.index()]);
        self.outbox_pending -= msgs.len() as u64;
        msgs
    }

    /// Messages delivered but not yet collected with
    /// [`Network::take_delivered`], across all nodes. Hosts polling every
    /// node each cycle can skip the whole scan while this is zero.
    pub fn delivered_pending(&self) -> u64 {
        self.outbox_pending
    }

    /// Deep-copies the network for state-space exploration, or `None` when
    /// it cannot be copied faithfully: an event sink is attached (sinks are
    /// not clonable), or the active power manager does not implement
    /// [`PowerManager::clone_boxed`].
    pub fn try_clone(&self) -> Option<Network> {
        if self.sink.is_some() {
            return None;
        }
        let pm = self.pm.clone_boxed()?;
        Some(Network {
            cfg: self.cfg.clone(),
            view: self.view,
            cycle: self.cycle,
            routers: self.routers.clone(),
            nis: self.nis.clone(),
            flit_in: self.flit_in.clone(),
            credit_in: self.credit_in.clone(),
            ni_credit_in: self.ni_credit_in.clone(),
            eject_in: self.eject_in.clone(),
            packets: self.packets.clone(),
            next_packet: self.next_packet,
            pm,
            events: self.events.clone(),
            stats: self.stats.clone(),
            outbox: self.outbox.clone(),
            outbox_pending: self.outbox_pending,
            ni_flits: self.ni_flits,
            injected_flits: self.injected_flits,
            measure_start: self.measure_start,
            trace: self.trace.clone(),
            sink: None,
            power_shadow: self.power_shadow.clone(),
            off_since: self.off_since.clone(),
            credits_in_flight: self.credits_in_flight,
            conserv_injected: self.conserv_injected,
            conserv_delivered: self.conserv_delivered,
            conserv_in_flight: self.conserv_in_flight,
            last_progress: self.last_progress,
            moved: self.moved,
            blocked_streak: self.blocked_streak.clone(),
            violation: self.violation.clone(),
            tick_mode: self.tick_mode,
            busy_kernel: self.busy_kernel,
            shards: self.shards,
            soa: self.soa.clone(),
            soa_dirty: self.soa_dirty,
            shard_bufs: Vec::new(),
            idle_scratch: Vec::with_capacity(self.routers.len()),
            seen_scratch: Vec::with_capacity(self.routers.len()),
            any_streak: self.any_streak,
            // Like the sink, profiling state does not clone: forks explore
            // state space, they are not wall-time subjects.
            profiler: None,
            spawn_count: 0,
            spawn_nanos: 0,
            shard_exec: self.shard_exec,
            // Worker threads are per-instance; the clone builds its own
            // pool lazily if it ever runs a pooled sharded tick.
            pool: None,
            pool_ticks: 0,
            pool_wait_nanos: 0,
            panic_next_shard: false,
        })
    }

    /// Canonical byte encoding of all dynamic state, for reachable-set
    /// deduplication in the exhaustive checker (see [`crate::snapshot`] for
    /// the two rules every field follows). Returns `None` when the active
    /// power manager does not support state encoding.
    ///
    /// Two networks with equal encodings behave identically from here on
    /// (up to a uniform time shift): routers, NIs, every in-flight item in
    /// every pipe (delivery cycles rebased), the in-flight packet-id set,
    /// pending power-manager events, the watchdog's blocked-WU streaks and
    /// stall age, and the power manager's own state. Statistics, the
    /// delivered-message outbox and the conservation totals are excluded —
    /// they never feed back into dynamics.
    pub fn encode_state(&self) -> Option<Vec<u8>> {
        use crate::snapshot::{put_u16, put_u64, put_u8, put_usize};
        let now = self.cycle;
        let mut out = Vec::with_capacity(1024);
        for r in &self.routers {
            r.encode_state(&mut out);
        }
        for ni in &self.nis {
            ni.encode_state(now, &mut out);
        }
        for ports in &self.flit_in {
            for (_, pipe) in ports.iter() {
                put_u8(&mut out, pipe.len() as u8);
                for (at, flit) in pipe.iter() {
                    put_u64(&mut out, at.saturating_sub(now));
                    flit.encode_state(&mut out);
                }
            }
        }
        for ports in &self.credit_in {
            for (_, pipe) in ports.iter() {
                put_u8(&mut out, pipe.len() as u8);
                for (at, &vc) in pipe.iter() {
                    put_u64(&mut out, at.saturating_sub(now));
                    put_u8(&mut out, vc as u8);
                }
            }
        }
        for pipe in &self.ni_credit_in {
            put_u8(&mut out, pipe.len() as u8);
            for (at, &vc) in pipe.iter() {
                put_u64(&mut out, at.saturating_sub(now));
                put_u8(&mut out, vc as u8);
            }
        }
        for pipe in &self.eject_in {
            put_u8(&mut out, pipe.len() as u8);
            for (at, flit) in pipe.iter() {
                put_u64(&mut out, at.saturating_sub(now));
                flit.encode_state(&mut out);
            }
        }
        // The in-flight id set decides terminality; sorted for canonicity.
        let mut ids: Vec<u64> = self.packets.keys().copied().collect();
        ids.sort_unstable();
        put_usize(&mut out, ids.len());
        for id in ids {
            put_u64(&mut out, id);
        }
        // Events buffered for the next power_tick (non-empty only right
        // after host sends, but those states are explored too).
        put_u8(&mut out, self.events.len() as u8);
        for ev in &self.events {
            match *ev {
                PmEvent::HeadArrival { router, dst } => {
                    put_u8(&mut out, 0);
                    put_u16(&mut out, router.0);
                    put_u16(&mut out, dst.0);
                }
                PmEvent::BlockedNeed { router } => {
                    put_u8(&mut out, 1);
                    put_u16(&mut out, router.0);
                    put_u16(&mut out, 0);
                }
                PmEvent::NiMessageKnown { node, dst } => {
                    put_u8(&mut out, 2);
                    put_u16(&mut out, node.0);
                    put_u16(&mut out, dst.0);
                }
                PmEvent::FutureInjection { node } => {
                    put_u8(&mut out, 3);
                    put_u16(&mut out, node.0);
                    put_u16(&mut out, 0);
                }
                PmEvent::NiReadyToInject { node, dst } => {
                    put_u8(&mut out, 4);
                    put_u16(&mut out, node.0);
                    put_u16(&mut out, dst.0);
                }
            }
        }
        // Watchdog dynamic state: both bounded (escalation resets streaks,
        // a stall report re-arms the progress clock), both behaviour-
        // relevant, so both belong in the encoding.
        for &s in &self.blocked_streak {
            put_u64(&mut out, s);
        }
        put_u64(&mut out, self.stall_age());
        if !self.pm.encode_state(now, &mut out) {
            return None;
        }
        Some(out)
    }

    /// Cycles since the watchdog last saw forward progress (0 while idle or
    /// right after movement; bounded by the stall threshold, past which
    /// [`Network::tick`] errors out).
    pub fn stall_age(&self) -> Cycle {
        self.cycle
            .saturating_sub(1)
            .saturating_sub(self.last_progress)
    }

    /// Per-router count of consecutive cycles the WU handshake has been
    /// asserted and ignored (indexed by node id).
    pub fn blocked_streaks(&self) -> &[Cycle] {
        &self.blocked_streak
    }

    /// Arms a one-shot fault choice on the power manager for the next tick;
    /// `false` if the active manager does not support scripted choices (see
    /// [`PowerManager::arm_choice`]).
    pub fn arm_fault_choice(&mut self, choice: FaultChoice) -> bool {
        self.pm.arm_choice(choice)
    }

    /// Advances the network by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] when a per-cycle invariant check
    /// fails (flit conservation, flit into a powered-off router), and
    /// [`SimError::Stall`] when no flit has moved for longer than
    /// [`WatchdogConfig::stall_threshold`] while packets are in flight.
    /// An invariant violation is latched: every subsequent tick keeps
    /// returning it. A stall re-arms, so a caller that intentionally keeps
    /// ticking past it will get a fresh report each threshold window.
    pub fn tick(&mut self) -> Result<(), SimError> {
        match self.busy_kernel {
            BusyKernel::Soa => self.tick_soa(),
            BusyKernel::Struct => self.tick_struct(),
        }
    }

    /// The object-at-a-time reference kernel: every router, NI and pipe
    /// visited every cycle through the structs.
    fn tick_struct(&mut self) -> Result<(), SimError> {
        // The struct sweeps do not maintain the SoA bit index; rebuild it
        // lazily if the SoA kernel runs next.
        self.soa_dirty = true;
        let now = self.cycle;
        self.moved = false;
        self.mark(Phase::Host);
        self.deliver_flits(now);
        self.mark(Phase::DeliverFlits);
        self.deliver_credits(now);
        self.mark(Phase::DeliverCredits);
        self.allocate_routers(now);
        self.mark(Phase::Allocate);
        self.deliver_ejections(now);
        self.mark(Phase::Eject);
        self.inject_from_nis(now);
        self.mark(Phase::Inject);
        self.watchdog_escalate(now);
        self.mark(Phase::Watchdog);
        self.power_tick(now);
        self.mark(Phase::PowerTick);
        self.cycle = now + 1;
        let r = self.watchdog_check(now);
        self.mark(Phase::Watchdog);
        r
    }

    /// The SoA word-sweep kernel: phase A computes each shard's slice of
    /// the tick over shard-owned state only, then the commit applies every
    /// cross-router effect serially in router-index order — bit-exact with
    /// [`Network::tick_struct`] for any shard count.
    fn tick_soa(&mut self) -> Result<(), SimError> {
        self.mark(Phase::Host);
        if self.soa_dirty {
            self.rebuild_soa();
            self.mark(Phase::SoaRebuild);
        }
        let now = self.cycle;
        self.moved = false;
        let pool_wait = self.soa_phase_a(now)?;
        self.mark(Phase::SoaPhaseA);
        if pool_wait > 0 {
            // The SoaPhaseA interval above includes the host's blocked
            // wait at the pool barrier; reattribute the measured wait to
            // its own phase (totals, and thus coverage, are conserved).
            if let Some(pr) = self.profiler.as_mut() {
                pr.transfer(Phase::SoaPhaseA, Phase::PoolWait, pool_wait);
            }
        }
        self.soa_commit(now);
        self.mark(Phase::SoaCommit);
        self.watchdog_escalate(now);
        self.mark(Phase::Watchdog);
        self.power_tick_soa(now);
        self.mark(Phase::PowerTick);
        self.cycle = now + 1;
        let r = self.watchdog_check(now);
        self.mark(Phase::Watchdog);
        r
    }

    /// Recomputes every SoA bit from the authoritative structs (after the
    /// struct kernel has run, or a kernel switch).
    fn rebuild_soa(&mut self) {
        let n = self.routers.len();
        self.soa.occ.clear_all();
        self.soa.flit_pend.clear_all();
        self.soa.credit_pend.clear_all();
        self.soa.eject_pend.clear_all();
        self.soa.ni_pend.clear_all();
        self.soa.ni_mid.clear_all();
        for idx in 0..n {
            if !self.routers[idx].datapath_empty() {
                self.soa.occ.set(idx);
            }
            if Port::ALL.iter().any(|&p| !self.flit_in[idx][p].is_empty()) {
                self.soa.flit_pend.set(idx);
            }
            if !self.ni_credit_in[idx].is_empty()
                || Port::ALL
                    .iter()
                    .any(|&p| !self.credit_in[idx][p].is_empty())
            {
                self.soa.credit_pend.set(idx);
            }
            if !self.eject_in[idx].is_empty() {
                self.soa.eject_pend.set(idx);
            }
            if self.nis[idx].pending() > 0 {
                self.soa.ni_pend.set(idx);
            }
            if self.nis[idx].mid_packet() {
                self.soa.ni_mid.set(idx);
            }
        }
        self.soa_dirty = false;
    }

    /// Runs phase A over all shards: inline for one shard (power-manager
    /// queries go straight to the boxed manager), on the persistent
    /// worker pool — or per-tick scoped threads under
    /// [`ShardExec::Spawn`] — for more (availability is precomputed into
    /// flat arrays first; the manager is host-thread-only).
    ///
    /// Returns the wall nanoseconds the host spent blocked at the pool's
    /// completion barrier this tick (0 for inline and spawn execution),
    /// so the tick loop can reattribute that wait to [`Phase::PoolWait`].
    ///
    /// # Errors
    ///
    /// [`SimError::ShardPanic`] when a pool worker's shard panicked; the
    /// pool itself survives and later ticks may proceed.
    fn soa_phase_a(&mut self, now: Cycle) -> Result<u64, SimError> {
        let shards = self.shards;
        if self.shard_bufs.len() != shards {
            self.shard_bufs.resize_with(shards, ShardBuf::default);
        }
        for b in &mut self.shard_bufs {
            b.reset();
        }
        let link = self.cfg.link_latency as Cycle;
        let check = self.cfg.watchdog.invariant_checks;
        let violation_open = self.violation.is_none();
        if shards > 1 {
            let Network { pm, soa, .. } = self;
            soa.fill_avail(pm.as_ref(), now + 2 + link, now + 1 + link);
            if self.shard_exec == ShardExec::Pool {
                self.ensure_pool(shards - 1);
            }
        }
        let inject_panic = std::mem::take(&mut self.panic_next_shard);
        let Network {
            routers,
            nis,
            flit_in,
            credit_in,
            ni_credit_in,
            eject_in,
            pm,
            soa,
            shard_bufs,
            view,
            pool,
            ..
        } = self;
        let soa = &*soa;
        let ctx = TickCtx {
            now,
            link,
            check,
            violation_open,
            view: *view,
            occ: soa.occ.words(),
            flit_pend: soa.flit_pend.words(),
            credit_pend: soa.credit_pend.words(),
            eject_pend: soa.eject_pend.words(),
            ni_pend: soa.ni_pend.words(),
        };
        if shards == 1 {
            let avail = PmAvail {
                pm: pm.as_ref(),
                arrival_by: now + 2 + link,
                local_by: now + 1 + link,
            };
            let mut sv = ShardView {
                lo: 0,
                hi: routers.len(),
                routers,
                nis,
                flit_in,
                credit_in,
                ni_credit_in,
                eject_in,
            };
            soa::shard_phase_a(&mut sv, &ctx, &avail, &mut shard_bufs[0]);
            return Ok(0);
        }
        let avail = FlatAvail {
            arrival: &soa.avail_arrival,
            local: &soa.avail_local,
            off: &soa.power_off,
        };
        let bounds = soa::shard_bounds(view.topo.width(), view.topo.height(), shards);
        let views = soa::split_shards(
            routers,
            nis,
            flit_in,
            credit_in,
            ni_credit_in,
            eject_in,
            &bounds,
        );
        if let Some(pool) = pool.as_ref() {
            // Persistent-pool execution: publish one job per parked
            // worker, run shard 0 on this thread, then wait at the
            // completion barrier. Jobs borrow this stack frame; that is
            // sound because `run_tick` never returns (even by unwinding)
            // before every worker passed the barrier.
            let mut views = views.into_iter();
            let mut sv0 = views.next().expect("at least one shard");
            let (buf0, bufs) = shard_bufs.split_at_mut(1);
            let mut tasks: Vec<ShardTask<'_, '_>> = views
                .zip(bufs.iter_mut())
                .map(|(sv, buf)| ShardTask {
                    sv,
                    ctx: &ctx,
                    avail: &avail,
                    buf,
                })
                .collect();
            let last = tasks.len().saturating_sub(1);
            let jobs = tasks.iter_mut().enumerate().map(|(i, t)| Job {
                run: if inject_panic && i == last {
                    run_shard_task_panicking
                } else {
                    run_shard_task
                },
                data: t as *mut ShardTask<'_, '_> as *mut (),
            });
            let wait = pool
                .run_tick(jobs, || {
                    soa::shard_phase_a(&mut sv0, &ctx, &avail, &mut buf0[0])
                })
                .map_err(|p| SimError::ShardPanic {
                    // Worker k owns shard k + 1 (shard 0 is the host).
                    shard: p.worker + 1,
                    message: p.message,
                })?;
            self.pool_ticks += 1;
            self.pool_wait_nanos += wait;
            return Ok(wait);
        }
        // Reference lifecycle (`ShardExec::Spawn`, or pool creation
        // failed): fresh scoped threads every tick. Spawn-issue overhead
        // is measured unconditionally (two timestamps per sharded tick):
        // it is the baseline the pool is gated against, reported via the
        // timing sidecar.
        let mut spawn_ns = 0u64;
        std::thread::scope(|scope| {
            let ctx = &ctx;
            let avail = &avail;
            let mut bufs = shard_bufs.iter_mut();
            let mut shard0 = None;
            let t0 = Instant::now();
            for (i, mut sv) in views.into_iter().enumerate() {
                let buf = bufs.next().expect("one buffer per shard");
                if i == 0 {
                    // The calling thread runs shard 0 itself.
                    shard0 = Some((sv, buf));
                } else {
                    scope.spawn(move || soa::shard_phase_a(&mut sv, ctx, avail, buf));
                }
            }
            spawn_ns = t0.elapsed().as_nanos() as u64;
            let (mut sv, buf) = shard0.expect("at least one shard");
            soa::shard_phase_a(&mut sv, ctx, avail, buf);
        });
        self.spawn_count += shards as u64 - 1;
        self.spawn_nanos += spawn_ns;
        Ok(0)
    }

    /// Creates (or re-creates) the persistent pool for `workers` shard
    /// threads. A creation failure is not fatal: the tick falls back to
    /// per-tick scoped spawns and retries pool creation next tick.
    fn ensure_pool(&mut self, workers: usize) {
        if self.pool.as_ref().is_some_and(|p| p.workers() == workers) {
            return;
        }
        self.pool = None;
        if let Ok((pool, spawn_ns)) = ShardPool::new(workers) {
            self.spawn_count += workers as u64;
            self.spawn_nanos += spawn_ns;
            self.pool = Some(pool);
        }
    }

    /// Applies every shard's phase-A outcome serially, shard-ascending (=
    /// router-index order, reproducing the reference kernel's event order
    /// and state updates exactly), sub-phase by sub-phase.
    fn soa_commit(&mut self, now: Cycle) {
        let link = self.cfg.link_latency as Cycle;
        let check = self.cfg.watchdog.invariant_checks;
        let mut bufs = std::mem::take(&mut self.shard_bufs);
        // --- 1. flit deliveries ------------------------------------------
        for buf in &mut bufs {
            self.moved |= buf.moved;
            if check && self.violation.is_none() {
                if let Some(router) = buf.violation {
                    self.violation =
                        Some(InvariantViolation::FlitIntoOffRouter { cycle: now, router });
                }
            }
            for ha in buf.head_arrivals.drain(..) {
                if ha.counted_hop {
                    self.packets
                        .get_mut(&ha.packet.0)
                        .expect("meta exists while in flight")
                        .hops += 1;
                }
                self.events.push(PmEvent::HeadArrival {
                    router: ha.router,
                    dst: ha.dst,
                });
            }
            for &i in &buf.newly_occ {
                self.soa.occ.set(i);
            }
            for &i in &buf.flit_clear {
                self.soa.flit_pend.clear(i);
            }
        }
        // --- 2. credit deliveries ----------------------------------------
        for buf in &bufs {
            self.credits_in_flight -= buf.credits_delivered;
            for &i in &buf.credit_clear {
                self.soa.credit_pend.clear(i);
            }
        }
        // --- 3. allocation outcomes --------------------------------------
        for buf in &mut bufs {
            for (idx, outcome) in buf.alloc.drain(..) {
                let here = NodeId(idx as u16);
                for b in outcome.pg_blocked {
                    let d = b
                        .next_router_port
                        .direction()
                        .expect("PG can only block link ports");
                    let next = self
                        .view
                        .topo
                        .neighbor(here, d)
                        .expect("blocked port has a neighbor");
                    self.events.push(PmEvent::BlockedNeed { router: next });
                    if let Some(meta) = self.packets.get_mut(&b.packet.0) {
                        meta.wakeup_wait += 1;
                        if meta.blocked_on != Some(next) {
                            meta.blocked_on = Some(next);
                            meta.pg_encounters += 1;
                        }
                    }
                }
                for dep in outcome.departures {
                    self.moved = true;
                    self.credits_in_flight += 1;
                    match dep.in_port {
                        Port::Local => {
                            self.ni_credit_in[idx].push_at(dep.in_vc, now + 1 + link);
                            self.soa.credit_pend.set(idx);
                        }
                        Port::Link(d) => {
                            let up = self
                                .view
                                .topo
                                .neighbor(here, d)
                                .expect("flits only arrive over real links");
                            self.credit_in[up.index()][Port::Link(d.opposite())]
                                .push_at(dep.in_vc, now + 1 + link);
                            self.soa.credit_pend.set(up.index());
                        }
                    }
                    match dep.out_port {
                        Port::Local => {
                            self.eject_in[idx].push_at(dep.flit, now + 2);
                            self.soa.eject_pend.set(idx);
                        }
                        Port::Link(d) => {
                            let next = self
                                .view
                                .topo
                                .neighbor(here, d)
                                .expect("allocation never targets a mesh edge");
                            let mut flit = dep.flit;
                            flit.route_port = match self.view.direction(next, flit.dst) {
                                Some(nd) => Port::Link(nd),
                                None => Port::Local,
                            };
                            self.stats.link_traversals += 1;
                            self.flit_in[next.index()][Port::Link(d.opposite())]
                                .push_at(flit, now + 2 + link);
                            self.soa.flit_pend.set(next.index());
                        }
                    }
                }
            }
            for &i in &buf.alloc_empty {
                self.soa.occ.clear(i);
            }
        }
        // --- 4. ejections ------------------------------------------------
        for buf in &mut bufs {
            self.ni_flits += buf.ejected_flits;
            for (idx, done) in buf.completions.drain(..) {
                let meta = self
                    .packets
                    .remove(&done.0)
                    .expect("completed packet has meta");
                if let Some(s) = self.sink.as_mut() {
                    s.record(
                        now,
                        &Event::Deliver {
                            packet: done.0,
                            src: meta.message.src,
                            dst: meta.message.dst,
                            latency: now.saturating_sub(meta.ni_enqueue),
                        },
                    );
                }
                self.conserv_delivered += meta.len_flits as u64;
                self.conserv_in_flight =
                    self.conserv_in_flight.saturating_sub(meta.len_flits as u64);
                if let Some(t) = self.trace.as_mut() {
                    t.push(PacketRecord::from_meta(done, &meta, now));
                }
                if meta.measured {
                    self.stats.packets_delivered += 1;
                    self.stats.flits_delivered += meta.len_flits as u64;
                    self.stats.latency.record((now - meta.ni_enqueue) as f64);
                    self.stats.latency_hist.record(now - meta.ni_enqueue);
                    self.stats
                        .net_latency
                        .record(now.saturating_sub(meta.inject) as f64);
                    self.stats.hops.record(meta.hops as f64);
                    self.stats.pg_encounters.record(meta.pg_encounters as f64);
                    self.stats.wakeup_wait.record(meta.wakeup_wait as f64);
                }
                self.outbox[idx].push(meta.message);
                self.outbox_pending += 1;
            }
            for &i in &buf.eject_clear {
                // Phase A saw the pipe drain, but this commit's allocation
                // step (above) may have pushed a fresh ejection into it;
                // only clear if it is still empty.
                if self.eject_in[i].is_empty() {
                    self.soa.eject_pend.clear(i);
                }
            }
        }
        // --- 5. injections -----------------------------------------------
        for buf in &mut bufs {
            for r in buf.inject.drain(..) {
                let node = NodeId(r.idx as u16);
                for (_pkt, dst) in r.newly_ready {
                    self.events.push(PmEvent::NiReadyToInject { node, dst });
                }
                for pkt in r.blocked_on_local {
                    self.events.push(PmEvent::BlockedNeed { router: node });
                    if let Some(meta) = self.packets.get_mut(&pkt.0) {
                        meta.wakeup_wait += 1;
                        if meta.blocked_on != Some(node) {
                            meta.blocked_on = Some(node);
                            meta.pg_encounters += 1;
                        }
                    }
                }
                if let Some(pkt) = r.head_injected {
                    if let Some(meta) = self.packets.get_mut(&pkt.0) {
                        meta.inject = now;
                    }
                }
                if r.sent {
                    self.ni_flits += 1;
                    self.moved = true;
                    // Phase A already pushed the flit into the (shard-own)
                    // local pipe; only the global index bits remain.
                    self.soa.flit_pend.set(r.idx);
                    if r.mid_after {
                        self.soa.ni_mid.set(r.idx);
                    } else {
                        self.soa.ni_mid.clear(r.idx);
                    }
                }
                if !r.pending_after {
                    self.soa.ni_pend.clear(r.idx);
                }
            }
        }
        self.shard_bufs = bufs;
    }

    /// `power_tick` with idleness derived from the SoA words: a router is
    /// idle iff its occupancy, inbound-flit and NI-mid-packet bits are all
    /// clear — exactly the struct path's per-router predicate.
    fn power_tick_soa(&mut self, now: Cycle) {
        self.idle_scratch.clear();
        let n = self.routers.len();
        if self.packets.is_empty() {
            self.idle_scratch.resize(n, true);
        } else {
            let occ = self.soa.occ.words();
            let flit = self.soa.flit_pend.words();
            let mid = self.soa.ni_mid.words();
            self.idle_scratch.extend(
                (0..n).map(|i| (occ[i / 64] | flit[i / 64] | mid[i / 64]) >> (i % 64) & 1 == 0),
            );
        }
        self.power_tick_finish(now);
    }

    /// `true` when nothing can change network state before new host input:
    /// no packets anywhere between NI enqueue and tail ejection (which
    /// implies every router datapath and NI queue is empty), no buffered
    /// power-manager events, no punch signals sweeping the sideband fabric,
    /// and no latched invariant violation. Credits still in flight are
    /// allowed: a late pop delivers them unchanged and nothing reads the
    /// upstream counters they restore until the next flit exists.
    ///
    /// All four checks are O(1).
    pub fn quiescent(&self) -> bool {
        self.packets.is_empty()
            && self.events.is_empty()
            && self.violation.is_none()
            && self.pm.pending_punches() == 0
    }

    /// The network's event horizon: the earliest cycle at which observable
    /// state can change without new host input. `Some(cycle())` while
    /// non-quiescent; the power manager's own horizon while quiescent;
    /// `None` when nothing will ever change (e.g. every router off).
    pub fn next_event_at(&self) -> Option<Cycle> {
        if !self.quiescent() {
            return Some(self.cycle);
        }
        self.pm.next_event_at(self.cycle)
    }

    /// Advances the clock over the quiescent span `[cycle, cycle + span)`
    /// in one bulk power-manager update. Caller must have checked
    /// [`Network::quiescent`] and that no event sink is attached (per-cycle
    /// transition recording needs the per-cycle path).
    fn fast_forward(&mut self, span: u64) {
        self.mark(Phase::Host);
        debug_assert!(self.quiescent() && self.sink.is_none());
        debug_assert!(self
            .routers
            .iter()
            .all(crate::router::Router::datapath_empty));
        let from = self.cycle;
        let to = from + span;
        self.idle_scratch.clear();
        self.idle_scratch.resize(self.routers.len(), true);
        self.pm.tick_quiet(
            from,
            to,
            IdleInfo {
                idle: &self.idle_scratch,
            },
        );
        self.cycle = to;
        // The per-cycle path refreshes `last_progress` every cycle while no
        // packets are in flight; mirror its final value so stall detection
        // sees no phantom gap across the jump.
        self.last_progress = to - 1;
        self.mark(Phase::FastForward);
    }

    /// `true` when `run`/`run_hooked` may skip ahead right now.
    fn may_fast_forward(&self) -> bool {
        self.tick_mode == TickMode::Fast && self.sink.is_none() && self.quiescent()
    }

    /// Runs `n` cycles, stopping at the first error.
    ///
    /// In [`TickMode::Fast`] (the default), quiescent stretches are skipped
    /// in O(1): once [`Network::quiescent`] holds, the rest of the span is
    /// handed to [`PowerManager::tick_quiet`] in one call. With a
    /// [`TickMode::Naive`] network, or while an event sink is attached
    /// (per-cycle transition recording), every cycle ticks individually.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Network::tick`].
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        let mut left = n;
        while left > 0 {
            if self.may_fast_forward() {
                self.fast_forward(left);
                return Ok(());
            }
            self.tick()?;
            left -= 1;
        }
        Ok(())
    }

    /// Runs `n` cycles like [`Network::run`], invoking `hook` after every
    /// `every` cycles (and once more after the final cycle, if it did not
    /// land on a multiple). Campaign runners use this for per-run progress
    /// and wall-clock throughput sampling without instrumenting `tick`.
    ///
    /// Fast-forward jumps are capped at hook boundaries, so the hook fires
    /// at exactly the same cycles as in [`TickMode::Naive`] — samplers see
    /// identical interval timestamps either way.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroHookPeriod`] if `every` is zero
    /// (a hook that can never fire; previously this panicked, which is the
    /// wrong failure mode for a value that typically arrives from campaign
    /// configuration). Otherwise propagates the first error from
    /// [`Network::tick`]; the hook does not run for the failing window.
    pub fn run_hooked(
        &mut self,
        n: u64,
        every: u64,
        hook: &mut dyn FnMut(&Network),
    ) -> Result<(), SimError> {
        if every == 0 {
            return Err(SimError::Config(ConfigError::ZeroHookPeriod));
        }
        let mut i = 0;
        while i < n {
            if self.may_fast_forward() {
                // Skip to the next hook boundary (or the end of the span).
                let span = (every - i % every).min(n - i);
                self.fast_forward(span);
                i += span;
            } else {
                self.tick()?;
                i += 1;
            }
            if i % every == 0 {
                hook(self);
            }
        }
        if n % every != 0 {
            hook(self);
        }
        Ok(())
    }

    /// Ends the warm-up window: zeroes all statistics and counters; packets
    /// currently in flight are excluded from delivered-packet statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.ni_flits = 0;
        self.injected_flits = 0;
        self.spawn_count = 0;
        self.spawn_nanos = 0;
        self.pool_ticks = 0;
        self.pool_wait_nanos = 0;
        if let Some(pr) = self.profiler.as_mut() {
            pr.reset();
        }
        for meta in self.packets.values_mut() {
            meta.measured = false;
        }
        for r in &mut self.routers {
            r.activity.reset();
        }
        self.pm.reset_counters();
        self.measure_start = self.cycle;
    }

    /// Snapshot of statistics, activity and power-gating counters for the
    /// measured window.
    pub fn report(&self) -> NetworkReport {
        let mut activity = RouterActivity::default();
        for r in &self.routers {
            activity.merge(&r.activity);
        }
        let cycles = self.cycle - self.measure_start;
        let denom = cycles as f64 * self.view.topo.nodes() as f64;
        NetworkReport {
            scheme: self.pm.kind(),
            routers: self.view.topo.nodes(),
            cycles,
            stats: self.stats.clone(),
            activity,
            pg: self.pm.counters().clone(),
            ni_flits: self.ni_flits,
            offered_load: if cycles == 0 {
                0.0
            } else {
                self.injected_flits as f64 / denom
            },
        }
    }

    fn deliver_flits(&mut self, now: Cycle) {
        if self.packets.is_empty() {
            return; // flits only exist while their packet is in flight
        }
        let check = self.cfg.watchdog.invariant_checks;
        for idx in 0..self.routers.len() {
            for port in Port::ALL {
                while let Some(flit) = self.flit_in[idx][port].pop_ready(now) {
                    self.moved = true;
                    if check
                        && self.violation.is_none()
                        && self.pm.state(NodeId(idx as u16)) == PowerState::Off
                    {
                        self.violation = Some(InvariantViolation::FlitIntoOffRouter {
                            cycle: now,
                            router: NodeId(idx as u16),
                        });
                    }
                    if flit.kind.is_head() {
                        let meta = self
                            .packets
                            .get_mut(&flit.packet.0)
                            .expect("meta exists while in flight");
                        if port != Port::Local {
                            meta.hops += 1;
                        }
                        self.events.push(PmEvent::HeadArrival {
                            router: NodeId(idx as u16),
                            dst: flit.dst,
                        });
                    }
                    self.routers[idx].latch(port, flit, now);
                }
            }
        }
    }

    fn deliver_credits(&mut self, now: Cycle) {
        if self.credits_in_flight == 0 {
            return;
        }
        for idx in 0..self.routers.len() {
            for port in Port::ALL {
                while let Some(vc) = self.credit_in[idx][port].pop_ready(now) {
                    self.credits_in_flight -= 1;
                    self.routers[idx].credit(port, vc);
                }
            }
            while let Some(vc) = self.ni_credit_in[idx].pop_ready(now) {
                self.credits_in_flight -= 1;
                self.nis[idx].credit(vc);
            }
        }
    }

    fn allocate_routers(&mut self, now: Cycle) {
        if self.packets.is_empty() {
            return; // nothing buffered, queued or injectable anywhere
        }
        let link = self.cfg.link_latency as Cycle;
        for idx in 0..self.routers.len() {
            // Allocation is a pure no-op on a router with no buffered flits
            // (rotating priorities and activity counters move only on
            // grants, and an empty-but-routed VC is skipped by both
            // phases), so the scan can skip it — at low load this turns
            // the per-tick cost from O(routers) router allocations into
            // O(occupied routers).
            if self.routers[idx].datapath_empty() {
                continue;
            }
            let here = NodeId(idx as u16);
            // A flit granted SA at `now` is latched downstream at
            // `now + 2 + link`; the downstream router only needs to be on
            // by then, so the tail of its wakeup overlaps flit transit.
            let arrival = now + 2 + link;
            let down_on = PortMap::from_fn(|p| match p {
                Port::Local => true,
                Port::Link(d) => self
                    .view
                    .topo
                    .neighbor(here, d)
                    .is_some_and(|n| self.pm.is_available(n, arrival)),
            });
            let outcome = self.routers[idx].allocate(now, &down_on);
            for b in outcome.pg_blocked {
                let d = b
                    .next_router_port
                    .direction()
                    .expect("PG can only block link ports");
                let next = self
                    .view
                    .topo
                    .neighbor(here, d)
                    .expect("blocked port has a neighbor");
                self.events.push(PmEvent::BlockedNeed { router: next });
                if let Some(meta) = self.packets.get_mut(&b.packet.0) {
                    meta.wakeup_wait += 1;
                    // Figure 9: count each blocking router once per packet
                    // encounter.
                    if meta.blocked_on != Some(next) {
                        meta.blocked_on = Some(next);
                        meta.pg_encounters += 1;
                    }
                }
            }
            for dep in outcome.departures {
                self.moved = true;
                // Credit back to the upstream of the input the flit vacated.
                self.credits_in_flight += 1;
                match dep.in_port {
                    Port::Local => {
                        self.ni_credit_in[idx].push_at(dep.in_vc, now + 1 + link);
                    }
                    Port::Link(d) => {
                        let up = self
                            .view
                            .topo
                            .neighbor(here, d)
                            .expect("flits only arrive over real links");
                        self.credit_in[up.index()][Port::Link(d.opposite())]
                            .push_at(dep.in_vc, now + 1 + link);
                    }
                }
                match dep.out_port {
                    Port::Local => {
                        self.eject_in[idx].push_at(dep.flit, now + 2);
                    }
                    Port::Link(d) => {
                        let next = self
                            .view
                            .topo
                            .neighbor(here, d)
                            .expect("allocation never targets a mesh edge");
                        let mut flit = dep.flit;
                        // Look-ahead routing: compute the output port this
                        // flit will request at `next`.
                        flit.route_port = match self.view.direction(next, flit.dst) {
                            Some(nd) => Port::Link(nd),
                            None => Port::Local,
                        };
                        self.stats.link_traversals += 1;
                        self.flit_in[next.index()][Port::Link(d.opposite())]
                            .push_at(flit, now + 2 + link);
                    }
                }
            }
        }
    }

    fn deliver_ejections(&mut self, now: Cycle) {
        if self.packets.is_empty() {
            return; // ejection pipes only carry flits of in-flight packets
        }
        for idx in 0..self.nis.len() {
            while let Some(flit) = self.eject_in[idx].pop_ready(now) {
                self.ni_flits += 1;
                self.moved = true;
                if let Some(done) = self.nis[idx].eject(&flit) {
                    let meta = self
                        .packets
                        .remove(&done.0)
                        .expect("completed packet has meta");
                    if let Some(s) = self.sink.as_mut() {
                        s.record(
                            now,
                            &Event::Deliver {
                                packet: done.0,
                                src: meta.message.src,
                                dst: meta.message.dst,
                                latency: now.saturating_sub(meta.ni_enqueue),
                            },
                        );
                    }
                    self.conserv_delivered += meta.len_flits as u64;
                    self.conserv_in_flight =
                        self.conserv_in_flight.saturating_sub(meta.len_flits as u64);
                    if let Some(t) = self.trace.as_mut() {
                        t.push(PacketRecord::from_meta(done, &meta, now));
                    }
                    if meta.measured {
                        self.stats.packets_delivered += 1;
                        self.stats.flits_delivered += meta.len_flits as u64;
                        self.stats.latency.record((now - meta.ni_enqueue) as f64);
                        self.stats.latency_hist.record(now - meta.ni_enqueue);
                        self.stats
                            .net_latency
                            .record(now.saturating_sub(meta.inject) as f64);
                        self.stats.hops.record(meta.hops as f64);
                        self.stats.pg_encounters.record(meta.pg_encounters as f64);
                        self.stats.wakeup_wait.record(meta.wakeup_wait as f64);
                    }
                    self.outbox[idx].push(meta.message);
                    self.outbox_pending += 1;
                }
            }
        }
    }

    fn inject_from_nis(&mut self, now: Cycle) {
        if self.packets.is_empty() {
            return; // every queued or mid-flight NI packet is in the map
        }
        let link = self.cfg.link_latency as Cycle;
        for idx in 0..self.nis.len() {
            let node = NodeId(idx as u16);
            // An NI flit sent at `now` latches into the local router at
            // `now + 1 + link`: the local router's wakeup tail overlaps.
            let router_on = self.pm.is_available(node, now + 1 + link);
            let outcome = self.nis[idx].tick_inject(now, router_on);
            for (pkt, dst) in outcome.newly_ready {
                self.events.push(PmEvent::NiReadyToInject { node, dst });
                let _ = pkt;
            }
            for pkt in outcome.blocked_on_local {
                self.events.push(PmEvent::BlockedNeed { router: node });
                if let Some(meta) = self.packets.get_mut(&pkt.0) {
                    meta.wakeup_wait += 1;
                    if meta.blocked_on != Some(node) {
                        meta.blocked_on = Some(node);
                        meta.pg_encounters += 1;
                    }
                }
            }
            if let Some(pkt) = outcome.head_injected {
                if let Some(meta) = self.packets.get_mut(&pkt.0) {
                    meta.inject = now;
                }
            }
            if let Some(flit) = outcome.sent {
                self.ni_flits += 1;
                self.moved = true;
                self.flit_in[idx][Port::Local].push_at(flit, now + 1 + link);
            }
        }
    }

    fn power_tick(&mut self, now: Cycle) {
        self.idle_scratch.clear();
        if self.packets.is_empty() {
            // No packet in flight means no flit, NI work or inbound wire
            // anywhere: idleness is uniformly true without the scan.
            self.idle_scratch.resize(self.routers.len(), true);
        } else {
            for idx in 0..self.routers.len() {
                self.idle_scratch.push(
                    self.routers[idx].datapath_empty()
                        && !self.nis[idx].mid_packet()
                        && Port::ALL.iter().all(|&p| self.flit_in[idx][p].is_empty()),
                );
            }
        }
        self.power_tick_finish(now);
    }

    /// Sink mirroring, the power-manager tick against the filled
    /// `idle_scratch`, and transition recording — shared by both kernels'
    /// power phases.
    fn power_tick_finish(&mut self, now: Cycle) {
        if let Some(sink) = self.sink.as_mut() {
            // Mirror this cycle's PM events into the structured trace before
            // the manager consumes them. `HeadArrival` is skipped: it fires
            // for every hop of every packet and carries no power-gating
            // decision by itself (punch emission is traced by the manager).
            for ev in &self.events {
                let obs_ev = match *ev {
                    PmEvent::HeadArrival { .. } => continue,
                    PmEvent::BlockedNeed { router } => Event::WuAssert { router },
                    PmEvent::NiMessageKnown { node, dst } => Event::Slack1 { node, dst },
                    PmEvent::FutureInjection { node } => Event::Slack2 { node },
                    PmEvent::NiReadyToInject { node, dst } => Event::NiReady { node, dst },
                };
                sink.record(now, &obs_ev);
            }
        }
        self.pm.tick(
            now,
            &self.events,
            IdleInfo {
                idle: &self.idle_scratch,
            },
        );
        self.events.clear();
        if self.sink.is_some() {
            self.record_power_transitions(now);
        }
    }

    /// Diffs every router's power tag against the shadow copy, recording
    /// [`Event::Power`] transitions and [`Event::BetEpoch`] ends, then pulls
    /// the manager's own buffered trace (punch emissions, faults). Only
    /// called while a sink is attached.
    fn record_power_transitions(&mut self, now: Cycle) {
        let sink = self.sink.as_mut().expect("caller checked");
        for idx in 0..self.power_shadow.len() {
            let tag = self.pm.state(NodeId(idx as u16)).tag();
            let prev = self.power_shadow[idx];
            if tag == prev {
                continue;
            }
            let router = NodeId(idx as u16);
            sink.record(
                now,
                &Event::Power {
                    router,
                    from: prev,
                    to: tag,
                },
            );
            if prev == PowerTag::Off {
                sink.record(
                    now,
                    &Event::BetEpoch {
                        router,
                        off_cycles: now.saturating_sub(self.off_since[idx]),
                    },
                );
            }
            if tag == PowerTag::Off {
                self.off_since[idx] = now;
            }
            self.power_shadow[idx] = tag;
        }
        for st in self.pm.drain_trace() {
            sink.record(st.cycle, &st.event);
        }
    }

    /// Tracks per-router `BlockedNeed` streaks and force-wakes any router
    /// whose sleep gate has ignored the level-signaled WU handshake for
    /// [`WatchdogConfig::escalate_after`] consecutive cycles. Runs before
    /// `power_tick` so the streak scan sees this cycle's events.
    fn watchdog_escalate(&mut self, now: Cycle) {
        // Common cycle: no blocked wakeups now and none outstanding — the
        // whole streak scan is a no-op.
        if self.events.is_empty() && !self.any_streak {
            return;
        }
        let after = self.cfg.watchdog.escalate_after;
        let n = self.blocked_streak.len();
        // A bitset would be overkill: meshes are <= a few hundred routers.
        self.seen_scratch.clear();
        self.seen_scratch.resize(n, false);
        for ev in &self.events {
            if let PmEvent::BlockedNeed { router } = ev {
                self.seen_scratch[router.index()] = true;
            }
        }
        let mut any = false;
        for idx in 0..n {
            if !self.seen_scratch[idx] {
                self.blocked_streak[idx] = 0;
                continue;
            }
            self.blocked_streak[idx] += 1;
            if after > 0 && self.blocked_streak[idx] >= after {
                self.pm.force_wake(NodeId(idx as u16), now);
                if let Some(s) = self.sink.as_mut() {
                    s.record(
                        now,
                        &Event::ForceWake {
                            router: NodeId(idx as u16),
                        },
                    );
                }
                self.blocked_streak[idx] = 0;
            }
            any |= self.blocked_streak[idx] > 0;
        }
        self.any_streak = any;
    }

    /// End-of-tick invariant and progress checks.
    fn watchdog_check(&mut self, now: Cycle) -> Result<(), SimError> {
        if self.cfg.watchdog.invariant_checks {
            if let Some(v) = &self.violation {
                return Err(SimError::Invariant(v.clone()));
            }
            if self.conserv_injected != self.conserv_delivered + self.conserv_in_flight {
                let v = InvariantViolation::FlitConservation {
                    cycle: now,
                    injected: self.conserv_injected,
                    delivered: self.conserv_delivered,
                    in_flight: self.conserv_in_flight,
                };
                self.violation = Some(v.clone());
                return Err(SimError::Invariant(v));
            }
        }
        if self.moved || self.packets.is_empty() {
            self.last_progress = now;
            return Ok(());
        }
        let threshold = self.cfg.watchdog.stall_threshold;
        let stalled_for = now.saturating_sub(self.last_progress);
        if threshold == 0 || stalled_for < threshold {
            return Ok(());
        }
        if let Some(s) = self.sink.as_mut() {
            s.record(
                now,
                &Event::Stall {
                    stalled_for,
                    in_flight: self.packets.len() as u64,
                },
            );
        }
        let report = self.stall_report(now, stalled_for);
        // Re-arm so a caller that deliberately keeps ticking gets one
        // report per threshold window rather than one per cycle.
        self.last_progress = now;
        Err(SimError::Stall(Box::new(report)))
    }

    /// Snapshot of everything needed to diagnose a wedged network.
    fn stall_report(&self, now: Cycle, stalled_for: Cycle) -> StallReport {
        let mut off_routers = Vec::new();
        let mut waking_routers = Vec::new();
        for id in self.view.topo.iter_nodes() {
            match self.pm.state(id) {
                PowerState::Off => off_routers.push(id),
                PowerState::WakingUp { .. } => waking_routers.push(id),
                PowerState::On => {}
            }
        }
        let oldest_blocked = self
            .packets
            .iter()
            .min_by_key(|(id, meta)| (meta.ni_enqueue, **id))
            .map(|(id, meta)| BlockedPacket {
                packet: PacketId(*id),
                age: now.saturating_sub(meta.ni_enqueue),
                blocked_on: meta.blocked_on,
            });
        // Dump the flight-recorder tail: the cycle-by-cycle story of what
        // the network tried (and failed) to do leading up to the stall.
        const MAX_STALL_EVENTS: usize = 32;
        let last_events = self
            .sink
            .as_ref()
            .map(|s| {
                let all = s.snapshot();
                let skip = all.len().saturating_sub(MAX_STALL_EVENTS);
                all[skip..].iter().map(|st| st.to_string()).collect()
            })
            .unwrap_or_default();
        StallReport {
            cycle: now,
            stalled_for,
            in_flight_packets: self.packets.len(),
            off_routers,
            waking_routers,
            oldest_blocked,
            pending_punches: self.pm.pending_punches(),
            last_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::AlwaysOn;
    use punchsim_types::VnetId;

    fn msg(src: u16, dst: u16, class: MsgClass) -> Message {
        Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class,
            payload: (src as u64) << 32 | dst as u64,
            gen_cycle: 0,
        }
    }

    fn net() -> Network {
        let cfg = NocConfig::default();
        let pm = Box::new(AlwaysOn::new(cfg.topology.nodes()));
        Network::new(&cfg, pm).unwrap()
    }

    #[test]
    fn single_control_packet_zero_load_latency() {
        let mut n = net();
        // R0 -> R3: 3 hops, 3-stage pipeline, link latency 1, NI latency 3.
        n.send(msg(0, 3, MsgClass::Control)).unwrap();
        n.run(40).unwrap();
        assert_eq!(n.take_delivered(NodeId(3)).len(), 1);
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 1);
        // enqueue t=0, ready t=3, sent t=3, latch R0 t=5, per hop 4 cycles,
        // latch R3 at 5+12... wait: R0 is hop 0. R0 SA t=6, latch R1 t=9,
        // latch R2 t=13, latch R3 t=17, SA t=18, eject t=20.
        assert_eq!(r.stats.latency.mean(), 20.0);
        assert_eq!(r.stats.hops.mean(), 3.0);
        assert_eq!(r.stats.pg_encounters.mean(), 0.0);
        assert_eq!(r.stats.wakeup_wait.mean(), 0.0);
    }

    #[test]
    fn data_packet_serialization_latency() {
        let mut n = net();
        // 5-flit packet to a neighbour: tail trails head by 4 cycles.
        n.send(msg(0, 1, MsgClass::Data)).unwrap();
        n.run(40).unwrap();
        assert_eq!(n.take_delivered(NodeId(1)).len(), 1);
        let r = n.report();
        // Head: enqueue 0, sent 3, latch R0 @5, SA @6, latch R1 @9, SA @10,
        // eject @12. The 3-flit VC depth throttles the stream through the
        // NI->R0 and R0->R1 credit loops (credits take 2 cycles to return),
        // so the tail is sent @9, forwarded by R0 @13 after the credit from
        // R1 arrives, latched @16, and ejected @19.
        assert_eq!(r.stats.latency.mean(), 19.0);
    }

    #[test]
    fn local_delivery_goes_through_local_router() {
        let mut n = net();
        n.send(msg(5, 5, MsgClass::Control)).unwrap();
        n.run(20).unwrap();
        let got = n.take_delivered(NodeId(5));
        assert_eq!(got.len(), 1);
        let r = n.report();
        assert_eq!(r.stats.hops.mean(), 0.0);
        // enqueue 0, sent 3, latch 5, SA 6, eject 8.
        assert_eq!(r.stats.latency.mean(), 8.0);
    }

    #[test]
    fn many_random_packets_all_delivered() {
        use punchsim_types::SimRng;
        let mut rng = SimRng::seed_from_u64(42);
        let mut n = net();
        let mut expected = vec![0usize; 64];
        for i in 0..300 {
            let src = rng.random_range(0..64u16);
            let dst = rng.random_range(0..64u16);
            let class = if i % 3 == 0 {
                MsgClass::Data
            } else {
                MsgClass::Control
            };
            let mut m = msg(src, dst, class);
            m.vnet = VnetId(rng.random_range(0..3u8));
            n.send(m).unwrap();
            expected[dst as usize] += 1;
            if i % 2 == 0 {
                n.tick().unwrap();
            }
        }
        // Drain.
        for _ in 0..2000 {
            n.tick().unwrap();
            if n.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(n.in_flight(), 0, "all packets must drain");
        for d in 0..64u16 {
            assert_eq!(
                n.take_delivered(NodeId(d)).len(),
                expected[d as usize],
                "node {d}"
            );
        }
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 300);
        assert!(r.stats.latency.mean() > 0.0);
    }

    #[test]
    fn four_stage_pipeline_adds_one_cycle_per_hop() {
        let cfg = NocConfig {
            router_stages: 4,
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOn::new(cfg.topology.nodes()));
        let mut n = Network::new(&cfg, pm).unwrap();
        n.send(msg(0, 3, MsgClass::Control)).unwrap();
        n.run(50).unwrap();
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 1);
        // 4 routers on the path (R0..R3) each add one extra cycle vs the
        // 3-stage case: 20 + 4 = 24.
        assert_eq!(r.stats.latency.mean(), 24.0);
    }

    #[test]
    fn run_hooked_fires_per_window_and_at_end() {
        let mut n = net();
        let mut cycles_seen = Vec::new();
        n.run_hooked(25, 10, &mut |net| cycles_seen.push(net.cycle()))
            .unwrap();
        assert_eq!(cycles_seen, vec![10, 20, 25]);
        let mut exact = Vec::new();
        n.run_hooked(20, 10, &mut |net| exact.push(net.cycle()))
            .unwrap();
        assert_eq!(exact, vec![35, 45]);
    }

    #[test]
    fn reset_stats_excludes_warmup() {
        let mut n = net();
        n.send(msg(0, 7, MsgClass::Control)).unwrap();
        n.run(5).unwrap();
        n.reset_stats();
        n.run(60).unwrap();
        let r = n.report();
        // The warm-up packet completed but is not measured.
        assert_eq!(r.stats.packets_delivered, 0);
        assert_eq!(n.take_delivered(NodeId(7)).len(), 1);
    }

    #[test]
    fn determinism_same_seedless_run() {
        let run = || {
            let mut n = net();
            for i in 0..50u16 {
                n.send(msg(i % 64, (i * 7 + 3) % 64, MsgClass::Data))
                    .unwrap();
                n.tick().unwrap();
            }
            n.run(1500).unwrap();
            let r = n.report();
            (
                r.stats.packets_delivered,
                r.stats.latency.mean(),
                r.stats.hops.mean(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn future_injection_notice_rejects_out_of_range_node() {
        let mut n = net();
        let err = n.notify_future_injection(NodeId(200)).unwrap_err();
        assert!(matches!(
            err,
            SimError::NodeOutOfRange {
                node: NodeId(200),
                nodes: 64
            }
        ));
        // An in-range notice is accepted and leaves the network clean.
        n.notify_future_injection(NodeId(5)).unwrap();
        n.run(10).unwrap();
    }

    #[test]
    fn hooked_run_rejects_zero_period() {
        let mut n = net();
        let err = n.run_hooked(10, 0, &mut |_| {}).unwrap_err();
        assert!(matches!(err, SimError::Config(ConfigError::ZeroHookPeriod)));
    }

    #[test]
    fn send_rejects_out_of_range_node_and_vnet() {
        let mut n = net();
        let err = n.send(msg(0, 200, MsgClass::Control)).unwrap_err();
        assert!(matches!(
            err,
            SimError::NodeOutOfRange {
                node: NodeId(200),
                nodes: 64
            }
        ));
        let mut m = msg(0, 1, MsgClass::Control);
        m.vnet = VnetId(9);
        let err = n.send(m).unwrap_err();
        assert!(matches!(err, SimError::VnetOutOfRange { vnets: 3, .. }));
        // Nothing was enqueued; the network stays clean.
        assert_eq!(n.in_flight(), 0);
        n.run(100).unwrap();
    }

    /// A wedged gate: every router permanently off, ignoring all wakeups.
    /// Models a faulty sleep controller for watchdog tests.
    struct AlwaysOff {
        counters: crate::power::PgCounters,
    }

    impl PowerManager for AlwaysOff {
        fn kind(&self) -> punchsim_types::SchemeKind {
            punchsim_types::SchemeKind::ConvPg
        }
        fn state(&self, _r: NodeId) -> PowerState {
            PowerState::Off
        }
        fn tick(&mut self, _cycle: Cycle, _events: &[PmEvent], _idle: IdleInfo<'_>) {}
        fn counters(&self) -> &crate::power::PgCounters {
            &self.counters
        }
        fn reset_counters(&mut self) {
            self.counters.reset();
        }
        // Deliberately does NOT implement force_wake: escalation has no
        // effect, so only the stall watchdog can surface the wedge.
    }

    #[test]
    fn watchdog_reports_stall_against_wedged_router() {
        let cfg = NocConfig {
            watchdog: punchsim_types::WatchdogConfig {
                stall_threshold: 50,
                invariant_checks: true,
                escalate_after: 8,
            },
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOff {
            counters: crate::power::PgCounters::new(cfg.topology.nodes()),
        });
        let mut n = Network::new(&cfg, pm).unwrap();
        n.send(msg(0, 9, MsgClass::Control)).unwrap();
        let mut stall = None;
        for _ in 0..200 {
            match n.tick() {
                Ok(()) => {}
                Err(SimError::Stall(r)) => {
                    stall = Some(*r);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let r = stall.expect("watchdog must fire within 200 cycles");
        assert!(r.stalled_for >= 50);
        assert_eq!(r.in_flight_packets, 1);
        // Every router is off; the blocked packet names its local router R0.
        assert_eq!(r.off_routers.len(), 64);
        let oldest = r.oldest_blocked.expect("one packet is in flight");
        assert_eq!(oldest.blocked_on, Some(NodeId(0)));
        assert!(oldest.age >= 50);
    }

    #[test]
    fn stall_report_rearms_per_threshold_window() {
        let cfg = NocConfig {
            watchdog: punchsim_types::WatchdogConfig {
                stall_threshold: 30,
                invariant_checks: true,
                escalate_after: 0,
            },
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOff {
            counters: crate::power::PgCounters::new(cfg.topology.nodes()),
        });
        let mut n = Network::new(&cfg, pm).unwrap();
        n.send(msg(0, 1, MsgClass::Control)).unwrap();
        let mut stalls = 0;
        for _ in 0..200 {
            if matches!(n.tick(), Err(SimError::Stall(_))) {
                stalls += 1;
            }
        }
        // ~200 cycles / 30-cycle threshold: a handful of reports, not 170.
        assert!((2..=7).contains(&stalls), "got {stalls} stall reports");
    }

    #[test]
    fn idle_network_never_stalls() {
        let cfg = NocConfig {
            watchdog: punchsim_types::WatchdogConfig {
                stall_threshold: 5,
                invariant_checks: true,
                escalate_after: 0,
            },
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOn::new(cfg.topology.nodes()));
        let mut n = Network::new(&cfg, pm).unwrap();
        // No traffic at all: an empty network is idle, not stalled.
        n.run(500).unwrap();
    }

    #[test]
    fn sink_records_packet_and_slack_events() {
        let mut n = net();
        n.set_sink(Box::new(punchsim_obs::VecSink::new()));
        n.send(msg(0, 3, MsgClass::Control)).unwrap();
        n.run(40).unwrap();
        let sink = n.take_sink().expect("sink was attached");
        let events = sink.snapshot();
        let kinds: Vec<&str> = events.iter().map(|s| s.event.kind()).collect();
        assert!(kinds.contains(&"inject"), "{kinds:?}");
        assert!(kinds.contains(&"slack1"), "{kinds:?}");
        assert!(kinds.contains(&"ni-ready"), "{kinds:?}");
        assert!(kinds.contains(&"deliver"), "{kinds:?}");
        // Stamps are monotone non-decreasing within the recording order.
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // The deliver event carries the same latency the stats measured.
        let lat = events
            .iter()
            .find_map(|s| match s.event {
                Event::Deliver { latency, .. } => Some(latency),
                _ => None,
            })
            .expect("deliver recorded");
        assert_eq!(lat, 20);
        // Detaching turns recording back off.
        assert!(n.sink().is_none());
    }

    #[test]
    fn tracing_does_not_alter_simulation_results() {
        let run = |traced: bool| {
            let mut n = net();
            if traced {
                n.set_sink(Box::new(punchsim_obs::RingSink::new(512)));
            }
            for i in 0..50u16 {
                n.send(msg(i % 64, (i * 7 + 3) % 64, MsgClass::Data))
                    .unwrap();
                n.tick().unwrap();
            }
            n.run(1500).unwrap();
            let r = n.report();
            (r.stats.packets_delivered, r.stats.latency.mean())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stall_report_carries_flight_recorder_tail() {
        let cfg = NocConfig {
            watchdog: punchsim_types::WatchdogConfig {
                stall_threshold: 50,
                invariant_checks: true,
                escalate_after: 8,
            },
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOff {
            counters: crate::power::PgCounters::new(cfg.topology.nodes()),
        });
        let mut n = Network::new(&cfg, pm).unwrap();
        n.set_sink(Box::new(punchsim_obs::RingSink::new(64)));
        n.send(msg(0, 9, MsgClass::Control)).unwrap();
        let report = loop {
            match n.tick() {
                Ok(()) => {}
                Err(SimError::Stall(r)) => break *r,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert!(!report.last_events.is_empty());
        assert!(report.last_events.len() <= 32);
        // The tail shows the ignored WU handshake toward the wedged local
        // router — the whole point of the flight recorder.
        assert!(
            report.last_events.iter().any(|e| e.contains("WU asserted")),
            "{:?}",
            report.last_events
        );
    }

    /// Bursty traffic separated by long quiescent gaps: the fast-forward
    /// kernel must reproduce the naive per-cycle run exactly — same final
    /// cycle, same delivered counts, same latencies, same outbox.
    #[test]
    fn fast_forward_matches_naive_run() {
        let run = |mode: TickMode| {
            let mut n = net();
            n.set_tick_mode(mode);
            let mut delivered = 0usize;
            for burst in 0..3u16 {
                for i in 0..8u16 {
                    n.send(msg((burst * 11 + i) % 64, (i * 7 + 3) % 64, MsgClass::Data))
                        .unwrap();
                }
                n.run(1_000).unwrap();
                for d in 0..64u16 {
                    delivered += n.take_delivered(NodeId(d)).len();
                }
            }
            let r = n.report();
            (
                n.cycle(),
                delivered,
                r.stats.packets_delivered,
                r.stats.latency.mean().to_bits(),
                r.stats.hops.mean().to_bits(),
                r.ni_flits,
            )
        };
        assert_eq!(run(TickMode::Fast), run(TickMode::Naive));
    }

    #[test]
    fn quiescence_and_horizon_are_reported() {
        let mut n = net();
        assert!(n.quiescent());
        // AlwaysOn never changes state: the horizon is empty.
        assert_eq!(n.next_event_at(), None);
        n.send(msg(0, 3, MsgClass::Control)).unwrap();
        assert!(!n.quiescent(), "in-flight packet blocks quiescence");
        assert_eq!(n.next_event_at(), Some(n.cycle()));
        n.run(40).unwrap();
        assert!(n.quiescent(), "drained network is quiescent again");
    }

    #[test]
    fn fast_forward_advances_clock_in_one_jump() {
        let mut n = net();
        assert_eq!(n.tick_mode(), TickMode::Fast);
        n.run(1_000_000).unwrap();
        assert_eq!(n.cycle(), 1_000_000);
        // The jump must leave stall detection armed exactly like the
        // per-cycle path: traffic injected afterwards still delivers.
        n.send(msg(0, 9, MsgClass::Control)).unwrap();
        n.run(60).unwrap();
        assert_eq!(n.take_delivered(NodeId(9)).len(), 1);
    }

    #[test]
    fn new_rejects_invalid_config() {
        let cfg = NocConfig {
            link_latency: 0,
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOn::new(cfg.topology.nodes()));
        let err = Network::new(&cfg, pm).unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(punchsim_types::ConfigError::ZeroLinkLatency)
        ));
    }
}
