//! The whole-network simulation object: routers, links, NIs, and the power
//! manager, advanced one cycle at a time.

use std::collections::HashMap;

use punchsim_types::{routing, Cycle, Mesh, NocConfig, NodeId, PacketId, Port, PortMap};

use crate::flit::{Flit, Message, MsgClass, PacketMeta};
use crate::link::Pipe;
use crate::ni::Ni;
use crate::power::{IdleInfo, PmEvent, PowerManager, PowerState};
use crate::router::{Router, RouterActivity};
use crate::stats::{NetStats, NetworkReport};
use crate::trace::{PacketRecord, TraceLog};
use crate::vc::VcLayout;

/// A cycle-accurate mesh network under a pluggable power-gating scheme.
///
/// Endpoints interact through [`Network::send`] (hand a [`Message`] to a
/// node's NI), [`Network::take_delivered`] (collect messages that ejected at
/// a node), and [`Network::tick`].
///
/// # Examples
///
/// ```
/// use punchsim_noc::{Network, Message, MsgClass, AlwaysOn};
/// use punchsim_types::{NocConfig, NodeId, VnetId};
///
/// let cfg = NocConfig::default();
/// let pm = Box::new(AlwaysOn::new(cfg.mesh.nodes()));
/// let mut net = Network::new(&cfg, pm);
/// net.send(Message {
///     src: NodeId(0),
///     dst: NodeId(9),
///     vnet: VnetId(0),
///     class: MsgClass::Control,
///     payload: 42,
///     gen_cycle: 0,
/// });
/// for _ in 0..40 {
///     net.tick();
/// }
/// let got = net.take_delivered(NodeId(9));
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].payload, 42);
/// ```
pub struct Network {
    cfg: NocConfig,
    mesh: Mesh,
    cycle: Cycle,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    /// Flit pipes into router `n`, per input port (`Local` = from its NI).
    flit_in: Vec<PortMap<Pipe<Flit>>>,
    /// Credit pipes into router `n`, per *output* port.
    credit_in: Vec<PortMap<Pipe<usize>>>,
    /// Credit pipes into NI `n` (for the local input port of its router).
    ni_credit_in: Vec<Pipe<usize>>,
    /// Ejected-flit pipes into NI `n`.
    eject_in: Vec<Pipe<Flit>>,
    packets: HashMap<u64, PacketMeta>,
    next_packet: u64,
    pm: Box<dyn PowerManager>,
    events: Vec<PmEvent>,
    stats: NetStats,
    outbox: Vec<Vec<Message>>,
    ni_flits: u64,
    injected_flits: u64,
    measure_start: Cycle,
    trace: Option<TraceLog>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("cycle", &self.cycle)
            .field("scheme", &self.pm.kind())
            .field("nodes", &self.mesh.nodes())
            .field("in_flight_packets", &self.packets.len())
            .finish()
    }
}

impl Network {
    /// Builds the network described by `cfg` under power manager `pm`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: &NocConfig, pm: Box<dyn PowerManager>) -> Self {
        cfg.validate().expect("invalid NocConfig");
        let mesh = cfg.mesh;
        let layout = VcLayout::new(cfg);
        let n = mesh.nodes();
        let routers = mesh
            .iter_nodes()
            .map(|id| {
                let has = PortMap::from_fn(|p| match p {
                    Port::Local => true,
                    Port::Link(d) => mesh.neighbor(id, d).is_some(),
                });
                Router::new(id, layout, cfg.router_stages, has)
            })
            .collect();
        let nis = mesh
            .iter_nodes()
            .map(|id| Ni::new(id, layout, cfg.ni_latency))
            .collect();
        Network {
            cfg: cfg.clone(),
            mesh,
            cycle: 0,
            routers,
            nis,
            flit_in: (0..n).map(|_| PortMap::from_fn(|_| Pipe::new())).collect(),
            credit_in: (0..n).map(|_| PortMap::from_fn(|_| Pipe::new())).collect(),
            ni_credit_in: (0..n).map(|_| Pipe::new()).collect(),
            eject_in: (0..n).map(|_| Pipe::new()).collect(),
            packets: HashMap::new(),
            next_packet: 0,
            pm,
            events: Vec::new(),
            stats: NetStats::default(),
            outbox: vec![Vec::new(); n],
            ni_flits: 0,
            injected_flits: 0,
            measure_start: 0,
            trace: None,
        }
    }

    /// Starts recording per-packet completion records (up to `capacity`);
    /// read them back with [`Network::trace`] or [`Network::take_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// The packet trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Takes the trace, disabling further recording.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take()
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The mesh this network is built on.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The network configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Power state of router `r` under the active scheme.
    pub fn power_state(&self, r: NodeId) -> PowerState {
        self.pm.state(r)
    }

    /// The active power manager (for scheme-specific inspection).
    pub fn power_manager(&self) -> &dyn PowerManager {
        self.pm.as_ref()
    }

    /// Number of packets somewhere between NI enqueue and tail ejection.
    pub fn in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Hands `msg` to the NI of `msg.src` at the current cycle.
    ///
    /// Returns the packet id assigned to the message.
    ///
    /// # Panics
    ///
    /// Panics if `msg.src`/`msg.dst` are outside the mesh or `msg.vnet` is
    /// out of range.
    pub fn send(&mut self, msg: Message) -> PacketId {
        assert!(self.mesh.contains(msg.src), "bad source {}", msg.src);
        assert!(self.mesh.contains(msg.dst), "bad destination {}", msg.dst);
        assert!(
            msg.vnet.index() < self.cfg.vnets as usize,
            "vnet {} out of range",
            msg.vnet
        );
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let len = match msg.class {
            MsgClass::Control => self.cfg.ctrl_packet_flits as u16,
            MsgClass::Data => self.cfg.data_packet_flits as u16,
        };
        let ni = &mut self.nis[msg.src.index()];
        ni.enqueue(id, &msg, len, self.cycle);
        // Look-ahead route for the first hop; a message to the local node
        // still traverses the local router (inject then immediately eject),
        // as in GARNET.
        let route_port = match routing::xy_direction(self.mesh, msg.src, msg.dst) {
            Some(d) => Port::Link(d),
            None => Port::Local,
        };
        ni.set_route_of_last(msg.vnet, route_port);
        // Slack 1: destination is known the moment the message enters the NI.
        self.events.push(PmEvent::NiMessageKnown {
            node: msg.src,
            dst: msg.dst,
        });
        self.packets
            .insert(id.0, PacketMeta::new(msg, len, self.cycle, true));
        self.stats.packets_injected += 1;
        self.injected_flits += len as u64;
        id
    }

    /// Reports that `node` will generate a packet shortly although its
    /// destination is not yet known — the paper's "slack 2" (§4.2), e.g. the
    /// start of an L2 or directory access. Only `PowerPunch-PG` uses it.
    pub fn notify_future_injection(&mut self, node: NodeId) {
        self.events.push(PmEvent::FutureInjection { node });
    }

    /// Takes every message that has been delivered to `node` so far.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Message> {
        std::mem::take(&mut self.outbox[node.index()])
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        let now = self.cycle;
        self.deliver_flits(now);
        self.deliver_credits(now);
        self.allocate_routers(now);
        self.deliver_ejections(now);
        self.inject_from_nis(now);
        self.power_tick(now);
        self.cycle = now + 1;
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Ends the warm-up window: zeroes all statistics and counters; packets
    /// currently in flight are excluded from delivered-packet statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.ni_flits = 0;
        self.injected_flits = 0;
        for meta in self.packets.values_mut() {
            meta.measured = false;
        }
        for r in &mut self.routers {
            r.activity.reset();
        }
        self.pm.reset_counters();
        self.measure_start = self.cycle;
    }

    /// Snapshot of statistics, activity and power-gating counters for the
    /// measured window.
    pub fn report(&self) -> NetworkReport {
        let mut activity = RouterActivity::default();
        for r in &self.routers {
            activity.merge(&r.activity);
        }
        let cycles = self.cycle - self.measure_start;
        let denom = cycles as f64 * self.mesh.nodes() as f64;
        NetworkReport {
            scheme: self.pm.kind(),
            routers: self.mesh.nodes(),
            cycles,
            stats: self.stats.clone(),
            activity,
            pg: self.pm.counters().clone(),
            ni_flits: self.ni_flits,
            offered_load: if cycles == 0 {
                0.0
            } else {
                self.injected_flits as f64 / denom
            },
        }
    }

    fn deliver_flits(&mut self, now: Cycle) {
        for idx in 0..self.routers.len() {
            for port in Port::ALL {
                while let Some(flit) = self.flit_in[idx][port].pop_ready(now) {
                    if flit.kind.is_head() {
                        let meta = self
                            .packets
                            .get_mut(&flit.packet.0)
                            .expect("meta exists while in flight");
                        if port != Port::Local {
                            meta.hops += 1;
                        }
                        self.events.push(PmEvent::HeadArrival {
                            router: NodeId(idx as u16),
                            dst: flit.dst,
                        });
                    }
                    self.routers[idx].latch(port, flit, now);
                }
            }
        }
    }

    fn deliver_credits(&mut self, now: Cycle) {
        for idx in 0..self.routers.len() {
            for port in Port::ALL {
                while let Some(vc) = self.credit_in[idx][port].pop_ready(now) {
                    self.routers[idx].credit(port, vc);
                }
            }
            while let Some(vc) = self.ni_credit_in[idx].pop_ready(now) {
                self.nis[idx].credit(vc);
            }
        }
    }

    fn allocate_routers(&mut self, now: Cycle) {
        let link = self.cfg.link_latency as Cycle;
        for idx in 0..self.routers.len() {
            let here = NodeId(idx as u16);
            // A flit granted SA at `now` is latched downstream at
            // `now + 2 + link`; the downstream router only needs to be on
            // by then, so the tail of its wakeup overlaps flit transit.
            let arrival = now + 2 + link;
            let down_on = PortMap::from_fn(|p| match p {
                Port::Local => true,
                Port::Link(d) => self
                    .mesh
                    .neighbor(here, d)
                    .is_some_and(|n| self.pm.is_available(n, arrival)),
            });
            let outcome = self.routers[idx].allocate(now, &down_on);
            for b in outcome.pg_blocked {
                let d = b
                    .next_router_port
                    .direction()
                    .expect("PG can only block link ports");
                let next = self
                    .mesh
                    .neighbor(here, d)
                    .expect("blocked port has a neighbor");
                self.events.push(PmEvent::BlockedNeed { router: next });
                if let Some(meta) = self.packets.get_mut(&b.packet.0) {
                    meta.wakeup_wait += 1;
                    // Figure 9: count each blocking router once per packet
                    // encounter.
                    if meta.blocked_on != Some(next) {
                        meta.blocked_on = Some(next);
                        meta.pg_encounters += 1;
                    }
                }
            }
            for dep in outcome.departures {
                // Credit back to the upstream of the input the flit vacated.
                match dep.in_port {
                    Port::Local => {
                        self.ni_credit_in[idx].push_at(dep.in_vc, now + 1 + link);
                    }
                    Port::Link(d) => {
                        let up = self
                            .mesh
                            .neighbor(here, d)
                            .expect("flits only arrive over real links");
                        self.credit_in[up.index()][Port::Link(d.opposite())]
                            .push_at(dep.in_vc, now + 1 + link);
                    }
                }
                match dep.out_port {
                    Port::Local => {
                        self.eject_in[idx].push_at(dep.flit, now + 2);
                    }
                    Port::Link(d) => {
                        let next = self
                            .mesh
                            .neighbor(here, d)
                            .expect("allocation never targets a mesh edge");
                        let mut flit = dep.flit;
                        // Look-ahead routing: compute the output port this
                        // flit will request at `next`.
                        flit.route_port =
                            match routing::xy_direction(self.mesh, next, flit.dst) {
                                Some(nd) => Port::Link(nd),
                                None => Port::Local,
                            };
                        self.stats.link_traversals += 1;
                        self.flit_in[next.index()][Port::Link(d.opposite())]
                            .push_at(flit, now + 2 + link);
                    }
                }
            }
        }
    }

    fn deliver_ejections(&mut self, now: Cycle) {
        for idx in 0..self.nis.len() {
            while let Some(flit) = self.eject_in[idx].pop_ready(now) {
                self.ni_flits += 1;
                if let Some(done) = self.nis[idx].eject(&flit) {
                    let meta = self
                        .packets
                        .remove(&done.0)
                        .expect("completed packet has meta");
                    if let Some(t) = self.trace.as_mut() {
                        t.push(PacketRecord::from_meta(done, &meta, now));
                    }
                    if meta.measured {
                        self.stats.packets_delivered += 1;
                        self.stats.flits_delivered += meta.len_flits as u64;
                        self.stats
                            .latency
                            .record((now - meta.ni_enqueue) as f64);
                        self.stats
                            .net_latency
                            .record(now.saturating_sub(meta.inject) as f64);
                        self.stats.hops.record(meta.hops as f64);
                        self.stats.pg_encounters.record(meta.pg_encounters as f64);
                        self.stats.wakeup_wait.record(meta.wakeup_wait as f64);
                    }
                    self.outbox[idx].push(meta.message);
                }
            }
        }
    }

    fn inject_from_nis(&mut self, now: Cycle) {
        let link = self.cfg.link_latency as Cycle;
        for idx in 0..self.nis.len() {
            let node = NodeId(idx as u16);
            // An NI flit sent at `now` latches into the local router at
            // `now + 1 + link`: the local router's wakeup tail overlaps.
            let router_on = self.pm.is_available(node, now + 1 + link);
            let outcome = self.nis[idx].tick_inject(now, router_on);
            for (pkt, dst) in outcome.newly_ready {
                self.events.push(PmEvent::NiReadyToInject { node, dst });
                let _ = pkt;
            }
            for pkt in outcome.blocked_on_local {
                self.events.push(PmEvent::BlockedNeed { router: node });
                if let Some(meta) = self.packets.get_mut(&pkt.0) {
                    meta.wakeup_wait += 1;
                    if meta.blocked_on != Some(node) {
                        meta.blocked_on = Some(node);
                        meta.pg_encounters += 1;
                    }
                }
            }
            if let Some(pkt) = outcome.head_injected {
                if let Some(meta) = self.packets.get_mut(&pkt.0) {
                    meta.inject = now;
                }
            }
            if let Some(flit) = outcome.sent {
                self.ni_flits += 1;
                self.flit_in[idx][Port::Local].push_at(flit, now + 1 + link);
            }
        }
    }

    fn power_tick(&mut self, now: Cycle) {
        let idle: Vec<bool> = (0..self.routers.len())
            .map(|idx| {
                self.routers[idx].datapath_empty()
                    && !self.nis[idx].mid_packet()
                    && Port::ALL
                        .iter()
                        .all(|&p| self.flit_in[idx][p].is_empty())
            })
            .collect();
        self.pm.tick(now, &self.events, IdleInfo { idle: &idle });
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::AlwaysOn;
    use punchsim_types::VnetId;

    fn msg(src: u16, dst: u16, class: MsgClass) -> Message {
        Message {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: VnetId(0),
            class,
            payload: (src as u64) << 32 | dst as u64,
            gen_cycle: 0,
        }
    }

    fn net() -> Network {
        let cfg = NocConfig::default();
        let pm = Box::new(AlwaysOn::new(cfg.mesh.nodes()));
        Network::new(&cfg, pm)
    }

    #[test]
    fn single_control_packet_zero_load_latency() {
        let mut n = net();
        // R0 -> R3: 3 hops, 3-stage pipeline, link latency 1, NI latency 3.
        n.send(msg(0, 3, MsgClass::Control));
        n.run(40);
        assert_eq!(n.take_delivered(NodeId(3)).len(), 1);
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 1);
        // enqueue t=0, ready t=3, sent t=3, latch R0 t=5, per hop 4 cycles,
        // latch R3 at 5+12... wait: R0 is hop 0. R0 SA t=6, latch R1 t=9,
        // latch R2 t=13, latch R3 t=17, SA t=18, eject t=20.
        assert_eq!(r.stats.latency.mean(), 20.0);
        assert_eq!(r.stats.hops.mean(), 3.0);
        assert_eq!(r.stats.pg_encounters.mean(), 0.0);
        assert_eq!(r.stats.wakeup_wait.mean(), 0.0);
    }

    #[test]
    fn data_packet_serialization_latency() {
        let mut n = net();
        // 5-flit packet to a neighbour: tail trails head by 4 cycles.
        n.send(msg(0, 1, MsgClass::Data));
        n.run(40);
        assert_eq!(n.take_delivered(NodeId(1)).len(), 1);
        let r = n.report();
        // Head: enqueue 0, sent 3, latch R0 @5, SA @6, latch R1 @9, SA @10,
        // eject @12. The 3-flit VC depth throttles the stream through the
        // NI->R0 and R0->R1 credit loops (credits take 2 cycles to return),
        // so the tail is sent @9, forwarded by R0 @13 after the credit from
        // R1 arrives, latched @16, and ejected @19.
        assert_eq!(r.stats.latency.mean(), 19.0);
    }

    #[test]
    fn local_delivery_goes_through_local_router() {
        let mut n = net();
        n.send(msg(5, 5, MsgClass::Control));
        n.run(20);
        let got = n.take_delivered(NodeId(5));
        assert_eq!(got.len(), 1);
        let r = n.report();
        assert_eq!(r.stats.hops.mean(), 0.0);
        // enqueue 0, sent 3, latch 5, SA 6, eject 8.
        assert_eq!(r.stats.latency.mean(), 8.0);
    }

    #[test]
    fn many_random_packets_all_delivered() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut n = net();
        let mut expected = vec![0usize; 64];
        for i in 0..300 {
            let src = rng.random_range(0..64u16);
            let dst = rng.random_range(0..64u16);
            let class = if i % 3 == 0 {
                MsgClass::Data
            } else {
                MsgClass::Control
            };
            let mut m = msg(src, dst, class);
            m.vnet = VnetId(rng.random_range(0..3u8));
            n.send(m);
            expected[dst as usize] += 1;
            if i % 2 == 0 {
                n.tick();
            }
        }
        // Drain.
        for _ in 0..2000 {
            n.tick();
            if n.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(n.in_flight(), 0, "all packets must drain");
        for d in 0..64u16 {
            assert_eq!(
                n.take_delivered(NodeId(d)).len(),
                expected[d as usize],
                "node {d}"
            );
        }
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 300);
        assert!(r.stats.latency.mean() > 0.0);
    }

    #[test]
    fn four_stage_pipeline_adds_one_cycle_per_hop() {
        let cfg = NocConfig {
            router_stages: 4,
            ..NocConfig::default()
        };
        let pm = Box::new(AlwaysOn::new(cfg.mesh.nodes()));
        let mut n = Network::new(&cfg, pm);
        n.send(msg(0, 3, MsgClass::Control));
        n.run(50);
        let r = n.report();
        assert_eq!(r.stats.packets_delivered, 1);
        // 4 routers on the path (R0..R3) each add one extra cycle vs the
        // 3-stage case: 20 + 4 = 24.
        assert_eq!(r.stats.latency.mean(), 24.0);
    }

    #[test]
    fn reset_stats_excludes_warmup() {
        let mut n = net();
        n.send(msg(0, 7, MsgClass::Control));
        n.run(5);
        n.reset_stats();
        n.run(60);
        let r = n.report();
        // The warm-up packet completed but is not measured.
        assert_eq!(r.stats.packets_delivered, 0);
        assert_eq!(n.take_delivered(NodeId(7)).len(), 1);
    }

    #[test]
    fn determinism_same_seedless_run() {
        let run = || {
            let mut n = net();
            for i in 0..50u16 {
                n.send(msg(i % 64, (i * 7 + 3) % 64, MsgClass::Data));
                n.tick();
            }
            n.run(1500);
            let r = n.report();
            (
                r.stats.packets_delivered,
                r.stats.latency.mean(),
                r.stats.hops.mean(),
            )
        };
        assert_eq!(run(), run());
    }
}
