//! The network interface (NI): message segmentation, injection-side VC
//! allocation, and packet reassembly at ejection.
//!
//! The injection path models Figure 6 of the paper: a message entering the
//! NI spends `ni_latency` cycles in NI processing (encapsulation, VC
//! arbitration, availability check) before its head flit can enter the local
//! router — and the moment it *enters* the NI its destination is known,
//! which is the "slack 1" exploited by Power Punch.

use std::collections::VecDeque;

use punchsim_types::{Cycle, NodeId, PacketId, Port, VnetId};

use crate::flit::{Flit, FlitKind, Message, MsgClass};
use crate::vc::VcLayout;

/// A packet queued or in flight at the injection side of an NI.
#[derive(Debug, Clone)]
struct PendingPacket {
    id: PacketId,
    dst: NodeId,
    vnet: VnetId,
    class: MsgClass,
    len: u16,
    /// First cycle the head may inject (enqueue + NI latency).
    ready_at: Cycle,
    /// Emitted the one-shot `NiReadyToInject` edge event already.
    announced: bool,
    /// Local-router input VC allocated to this packet, once started.
    vc: Option<usize>,
    /// Next flit sequence number to send.
    next_seq: u16,
    /// Look-ahead output port at the local router.
    route_port: Port,
}

/// What happened inside [`Ni::tick_inject`] this cycle, for the network to
/// turn into statistics and power-manager events.
#[derive(Debug, Default)]
pub struct NiInjectOutcome {
    /// A flit was sent toward the local router (at most one per cycle).
    pub sent: Option<Flit>,
    /// The sent flit was a head leaving the NI (records injection time).
    pub head_injected: Option<PacketId>,
    /// Packets whose head is ready but stalled because the local router is
    /// not fully on (one entry per packet; re-reported every stalled cycle).
    pub blocked_on_local: Vec<PacketId>,
    /// Packets that became ready to inject this cycle (one-shot edge, used
    /// by `PowerPunch-Signal` to launch punches and by Fig. 9 to count a
    /// powered-off local router).
    pub newly_ready: Vec<(PacketId, NodeId)>,
}

/// Per-node network interface.
#[derive(Debug, Clone)]
pub struct Ni {
    node: NodeId,
    layout: VcLayout,
    ni_latency: u8,
    /// Per-vnet injection queues (head-of-line per vnet, as in GARNET).
    queues: Vec<VecDeque<PendingPacket>>,
    /// Credits toward the local router's `Local` input port, per VC.
    credits: Vec<u32>,
    /// VCs of the local input port currently owned by an NI packet.
    vc_busy: Vec<bool>,
    /// Round-robin pointer over vnets for the shared NI-to-router channel.
    rr: usize,
    /// Packets currently being reassembled at the ejection side do not need
    /// per-flit storage: per-VC FIFO order guarantees the tail arrives last,
    /// so ejection completion is detected on tail flits alone.
    flits_ejected: u64,
}

impl Ni {
    /// Creates the NI for `node`.
    pub fn new(node: NodeId, layout: VcLayout, ni_latency: u8) -> Self {
        let total = layout.total();
        Ni {
            node,
            layout,
            ni_latency,
            queues: vec![VecDeque::new(); layout.vnet_count()],
            credits: (0..total).map(|i| layout.depth(i) as u32).collect(),
            vc_busy: vec![false; total],
            rr: 0,
            flits_ejected: 0,
        }
    }

    /// The node this NI is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Appends this NI's canonical snapshot encoding (see
    /// [`crate::snapshot`]): the per-vnet injection queues (with `ready_at`
    /// rebased against `now`), local-port credits, VC ownership and the
    /// vnet round-robin pointer. `flits_ejected` is a statistic (monotone)
    /// and excluded.
    pub fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) {
        use crate::snapshot::{put_bool, put_u16, put_u64, put_u8};
        for queue in &self.queues {
            put_u8(out, queue.len() as u8);
            for p in queue {
                put_u64(out, p.id.0);
                put_u16(out, p.dst.0);
                put_u8(out, p.vnet.0);
                put_u8(out, p.class.index() as u8);
                put_u16(out, p.len);
                put_u64(out, p.ready_at.saturating_sub(now));
                put_bool(out, p.announced);
                match p.vc {
                    None => put_u8(out, 0xFF),
                    Some(vc) => put_u8(out, vc as u8),
                }
                put_u16(out, p.next_seq);
                put_u8(out, p.route_port.index() as u8);
            }
        }
        for &c in &self.credits {
            put_u8(out, c as u8);
        }
        for &b in &self.vc_busy {
            put_bool(out, b);
        }
        put_u8(out, self.rr as u8);
    }

    /// Queues a message for injection at `cycle`; returns the cycle at which
    /// it will first be able to inject (end of the NI pipeline).
    ///
    /// # Panics
    ///
    /// Panics if the message's vnet is out of range.
    pub fn enqueue(&mut self, id: PacketId, msg: &Message, len: u16, cycle: Cycle) -> Cycle {
        let ready_at = cycle + self.ni_latency as Cycle;
        let route_port = Port::Local; // placeholder; set below by caller info
        self.queues[msg.vnet.index()].push_back(PendingPacket {
            id,
            dst: msg.dst,
            vnet: msg.vnet,
            class: msg.class,
            len,
            ready_at,
            announced: false,
            vc: None,
            next_seq: 0,
            route_port,
        });
        ready_at
    }

    /// Sets the look-ahead route (output port at the local router) for the
    /// most recently enqueued packet on `vnet`. Called by the network right
    /// after [`Ni::enqueue`], which keeps this type topology-agnostic.
    pub fn set_route_of_last(&mut self, vnet: VnetId, route_port: Port) {
        let p = self.queues[vnet.index()]
            .back_mut()
            .expect("set_route_of_last follows enqueue");
        p.route_port = route_port;
    }

    /// Returns a credit for local-input VC `vc`.
    pub fn credit(&mut self, vc: usize) {
        self.credits[vc] += 1;
        debug_assert!(self.credits[vc] <= self.layout.depth(vc) as u32);
    }

    /// Number of messages waiting or in flight on the injection side.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// `true` while a packet has injected its head but not yet its tail —
    /// the local router must not power off in that window.
    pub fn mid_packet(&self) -> bool {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .any(|p| p.vc.is_some())
    }

    /// Flits delivered to this NI so far (ejection-side activity counter).
    pub fn flits_ejected(&self) -> u64 {
        self.flits_ejected
    }

    /// Records the arrival of an ejected flit; returns the packet id when
    /// `flit` completes its packet (tail arrival).
    pub fn eject(&mut self, flit: &Flit) -> Option<PacketId> {
        self.flits_ejected += 1;
        flit.kind.is_tail().then_some(flit.packet)
    }

    /// Runs one injection cycle. At most one flit is sent (the NI-to-router
    /// channel is as wide as a link). `router_on` is the PG handshake state
    /// of the local router.
    pub fn tick_inject(&mut self, cycle: Cycle, router_on: bool) -> NiInjectOutcome {
        let mut out = NiInjectOutcome::default();
        let nv = self.queues.len();
        // Edge events + blocked reporting for every head-of-queue packet.
        for q in &mut self.queues {
            let Some(p) = q.front_mut() else { continue };
            if p.ready_at > cycle {
                continue;
            }
            if !p.announced {
                p.announced = true;
                out.newly_ready.push((p.id, p.dst));
            }
            if p.vc.is_none() && !router_on {
                out.blocked_on_local.push(p.id);
            }
        }
        // Pick one vnet to send a flit from, round-robin, preferring
        // in-flight packets (they own a VC) and then new heads.
        for pass in 0..2 {
            for off in 0..nv {
                let v = (self.rr + off) % nv;
                let Some(p) = self.queues[v].front_mut() else {
                    continue;
                };
                if p.ready_at > cycle {
                    continue;
                }
                let started = p.vc.is_some();
                if pass == 0 && !started {
                    continue; // pass 0: continue in-flight packets only
                }
                if pass == 1 && started {
                    continue;
                }
                if !router_on {
                    continue; // PG handshake: cannot send into an off router
                }
                // Allocate a VC for a new head.
                if p.vc.is_none() {
                    let mut cand = self.layout.candidates(p.vnet, p.class);
                    let free = cand.find(|&c| !self.vc_busy[c] && self.credits[c] > 0);
                    let Some(vc) = free else { continue };
                    self.vc_busy[vc] = true;
                    p.vc = Some(vc);
                }
                let vc = p.vc.expect("allocated above");
                if self.credits[vc] == 0 {
                    continue; // wait for buffer space
                }
                // Send one flit.
                self.credits[vc] -= 1;
                let kind = match (p.next_seq, p.len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (s, l) if s + 1 == l => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                let flit = Flit {
                    packet: p.id,
                    kind,
                    vnet: p.vnet,
                    class: p.class,
                    dst: p.dst,
                    route_port: p.route_port,
                    vc,
                    seq: p.next_seq,
                    latched_at: cycle,
                };
                if kind.is_head() {
                    out.head_injected = Some(p.id);
                }
                p.next_seq += 1;
                if kind.is_tail() {
                    self.vc_busy[vc] = false;
                    self.queues[v].pop_front();
                }
                out.sent = Some(flit);
                self.rr = (v + 1) % nv;
                return out;
            }
        }
        out
    }
}

impl VcLayout {
    /// Number of virtual networks in the layout.
    pub fn vnet_count(self) -> usize {
        self.total() / self.per_vnet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::{Direction, NocConfig};

    fn mk_ni() -> Ni {
        let cfg = NocConfig::default();
        Ni::new(NodeId(0), VcLayout::new(&cfg), cfg.ni_latency)
    }

    fn msg(dst: u16, vnet: u8, class: MsgClass) -> Message {
        Message {
            src: NodeId(0),
            dst: NodeId(dst),
            vnet: VnetId(vnet),
            class,
            payload: 0,
            gen_cycle: 0,
        }
    }

    #[test]
    fn ni_latency_gates_injection() {
        let mut ni = mk_ni();
        let m = msg(5, 0, MsgClass::Control);
        let ready = ni.enqueue(PacketId(1), &m, 1, 10);
        ni.set_route_of_last(VnetId(0), Port::Link(Direction::East));
        assert_eq!(ready, 13);
        for c in 10..13 {
            assert!(ni.tick_inject(c, true).sent.is_none());
        }
        let o = ni.tick_inject(13, true);
        let f = o.sent.expect("head injects when ready");
        assert_eq!(f.kind, FlitKind::HeadTail);
        assert_eq!(f.route_port, Port::Link(Direction::East));
        assert_eq!(o.head_injected, Some(PacketId(1)));
        assert_eq!(ni.pending(), 0);
    }

    #[test]
    fn blocked_when_router_off() {
        let mut ni = mk_ni();
        let m = msg(5, 0, MsgClass::Control);
        ni.enqueue(PacketId(1), &m, 1, 0);
        ni.set_route_of_last(VnetId(0), Port::Link(Direction::East));
        let o = ni.tick_inject(3, false);
        assert!(o.sent.is_none());
        assert_eq!(o.blocked_on_local, vec![PacketId(1)]);
        assert_eq!(o.newly_ready.len(), 1);
        // The edge event fires only once.
        let o = ni.tick_inject(4, false);
        assert!(o.newly_ready.is_empty());
        assert_eq!(o.blocked_on_local, vec![PacketId(1)]);
        // Router wakes: injection proceeds.
        let o = ni.tick_inject(5, true);
        assert!(o.sent.is_some());
    }

    #[test]
    fn multi_flit_streams_in_order_and_respects_credits() {
        let mut ni = mk_ni();
        let m = msg(5, 1, MsgClass::Data);
        ni.enqueue(PacketId(2), &m, 5, 0);
        ni.set_route_of_last(VnetId(1), Port::Link(Direction::East));
        let mut seqs = Vec::new();
        for c in 3..20 {
            if let Some(f) = ni.tick_inject(c, true).sent {
                seqs.push((f.seq, f.kind));
                // don't return credits: only depth(=3) flits may flow
            }
        }
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[0].0, 0);
        assert_eq!(seqs[0].1, FlitKind::Head);
        // Return credits; the remaining two flits flow.
        ni.credit(seqs[0].0 as usize + 3); // vc index of vnet1 data vc0 = 3
        ni.credit(3);
        let mut more = Vec::new();
        for c in 20..30 {
            if let Some(f) = ni.tick_inject(c, true).sent {
                more.push(f.kind);
            }
        }
        assert_eq!(more, vec![FlitKind::Body, FlitKind::Tail]);
        assert_eq!(ni.pending(), 0);
        assert!(!ni.mid_packet());
    }

    #[test]
    fn vnets_share_channel_round_robin() {
        let mut ni = mk_ni();
        ni.enqueue(PacketId(1), &msg(5, 0, MsgClass::Control), 1, 0);
        ni.set_route_of_last(VnetId(0), Port::Link(Direction::East));
        ni.enqueue(PacketId(2), &msg(6, 2, MsgClass::Control), 1, 0);
        ni.set_route_of_last(VnetId(2), Port::Link(Direction::East));
        let a = ni.tick_inject(3, true).sent.expect("one flit");
        let b = ni.tick_inject(4, true).sent.expect("other flit");
        assert_ne!(a.packet, b.packet);
    }

    #[test]
    fn eject_completes_on_tail() {
        let mut ni = mk_ni();
        let mk = |kind, seq| Flit {
            packet: PacketId(9),
            kind,
            vnet: VnetId(0),
            class: MsgClass::Data,
            dst: NodeId(0),
            route_port: Port::Local,
            vc: 0,
            seq,
            latched_at: 0,
        };
        assert_eq!(ni.eject(&mk(FlitKind::Head, 0)), None);
        assert_eq!(ni.eject(&mk(FlitKind::Body, 1)), None);
        assert_eq!(ni.eject(&mk(FlitKind::Tail, 2)), Some(PacketId(9)));
        assert_eq!(ni.flits_ejected(), 3);
    }

    #[test]
    fn mid_packet_blocks_router_sleep_window() {
        let mut ni = mk_ni();
        ni.enqueue(PacketId(3), &msg(5, 0, MsgClass::Data), 5, 0);
        ni.set_route_of_last(VnetId(0), Port::Link(Direction::East));
        assert!(!ni.mid_packet());
        ni.tick_inject(3, true); // head sent
        assert!(ni.mid_packet());
        for c in 4..8 {
            // The router drains each flit promptly, returning the credit.
            ni.credit(0);
            ni.tick_inject(c, true);
        }
        assert!(!ni.mid_packet()); // tail sent
    }
}
