//! The power-management interface between the network substrate and a
//! power-gating scheme.
//!
//! The network reports micro-architectural events ([`PmEvent`]) and per-router
//! idleness each cycle; the [`PowerManager`] decides which routers are on,
//! off or waking. The schemes themselves (conventional, ConvOpt, Power
//! Punch) live in `punchsim-core`; this crate only provides the trait and
//! the trivial [`AlwaysOn`] baseline so the substrate is testable on its own.

use punchsim_obs::{PowerTag, Stamped};
use punchsim_types::{Cycle, FaultChoice, NodeId, SchemeKind};

/// Power state of one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Powered on; can receive, allocate and forward flits.
    On,
    /// Power-gated; blocks every path through the router.
    Off,
    /// Waking up; becomes `On` at the stored cycle.
    WakingUp {
        /// First cycle at which the router is fully on.
        ready_at: Cycle,
    },
}

impl PowerState {
    /// `true` only for `On`.
    #[inline]
    pub fn is_on(self) -> bool {
        matches!(self, PowerState::On)
    }

    /// The observability label of this state (drops the `ready_at` cycle;
    /// the transition event's own timestamp carries the timing).
    #[inline]
    pub fn tag(self) -> PowerTag {
        match self {
            PowerState::On => PowerTag::On,
            PowerState::Off => PowerTag::Off,
            PowerState::WakingUp { .. } => PowerTag::Waking,
        }
    }
}

/// A micro-architectural event reported to the power manager.
///
/// Events generated during cycle `t` are processed by
/// [`PowerManager::tick`] for cycle `t`; their effects (wakeups, punch
/// signals) become visible to the network from cycle `t + 1`, matching the
/// one-cycle controller latency of the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmEvent {
    /// A head flit was latched (BW stage) at `router` for a packet headed to
    /// `dst`. This is where look-ahead information becomes available: the
    /// ConvOpt early wakeup (paper ref. 24) and the Power Punch multi-hop
    /// wakeup (§4.1) are both generated here.
    HeadArrival {
        /// Router that latched the head flit.
        router: NodeId,
        /// Packet destination.
        dst: NodeId,
    },
    /// A head-of-line flit at a neighbour of `router` (or at its local NI)
    /// is stalled because `router` is not on. This is the conventional WU
    /// handshake signal of Figure 2; it is re-emitted every stalled cycle
    /// (a level signal).
    BlockedNeed {
        /// The sleeping router that must wake for traffic to proceed.
        router: NodeId,
    },
    /// A message entered the NI at `node` and its destination is now known —
    /// the beginning of "slack 1" (§4.2). Emitted `ni_latency` cycles before
    /// the packet could first inject.
    NiMessageKnown {
        /// Injecting node.
        node: NodeId,
        /// Message destination.
        dst: NodeId,
    },
    /// The endpoint at `node` knows a packet *will* be generated although
    /// its destination is not known yet — the beginning of "slack 2" (§4.2),
    /// e.g. the start of an L2/directory access.
    FutureInjection {
        /// Node that will inject.
        node: NodeId,
    },
    /// The packet at the head of the NI at `node` has finished the NI
    /// pipeline and is attempting to inject (the paper's "checking the
    /// availability of the connected input port").
    NiReadyToInject {
        /// Injecting node.
        node: NodeId,
        /// Packet destination.
        dst: NodeId,
    },
}

/// Per-cycle idleness snapshot handed to [`PowerManager::tick`].
#[derive(Debug, Clone, Copy)]
pub struct IdleInfo<'a> {
    /// `idle[r]` is `true` when router `r`'s datapath is empty *and* no flit
    /// is in flight toward it on any incoming link (the paper's two-cycle
    /// safety timeout is subsumed by the in-flight check).
    pub idle: &'a [bool],
}

/// Aggregate power-gating activity counters for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PgCounters {
    /// Per-router cycles spent fully off.
    pub off_cycles: Vec<u64>,
    /// Per-router cycles spent in the wakeup transient.
    pub waking_cycles: Vec<u64>,
    /// Per-router count of sleep transitions (each costs roughly one
    /// break-even time of energy overhead).
    pub sleep_events: Vec<u64>,
    /// Per-router count of wakeup transitions.
    pub wake_events: Vec<u64>,
    /// Total punch-signal link traversals (sideband wire activity).
    pub punch_hops: u64,
    /// Total cycles a conventional WU wire was asserted.
    pub wu_assertions: u64,
    /// Per-router WU assertions: `wu_assertions_at[r]` counts the cycles
    /// a WU wire was asserted *for* router `r` (the router being woken).
    /// Sums to `wu_assertions`; the heatmap plane behind
    /// `router_wu_assertions`.
    pub wu_assertions_at: Vec<u64>,
    /// Per-router force-wake escalations (sums to `escalations`).
    pub escalations_at: Vec<u64>,
    /// WU assertions that found the target already mid-wakeup — the level
    /// signal retrying while the gate transient completes.
    pub wu_retries: u64,
    /// Force-wake escalations: the watchdog timed out a WU that a (stuck)
    /// router kept ignoring and overrode its sleep gate.
    pub escalations: u64,
    /// Faults injected into the power-gating machinery (0 without a fault
    /// injector): dropped/corrupted/delayed sideband events and stuck-off
    /// epochs.
    pub faults_injected: u64,
    /// Bufferless-router deflections: head flits that lost a same-cycle
    /// latch arbitration and were bounced onto a longer path (0 for every
    /// buffered scheme).
    pub deflections: u64,
}

impl PgCounters {
    /// Creates zeroed counters for `n` routers.
    pub fn new(n: usize) -> Self {
        PgCounters {
            off_cycles: vec![0; n],
            waking_cycles: vec![0; n],
            sleep_events: vec![0; n],
            wake_events: vec![0; n],
            punch_hops: 0,
            wu_assertions: 0,
            wu_assertions_at: vec![0; n],
            escalations_at: vec![0; n],
            wu_retries: 0,
            escalations: 0,
            faults_injected: 0,
            deflections: 0,
        }
    }

    /// Records one WU-wire assertion toward router `r` (global total and
    /// the per-router plane together).
    pub fn record_wu_assertion(&mut self, r: NodeId) {
        self.wu_assertions += 1;
        if let Some(c) = self.wu_assertions_at.get_mut(r.index()) {
            *c += 1;
        }
    }

    /// Records one force-wake escalation of router `r`.
    pub fn record_escalation(&mut self, r: NodeId) {
        self.escalations += 1;
        if let Some(c) = self.escalations_at.get_mut(r.index()) {
            *c += 1;
        }
    }

    /// Sum of off cycles over all routers.
    pub fn total_off_cycles(&self) -> u64 {
        self.off_cycles.iter().sum()
    }

    /// Sum of waking cycles over all routers.
    pub fn total_waking_cycles(&self) -> u64 {
        self.waking_cycles.iter().sum()
    }

    /// Sum of wake events over all routers.
    pub fn total_wake_events(&self) -> u64 {
        self.wake_events.iter().sum()
    }

    /// Resets every counter to zero (used at the end of warm-up).
    pub fn reset(&mut self) {
        for v in [
            &mut self.off_cycles,
            &mut self.waking_cycles,
            &mut self.sleep_events,
            &mut self.wake_events,
            &mut self.wu_assertions_at,
            &mut self.escalations_at,
        ] {
            v.iter_mut().for_each(|c| *c = 0);
        }
        self.punch_hops = 0;
        self.wu_assertions = 0;
        self.wu_retries = 0;
        self.escalations = 0;
        self.faults_injected = 0;
        self.deflections = 0;
    }
}

/// A power-gating scheme controlling all routers of one network.
///
/// Implementations live in `punchsim-core`; the network calls
/// [`PowerManager::tick`] exactly once per cycle, after delivering that
/// cycle's events.
pub trait PowerManager {
    /// Which scheme this manager implements.
    fn kind(&self) -> SchemeKind;

    /// Current power state of router `r`.
    fn state(&self, r: NodeId) -> PowerState;

    /// `true` when router `r` is fully on (PG signal deasserted).
    fn is_on(&self, r: NodeId) -> bool {
        self.state(r).is_on()
    }

    /// `true` when router `r` will be able to receive a flit that arrives at
    /// cycle `by`: it is on now, or its deterministic wakeup countdown
    /// completes by then. This lets switch allocation overlap the tail of a
    /// wakeup with flit transit — the paper's hiding arithmetic
    /// (`Twakeup/Trouter` hops, §3) assumes exactly this overlap.
    fn is_available(&self, r: NodeId, by: Cycle) -> bool {
        match self.state(r) {
            PowerState::On => true,
            PowerState::WakingUp { ready_at } => ready_at <= by,
            PowerState::Off => false,
        }
    }

    /// Advances the manager by one cycle: process `events` generated during
    /// `cycle`, move wakeup timers, propagate punch signals, and take sleep
    /// decisions using `idle`.
    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>);

    /// Bulk availability snapshot for the sharded SoA tick: fills
    /// `arrival[r]` with [`PowerManager::is_available`]`(r, arrival_by)`,
    /// `local[r]` with `is_available(r, local_by)` and `off[r]` with
    /// `state(r) == Off`, for every router. Worker threads read these flat
    /// arrays instead of the (non-`Sync`) manager itself; the manager's
    /// state cannot change between this precompute and the sweep, so the
    /// values are exactly what the per-router queries would return. The
    /// default loops over `state`; schemes backed by a state vector may
    /// override it with a single pass.
    fn fill_availability(
        &self,
        arrival_by: Cycle,
        local_by: Cycle,
        arrival: &mut [bool],
        local: &mut [bool],
        off: &mut [bool],
    ) {
        for i in 0..arrival.len() {
            let r = NodeId(i as u16);
            arrival[i] = self.is_available(r, arrival_by);
            local[i] = self.is_available(r, local_by);
            off[i] = self.state(r) == PowerState::Off;
        }
    }

    /// Escalated wakeup: the network watchdog timed out the level-signaled
    /// WU handshake on router `r` and overrides its sleep gate — the
    /// hardware's last-resort force-wake path. Implementations must clear
    /// any fault condition keeping `r` off and start (or continue) its
    /// wakeup; schemes without gating ignore it.
    fn force_wake(&mut self, _r: NodeId, _cycle: Cycle) {}

    /// Punch signals currently in flight or queued in the sideband fabric
    /// (0 for schemes without one). Used by stall diagnostics.
    fn pending_punches(&self) -> usize {
        0
    }

    /// Activity counters accumulated so far.
    fn counters(&self) -> &PgCounters;

    /// Per-router punch-hop counts: `v[r]` is the number of sideband
    /// punch-signal link traversals *departing* router `r` (sums to
    /// [`PgCounters::punch_hops`]). `None` for schemes without a punch
    /// fabric. Wrapper managers must forward to the wrapped manager.
    fn punch_hops_at(&self) -> Option<&[u64]> {
        None
    }

    /// Resets activity counters (end of warm-up). Power states are kept.
    fn reset_counters(&mut self);

    /// Enables or disables scheme-internal event tracing. While enabled,
    /// the manager buffers cycle-stamped events (punch emissions, fault
    /// injections, ...) for the network to collect with
    /// [`PowerManager::drain_trace`] after each tick. Managers with nothing
    /// scheme-specific to report keep the default no-op.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Takes the events buffered since the last drain (empty unless
    /// [`PowerManager::set_tracing`] enabled tracing). Wrapper managers
    /// must interleave their own events with the wrapped manager's.
    fn drain_trace(&mut self) -> Vec<Stamped> {
        Vec::new()
    }

    /// Event horizon: the earliest cycle `>= now` at which this manager can
    /// change any externally observable state (a power state, a counter, a
    /// queued punch/fault effect) *assuming it receives no further events
    /// and every router stays idle*. `None` means "never": the manager is a
    /// fixed point under quiet ticks and the host may skip any distance.
    ///
    /// The default is maximally conservative — `Some(now)`, i.e. "I may act
    /// this very cycle" — which forbids skipping and keeps hand-rolled test
    /// managers correct without changes. Overrides must honor the contract
    /// pinned by the differential suite: for any span `[now, h)` below the
    /// horizon, `tick_quiet(now, h, idle_all_true)` must leave the manager
    /// in exactly the state that `h - now` individual quiet ticks would.
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Advances the manager over the quiet span `[from, to)`: every cycle in
    /// the span is ticked with no events and the given (all-idle) snapshot.
    /// The default is the literal per-cycle loop, which is always correct;
    /// overrides exist purely so schemes can replace the loop with a
    /// closed-form bulk update, and must be observationally identical.
    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        for c in from..to {
            self.tick(c, &[], idle);
        }
    }

    // --- model-checker hooks (all optional) -----------------------------
    //
    // The exhaustive wakeup-protocol checker (`punchsim-verify`) explores
    // the joint state space of the network and its power manager. That
    // needs three capabilities a plain manager does not have: forking the
    // manager at a state (`clone_boxed`), folding its dynamic state into a
    // canonical byte encoding (`encode_state`), and arming an enumerated
    // fault choice for the next tick (`arm_choice`). They are default
    // methods rather than a sub-trait because trait upcasting is not
    // available at this crate's MSRV; managers that do not opt in simply
    // return `None`/`false` and the checker refuses them with a typed
    // error instead of producing unsound results.

    /// Forks this manager at its current state, or `None` when the
    /// implementation cannot be cloned (e.g. it samples an RNG stream whose
    /// future draws are not part of the observable state).
    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        None
    }

    /// Appends a canonical, *time-rebased* encoding of all dynamic state to
    /// `out`: every stored absolute cycle must be encoded relative to `now`
    /// so that states differing only by a uniform time shift encode
    /// identically. Monotone counters (statistics) must be excluded — they
    /// would make every state unique and the reachable set unbounded.
    /// Returns `false` when the manager does not support encoding (the
    /// buffer may then hold a partial write; callers must discard it).
    fn encode_state(&self, _now: Cycle, _out: &mut Vec<u8>) -> bool {
        false
    }

    /// Arms `choice` to perturb the *next* [`PowerManager::tick`], then
    /// disarm. Returns `false` when this manager does not support scripted
    /// fault choices (the default); the fault-free [`FaultChoice::None`]
    /// must still be accepted by implementations that do.
    fn arm_choice(&mut self, _choice: FaultChoice) -> bool {
        false
    }
}

/// The `No-PG` baseline: every router is always on.
#[derive(Debug, Clone)]
pub struct AlwaysOn {
    counters: PgCounters,
}

impl AlwaysOn {
    /// Creates the baseline manager for `n` routers.
    pub fn new(n: usize) -> Self {
        AlwaysOn {
            counters: PgCounters::new(n),
        }
    }
}

impl PowerManager for AlwaysOn {
    fn kind(&self) -> SchemeKind {
        SchemeKind::NoPg
    }

    fn state(&self, _r: NodeId) -> PowerState {
        PowerState::On
    }

    fn tick(&mut self, _cycle: Cycle, _events: &[PmEvent], _idle: IdleInfo<'_>) {}

    fn counters(&self) -> &PgCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Every router is always on: quiet ticks never change anything.
    fn next_event_at(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn tick_quiet(&mut self, _from: Cycle, _to: Cycle, _idle: IdleInfo<'_>) {}

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        Some(Box::new(self.clone()))
    }

    /// No dynamic state beyond the (excluded) counters: the encoding is
    /// empty and always supported.
    fn encode_state(&self, _now: Cycle, _out: &mut Vec<u8>) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_stays_on() {
        let mut m = AlwaysOn::new(4);
        assert!(m.is_on(NodeId(0)));
        m.tick(
            1,
            &[PmEvent::BlockedNeed { router: NodeId(1) }],
            IdleInfo { idle: &[true; 4] },
        );
        assert!(m.is_on(NodeId(1)));
        assert_eq!(m.counters().total_off_cycles(), 0);
        assert_eq!(m.kind(), SchemeKind::NoPg);
    }

    #[test]
    fn counters_reset() {
        let mut c = PgCounters::new(2);
        c.off_cycles[0] = 5;
        c.punch_hops = 7;
        c.reset();
        assert_eq!(c.total_off_cycles(), 0);
        assert_eq!(c.punch_hops, 0);
    }

    #[test]
    fn state_predicates() {
        assert!(PowerState::On.is_on());
        assert!(!PowerState::Off.is_on());
        assert!(!PowerState::WakingUp { ready_at: 3 }.is_on());
    }

    #[test]
    fn states_map_to_observability_tags() {
        assert_eq!(PowerState::On.tag(), PowerTag::On);
        assert_eq!(PowerState::Off.tag(), PowerTag::Off);
        assert_eq!(PowerState::WakingUp { ready_at: 9 }.tag(), PowerTag::Waking);
    }

    #[test]
    fn tracing_hooks_default_to_no_op() {
        let mut m = AlwaysOn::new(4);
        m.set_tracing(true);
        m.tick(1, &[], IdleInfo { idle: &[true; 4] });
        assert!(m.drain_trace().is_empty());
    }

    #[test]
    fn always_on_has_no_event_horizon() {
        let mut m = AlwaysOn::new(4);
        assert_eq!(m.next_event_at(17), None);
        m.tick_quiet(0, 1_000_000, IdleInfo { idle: &[true; 4] });
        assert!(m.is_on(NodeId(3)));
        assert_eq!(m.counters().total_off_cycles(), 0);
    }

    /// A manager that only implements the required methods must still be
    /// correct under the defaulted quiet-tick protocol: the default horizon
    /// `Some(now)` forbids skipping, and the default `tick_quiet` is the
    /// literal per-cycle loop.
    #[test]
    fn default_horizon_is_conservative() {
        struct Minimal {
            c: PgCounters,
            ticks: u64,
        }
        impl PowerManager for Minimal {
            fn kind(&self) -> SchemeKind {
                SchemeKind::NoPg
            }
            fn state(&self, _r: NodeId) -> PowerState {
                PowerState::On
            }
            fn tick(&mut self, _cycle: Cycle, _events: &[PmEvent], _idle: IdleInfo<'_>) {
                self.ticks += 1;
            }
            fn counters(&self) -> &PgCounters {
                &self.c
            }
            fn reset_counters(&mut self) {}
        }
        let mut m = Minimal {
            c: PgCounters::new(1),
            ticks: 0,
        };
        assert_eq!(m.next_event_at(42), Some(42));
        m.tick_quiet(10, 15, IdleInfo { idle: &[true] });
        assert_eq!(m.ticks, 5, "default tick_quiet is the per-cycle loop");
    }
}
