//! Structure-of-arrays busy-tick kernel: flat per-mesh bitset words plus a
//! two-phase (compute/commit) sharded sweep.
//!
//! PR 4 made *idle* cycles nearly free (quiescence fast-forward); busy
//! cycles still walked every `Router`/`Ni` struct and every pipe, five
//! sweeps per tick, even when only a handful of routers had work. This
//! module flattens the per-router *control plane* — datapath occupancy,
//! pending flits/credits/ejections per pipe group, NI injection state —
//! into one bit per router packed into `u64` words owned by [`SoaState`].
//! Busy sweeps then iterate set bits (`trailing_zeros` per active router,
//! one word test per 64 idle routers) instead of chasing structs. The
//! `Router`/`Vc`/`Ni` structs remain the authoritative flit storage and the
//! views `encode_state` and the struct-path reference kernel read; the bit
//! words are an incrementally-maintained index over them, rebuilt from the
//! structs whenever the reference kernel (which does not maintain them)
//! has run.
//!
//! On top of the flat layout sits deterministic sharding: the mesh is cut
//! into contiguous row bands, each shard runs the *compute* half of a tick
//! over its own routers/NIs/pipes (phase A — nothing outside the shard is
//! touched), and the *commit* half applies every cross-router effect
//! (pipe pushes toward neighbours, power-manager events, packet metadata,
//! statistics) serially in router-index order. Because phase A is
//! side-effect-free outside the shard and the commit order is fixed,
//! results are bit-exact for every shard count — pinned by the CI gate
//! that `cmp`s BENCH artifacts across `--shards 1..4`.

use punchsim_types::{Cycle, NodeId, PacketId, Port, PortMap, RouteView};

use crate::flit::Flit;
use crate::link::Pipe;
use crate::ni::Ni;
use crate::power::PowerManager;
use crate::router::{AllocOutcome, Router};

/// Which kernel [`crate::Network::tick`] uses for busy cycles.
///
/// Both kernels are observationally identical — pinned by the differential
/// oracle in `tests/soa_differential.rs` and by the CI `soa_gate.sh`
/// running the busy campaign under both kernels and comparing artifacts
/// byte for byte. `Soa` is the default; `Struct` is the object-at-a-time
/// reference the SoA sweep is checked against (and raced against: the CI
/// gate also enforces a >=1.5x cycles/sec floor for `Soa` on the
/// busy-dominated suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BusyKernel {
    /// Word-sweep kernel over the flat [`SoaState`] bitsets (the default).
    #[default]
    Soa,
    /// The object-at-a-time reference: every router, NI and pipe visited
    /// every cycle. Selected by `PP_STRUCT_TICK=1` at construction, or
    /// [`crate::Network::set_busy_kernel`].
    Struct,
}

impl BusyKernel {
    /// Resolves the kernel from the `PP_STRUCT_TICK` environment variable:
    /// `1` selects [`BusyKernel::Struct`], anything else (or unset)
    /// selects [`BusyKernel::Soa`].
    pub fn from_env() -> Self {
        match std::env::var("PP_STRUCT_TICK") {
            Ok(v) if v == "1" => BusyKernel::Struct,
            _ => BusyKernel::Soa,
        }
    }
}

/// A fixed-length bitset packed into `u64` words: one bit per router (or
/// NI), swept word-at-a-time by the SoA kernel.
#[derive(Debug, Clone, Default)]
pub struct BitWords {
    words: Vec<u64>,
    len: usize,
}

impl BitWords {
    /// An all-clear bitset over `len` bits.
    pub fn new(len: usize) -> Self {
        BitWords {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set holds zero bits (capacity, not population).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Clears every bit, keeping capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// `true` when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Population count.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (trailing bits past `len` are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Calls `f(index)` for every set bit in `words` within `[lo, hi)`, in
/// ascending index order — the sweep order every SoA phase uses, matching
/// the reference kernel's `0..n` scan over the routers it would not have
/// skipped.
#[inline]
pub fn for_each_one(words: &[u64], lo: usize, hi: usize, mut f: impl FnMut(usize)) {
    if lo >= hi {
        return;
    }
    let first = lo / 64;
    let last = (hi - 1) / 64;
    for (wi, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let mut w = word;
        if wi == first {
            w &= !0u64 << (lo % 64);
        }
        if wi == last {
            let top = hi - wi * 64;
            if top < 64 {
                w &= (1u64 << top) - 1;
            }
        }
        while w != 0 {
            f(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// The flat per-mesh index the SoA kernel sweeps: one bit per router (or
/// NI) per concern, plus the per-tick power-availability arrays the
/// sharded path precomputes (the power manager is host-thread-only).
///
/// Invariant after every SoA tick commit (and after [`SoaState::rebuild`]):
/// each bit is set iff the corresponding struct-side predicate holds —
/// `occ[r]` iff `!routers[r].datapath_empty()`, `flit_pend[r]` iff any
/// flit pipe into `r` is non-empty, and so on. The struct-path reference
/// kernel does not maintain the bits; `Network` marks them dirty and
/// rebuilds lazily on the next SoA tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct SoaState {
    /// Router datapath holds at least one buffered flit.
    pub occ: BitWords,
    /// At least one incoming flit pipe (any port) is non-empty.
    pub flit_pend: BitWords,
    /// At least one incoming credit pipe (router ports or the NI credit
    /// pipe) is non-empty.
    pub credit_pend: BitWords,
    /// The ejection pipe into the NI is non-empty.
    pub eject_pend: BitWords,
    /// The NI has at least one queued or mid-flight injection-side packet.
    pub ni_pend: BitWords,
    /// The NI is mid-packet (head sent, tail not) — its router must stay on.
    pub ni_mid: BitWords,
    /// `pm.is_available(r, now + 2 + link)` per router, refreshed each
    /// sharded tick (allocation's downstream-on horizon).
    pub avail_arrival: Vec<bool>,
    /// `pm.is_available(r, now + 1 + link)` per router (NI injection
    /// horizon).
    pub avail_local: Vec<bool>,
    /// `pm.state(r) == Off` per router (invariant-check input).
    pub power_off: Vec<bool>,
}

impl SoaState {
    pub fn new(n: usize) -> Self {
        SoaState {
            occ: BitWords::new(n),
            flit_pend: BitWords::new(n),
            credit_pend: BitWords::new(n),
            eject_pend: BitWords::new(n),
            ni_pend: BitWords::new(n),
            ni_mid: BitWords::new(n),
            avail_arrival: Vec::new(),
            avail_local: Vec::new(),
            power_off: Vec::new(),
        }
    }

    /// Refreshes the flat availability arrays from the power manager, for
    /// a sharded tick (worker threads cannot touch the boxed manager).
    pub fn fill_avail(&mut self, pm: &dyn PowerManager, arrival_by: Cycle, local_by: Cycle) {
        let n = self.occ.len();
        self.avail_arrival.clear();
        self.avail_arrival.resize(n, false);
        self.avail_local.clear();
        self.avail_local.resize(n, false);
        self.power_off.clear();
        self.power_off.resize(n, false);
        pm.fill_availability(
            arrival_by,
            local_by,
            &mut self.avail_arrival,
            &mut self.avail_local,
            &mut self.power_off,
        );
    }
}

/// Power-availability reads during phase A, monomorphized per path: the
/// single-shard path asks the manager directly; the sharded path reads the
/// flat arrays precomputed by [`SoaState::fill_avail`] (same values — the
/// manager's state cannot change between the precompute and the sweep).
pub(crate) trait Avail {
    /// Downstream router usable by a flit granted SA now (`now + 2 + link`).
    fn downstream_on(&self, n: NodeId) -> bool;
    /// Local router usable by an NI flit sent now (`now + 1 + link`).
    fn local_on(&self, n: NodeId) -> bool;
    /// Router is fully powered off right now (invariant-check input).
    fn is_off(&self, n: NodeId) -> bool;
}

pub(crate) struct PmAvail<'a> {
    pub pm: &'a dyn PowerManager,
    pub arrival_by: Cycle,
    pub local_by: Cycle,
}

impl Avail for PmAvail<'_> {
    fn downstream_on(&self, n: NodeId) -> bool {
        self.pm.is_available(n, self.arrival_by)
    }
    fn local_on(&self, n: NodeId) -> bool {
        self.pm.is_available(n, self.local_by)
    }
    fn is_off(&self, n: NodeId) -> bool {
        self.pm.state(n) == crate::power::PowerState::Off
    }
}

pub(crate) struct FlatAvail<'a> {
    pub arrival: &'a [bool],
    pub local: &'a [bool],
    pub off: &'a [bool],
}

impl Avail for FlatAvail<'_> {
    fn downstream_on(&self, n: NodeId) -> bool {
        self.arrival[n.index()]
    }
    fn local_on(&self, n: NodeId) -> bool {
        self.local[n.index()]
    }
    fn is_off(&self, n: NodeId) -> bool {
        self.off[n.index()]
    }
}

/// Read-only per-tick context shared by every shard's phase A.
pub(crate) struct TickCtx<'a> {
    pub now: Cycle,
    pub link: Cycle,
    /// Invariant checks enabled in the watchdog config.
    pub check: bool,
    /// No violation latched before this tick (matches the reference
    /// kernel's `violation.is_none()` read at pop time).
    pub violation_open: bool,
    pub view: RouteView,
    pub occ: &'a [u64],
    pub flit_pend: &'a [u64],
    pub credit_pend: &'a [u64],
    pub eject_pend: &'a [u64],
    pub ni_pend: &'a [u64],
}

/// A head flit latched this tick (commit applies hop counts and the
/// `HeadArrival` power-manager event in router order).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeadArrival {
    pub router: NodeId,
    pub dst: NodeId,
    pub packet: PacketId,
    /// Arrived over a link (counts as a hop); `false` for the local port.
    pub counted_hop: bool,
}

/// NI injection results for one swept NI.
#[derive(Debug, Default)]
pub(crate) struct InjectRes {
    pub idx: usize,
    pub newly_ready: Vec<(PacketId, NodeId)>,
    pub blocked_on_local: Vec<PacketId>,
    pub head_injected: Option<PacketId>,
    /// A flit was sent (phase A already pushed it into the shard-local
    /// flit pipe; commit bumps counters and the `flit_pend` bit).
    pub sent: bool,
    /// `mid_packet()` after the send (only meaningful when `sent`).
    pub mid_after: bool,
    /// Injection-side packets remain after this tick.
    pub pending_after: bool,
}

/// Everything one shard's phase A produced, applied serially by the commit
/// phase in shard (= router-index) order.
#[derive(Debug, Default)]
pub(crate) struct ShardBuf {
    /// Any flit latched or popped inside the shard this tick.
    pub moved: bool,
    /// First flit-into-off-router candidate (router order within the
    /// shard; the commit latches the first across shards).
    pub violation: Option<NodeId>,
    pub head_arrivals: Vec<HeadArrival>,
    /// Routers whose datapath went non-empty this tick (occ bit to set).
    pub newly_occ: Vec<usize>,
    /// Routers whose flit pipes all drained (flit_pend bit to clear).
    pub flit_clear: Vec<usize>,
    /// Routers/NIs whose credit pipes all drained.
    pub credit_clear: Vec<usize>,
    /// Credits popped inside the shard (decrements `credits_in_flight`).
    pub credits_delivered: u64,
    /// Allocation outcomes with at least one departure or PG block.
    pub alloc: Vec<(usize, AllocOutcome)>,
    /// Routers left with an empty datapath after allocation.
    pub alloc_empty: Vec<usize>,
    /// Scratch for the merged (occ-bits + newly-occupied) allocation list.
    alloc_list: Vec<usize>,
    /// NIs whose ejection pipe drained.
    pub eject_clear: Vec<usize>,
    /// Flits popped from ejection pipes (bumps `ni_flits`).
    pub ejected_flits: u64,
    /// Completed packets, in NI order: (NI index, packet id).
    pub completions: Vec<(usize, PacketId)>,
    pub inject: Vec<InjectRes>,
}

impl ShardBuf {
    pub fn reset(&mut self) {
        self.moved = false;
        self.violation = None;
        self.head_arrivals.clear();
        self.newly_occ.clear();
        self.flit_clear.clear();
        self.credit_clear.clear();
        self.credits_delivered = 0;
        self.alloc.clear();
        self.alloc_empty.clear();
        self.alloc_list.clear();
        self.eject_clear.clear();
        self.ejected_flits = 0;
        self.completions.clear();
        self.inject.clear();
    }
}

/// Mutable view over one shard's contiguous slice of per-router state.
/// Global router index `g` lives at local offset `g - lo`.
pub(crate) struct ShardView<'a> {
    pub lo: usize,
    pub hi: usize,
    pub routers: &'a mut [Router],
    pub nis: &'a mut [Ni],
    pub flit_in: &'a mut [PortMap<Pipe<Flit>>],
    pub credit_in: &'a mut [PortMap<Pipe<usize>>],
    pub ni_credit_in: &'a mut [Pipe<usize>],
    pub eject_in: &'a mut [Pipe<Flit>],
}

/// Contiguous row-band shard boundaries as node ranges: shard `k` owns
/// rows `[k*h/shards, (k+1)*h/shards)`. Requires `1 <= shards <= height`
/// (validated by `Network::set_shards`), so every shard owns at least one
/// full row and the bands tile `0..w*h` exactly.
pub(crate) fn shard_bounds(width: u16, height: u16, shards: usize) -> Vec<(usize, usize)> {
    let (w, h) = (width as usize, height as usize);
    (0..shards)
        .map(|k| (k * h / shards * w, (k + 1) * h / shards * w))
        .collect()
}

/// Splits the six per-router state vectors into per-shard views along
/// `bounds` (which must tile the full range, as `shard_bounds` guarantees).
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_shards<'a>(
    mut routers: &'a mut [Router],
    mut nis: &'a mut [Ni],
    mut flit_in: &'a mut [PortMap<Pipe<Flit>>],
    mut credit_in: &'a mut [PortMap<Pipe<usize>>],
    mut ni_credit_in: &'a mut [Pipe<usize>],
    mut eject_in: &'a mut [Pipe<Flit>],
    bounds: &[(usize, usize)],
) -> Vec<ShardView<'a>> {
    let mut out = Vec::with_capacity(bounds.len());
    for &(lo, hi) in bounds {
        let take = hi - lo;
        let (r, rest) = routers.split_at_mut(take);
        routers = rest;
        let (n, rest) = nis.split_at_mut(take);
        nis = rest;
        let (f, rest) = flit_in.split_at_mut(take);
        flit_in = rest;
        let (c, rest) = credit_in.split_at_mut(take);
        credit_in = rest;
        let (nc, rest) = ni_credit_in.split_at_mut(take);
        ni_credit_in = rest;
        let (e, rest) = eject_in.split_at_mut(take);
        eject_in = rest;
        out.push(ShardView {
            lo,
            hi,
            routers: r,
            nis: n,
            flit_in: f,
            credit_in: c,
            ni_credit_in: nc,
            eject_in: e,
        });
    }
    out
}

/// Phase A of an SoA tick for one shard: flit delivery, credit delivery,
/// allocation, ejection and NI injection over the shard's own routers,
/// NIs and inbound pipes — in the exact sub-phase and index order of the
/// reference kernel restricted to this shard. Everything that crosses a
/// router boundary (pipe pushes toward neighbours, PM events, packet
/// metadata, global counters, bit updates) is recorded in `buf` for the
/// serial commit. Routers the reference kernel would visit but not change
/// (empty pipes, empty datapath, idle NI) have clear bits and are never
/// visited at all — that skip is the entire speedup, and it is exact
/// because those visits are pure no-ops.
pub(crate) fn shard_phase_a<A: Avail>(
    sv: &mut ShardView<'_>,
    ctx: &TickCtx<'_>,
    avail: &A,
    buf: &mut ShardBuf,
) {
    let now = ctx.now;
    let (lo, hi) = (sv.lo, sv.hi);

    // --- 1. deliver flits -------------------------------------------------
    {
        let routers = &mut *sv.routers;
        let flit_in = &mut *sv.flit_in;
        let buf = &mut *buf;
        for_each_one(ctx.flit_pend, lo, hi, |idx| {
            let li = idx - lo;
            let was_occupied = (ctx.occ[idx / 64] >> (idx % 64)) & 1 == 1;
            for port in Port::ALL {
                while let Some(flit) = flit_in[li][port].pop_ready(now) {
                    buf.moved = true;
                    if ctx.check
                        && ctx.violation_open
                        && buf.violation.is_none()
                        && avail.is_off(NodeId(idx as u16))
                    {
                        buf.violation = Some(NodeId(idx as u16));
                    }
                    if flit.kind.is_head() {
                        buf.head_arrivals.push(HeadArrival {
                            router: NodeId(idx as u16),
                            dst: flit.dst,
                            packet: flit.packet,
                            counted_hop: port != Port::Local,
                        });
                    }
                    routers[li].latch(port, flit, now);
                }
            }
            if !was_occupied && !routers[li].datapath_empty() {
                buf.newly_occ.push(idx);
            }
            if Port::ALL.iter().all(|&p| flit_in[li][p].is_empty()) {
                buf.flit_clear.push(idx);
            }
        });
    }

    // --- 2. deliver credits -----------------------------------------------
    {
        let routers = &mut *sv.routers;
        let nis = &mut *sv.nis;
        let credit_in = &mut *sv.credit_in;
        let ni_credit_in = &mut *sv.ni_credit_in;
        let buf = &mut *buf;
        for_each_one(ctx.credit_pend, lo, hi, |idx| {
            let li = idx - lo;
            for port in Port::ALL {
                while let Some(vc) = credit_in[li][port].pop_ready(now) {
                    buf.credits_delivered += 1;
                    routers[li].credit(port, vc);
                }
            }
            while let Some(vc) = ni_credit_in[li].pop_ready(now) {
                buf.credits_delivered += 1;
                nis[li].credit(vc);
            }
            if ni_credit_in[li].is_empty() && Port::ALL.iter().all(|&p| credit_in[li][p].is_empty())
            {
                buf.credit_clear.push(idx);
            }
        });
    }

    // --- 3. allocate ------------------------------------------------------
    // Sweep the routers occupied at the start of the tick (occ bits) merged
    // with those that just latched their first flit (newly_occ), ascending.
    let mut list = std::mem::take(&mut buf.alloc_list);
    {
        let mut np = 0;
        let newly = &buf.newly_occ;
        for_each_one(ctx.occ, lo, hi, |idx| {
            while np < newly.len() && newly[np] < idx {
                list.push(newly[np]);
                np += 1;
            }
            if np < newly.len() && newly[np] == idx {
                np += 1;
            }
            list.push(idx);
        });
        list.extend_from_slice(&newly[np..]);
    }
    for &idx in &list {
        let li = idx - lo;
        if sv.routers[li].datapath_empty() {
            // Stale occ bit (cannot normally happen); retire it.
            buf.alloc_empty.push(idx);
            continue;
        }
        let here = NodeId(idx as u16);
        let down_on = PortMap::from_fn(|p| match p {
            Port::Local => true,
            Port::Link(d) => ctx
                .view
                .topo
                .neighbor(here, d)
                .is_some_and(|n| avail.downstream_on(n)),
        });
        let outcome = sv.routers[li].allocate(now, &down_on);
        if !outcome.departures.is_empty() || !outcome.pg_blocked.is_empty() {
            buf.alloc.push((idx, outcome));
        }
        if sv.routers[li].datapath_empty() {
            buf.alloc_empty.push(idx);
        }
    }
    list.clear();
    buf.alloc_list = list;

    // --- 4. eject ---------------------------------------------------------
    {
        let nis = &mut *sv.nis;
        let eject_in = &mut *sv.eject_in;
        let buf = &mut *buf;
        for_each_one(ctx.eject_pend, lo, hi, |idx| {
            let li = idx - lo;
            while let Some(flit) = eject_in[li].pop_ready(now) {
                buf.ejected_flits += 1;
                buf.moved = true;
                if let Some(done) = nis[li].eject(&flit) {
                    buf.completions.push((idx, done));
                }
            }
            if eject_in[li].is_empty() {
                buf.eject_clear.push(idx);
            }
        });
    }

    // --- 5. inject --------------------------------------------------------
    {
        let nis = &mut *sv.nis;
        let flit_in = &mut *sv.flit_in;
        let buf = &mut *buf;
        for_each_one(ctx.ni_pend, lo, hi, |idx| {
            let li = idx - lo;
            let node = NodeId(idx as u16);
            let outcome = nis[li].tick_inject(now, avail.local_on(node));
            let sent = if let Some(flit) = outcome.sent {
                flit_in[li][Port::Local].push_at(flit, now + 1 + ctx.link);
                true
            } else {
                false
            };
            buf.inject.push(InjectRes {
                idx,
                newly_ready: outcome.newly_ready,
                blocked_on_local: outcome.blocked_on_local,
                head_injected: outcome.head_injected,
                sent,
                mid_after: sent && nis[li].mid_packet(),
                pending_after: nis[li].pending() > 0,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(words: &[u64], lo: usize, hi: usize) -> Vec<usize> {
        let mut v = Vec::new();
        for_each_one(words, lo, hi, |i| v.push(i));
        v
    }

    #[test]
    fn bitwords_set_clear_get_roundtrip() {
        let mut b = BitWords::new(130);
        assert_eq!(b.len(), 130);
        assert!(b.none_set());
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            b.set(i);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
        b.clear_all();
        assert!(b.none_set());
    }

    /// The last word is partial: bits past `len` never appear in sweeps
    /// even if a full-word mask would cover them.
    #[test]
    fn sweep_respects_last_partial_word() {
        let mut b = BitWords::new(70);
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 70);
        let seen = ones(b.words(), 0, 70);
        assert_eq!(seen.len(), 70);
        assert_eq!(*seen.last().unwrap(), 69);
        // A sub-range ending inside the last word.
        assert_eq!(ones(b.words(), 64, 67), vec![64, 65, 66]);
    }

    /// Shard ranges that start/end mid-word (e.g. a 12-wide mesh: rows
    /// wrap around word boundaries at columns that are not multiples of
    /// 64) must mask both edges of the sweep.
    #[test]
    fn sweep_masks_both_edges_of_wraparound_columns() {
        // 12x12 mesh: row 5 spans bits 60..72 — crosses the word boundary.
        let mut b = BitWords::new(144);
        for i in 0..144 {
            b.set(i);
        }
        assert_eq!(ones(b.words(), 60, 72), (60..72).collect::<Vec<_>>());
        // Only the wrapped column bits inside the range, nothing outside.
        let mut c = BitWords::new(144);
        c.set(59);
        c.set(60);
        c.set(63);
        c.set(64);
        c.set(71);
        c.set(72);
        assert_eq!(ones(c.words(), 60, 72), vec![60, 63, 64, 71]);
    }

    #[test]
    fn sweep_is_ascending_and_range_exact() {
        let mut b = BitWords::new(256);
        let set = [3usize, 64, 65, 100, 191, 192, 255];
        for &i in &set {
            b.set(i);
        }
        assert_eq!(ones(b.words(), 0, 256), set.to_vec());
        assert_eq!(ones(b.words(), 64, 192), vec![64, 65, 100, 191]);
        assert_eq!(ones(b.words(), 66, 100), Vec::<usize>::new());
        assert_eq!(ones(b.words(), 100, 101), vec![100]);
        assert_eq!(ones(b.words(), 10, 10), Vec::<usize>::new());
    }

    #[test]
    fn shard_bounds_tile_rows_exactly() {
        // 16x16, 4 shards: 4 rows each.
        assert_eq!(
            shard_bounds(16, 16, 4),
            vec![(0, 64), (64, 128), (128, 192), (192, 256)]
        );
        // Uneven split: 5 rows over 3 shards -> 1/2/2 rows.
        assert_eq!(shard_bounds(4, 5, 3), vec![(0, 4), (4, 12), (12, 20)]);
        // One shard owns everything.
        assert_eq!(shard_bounds(8, 8, 1), vec![(0, 64)]);
        // shards == rows: one row each.
        let per_row = shard_bounds(3, 4, 4);
        assert_eq!(per_row, vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
        // Bounds always tile 0..w*h with no gaps.
        for shards in 1..=7 {
            let b = shard_bounds(12, 7, shards);
            assert_eq!(b[0].0, 0);
            assert_eq!(b.last().unwrap().1, 84);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].0 < w[0].1, "empty shard in {b:?}");
            }
        }
    }
}
