//! Cycle-resolved observability for `punchsim`: structured event tracing,
//! flight recording, periodic time-series sampling, and trace exporters.
//!
//! The Power Punch argument (HPCA 2015, §4) is a *timing* claim — punches
//! launched `min(H, remaining hops)` ahead plus NI slack hide the wakeup
//! latency — and end-of-run aggregates cannot show whether an individual
//! wakeup actually arrived in time. This crate makes the timeline itself
//! observable:
//!
//! * [`event`] — the [`Event`] taxonomy: power transitions, punch
//!   emit/deliver, WU assertions, NI slack-1/slack-2 firings, BET epochs,
//!   stalls, force-wake escalations, injected faults.
//! * [`sink`] — the [`EventSink`] trait with a no-op sink (zero-overhead
//!   disabled path), a bounded ring-buffer flight recorder, and an
//!   unbounded capture sink.
//! * [`sampler`] — rolls cumulative counters into per-interval time series
//!   (latency, off-fraction, punch-wire utilization, escalations).
//! * [`export`] — JSONL, CSV and Chrome trace-event JSON renderers (the
//!   latter loads in `chrome://tracing` / Perfetto with one track per
//!   router and flow arrows for punch signals).
//! * [`json`] — the workspace's shared dependency-free JSON value
//!   (deterministic emission, strict parsing), previously private to the
//!   campaign crate.
//!
//! Only `punchsim-types` sits below this crate, so every layer of the
//! simulator — NoC, power managers, fault injector, CMP, campaign runner —
//! can emit events without dependency cycles.

pub mod event;
pub mod export;
pub mod json;
pub mod sampler;
pub mod sink;

pub use event::{Event, FaultKind, PowerTag, Stamped};
pub use export::{chrome_trace, parse_jsonl, to_csv, to_jsonl};
pub use json::{Json, JsonError};
pub use sampler::{IntervalRow, Sample, Sampler};
pub use sink::{EventSink, NullSink, RingSink, VecSink};
