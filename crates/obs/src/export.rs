//! Exporters: render a captured event stream as JSONL, CSV, or Chrome
//! trace-event JSON.
//!
//! * **JSONL** — one compact JSON object per line, lossless: everything
//!   [`to_jsonl`] emits, [`parse_jsonl`] reads back into identical
//!   [`Stamped`] values.
//! * **CSV** — `cycle,kind,subject,detail` rows for spreadsheet triage.
//! * **Chrome trace-event JSON** — loadable in `chrome://tracing` or
//!   Perfetto: one named track per router carrying its `off`/`waking`
//!   duration slices, instants for WU assertions / escalations / faults,
//!   and flow arrows from each punch emission to its delivery at the
//!   targeted router. Events are emitted sorted by timestamp, so viewers
//!   that require monotonic streams load the file directly.

use crate::event::{Event, PowerTag, Stamped};
use crate::json::{Json, JsonError};
use std::collections::HashMap;

/// Renders events as JSON Lines, one compact object per event.
pub fn to_jsonl(events: &[Stamped]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().render_compact());
        out.push('\n');
    }
    out
}

/// Parses a JSONL stream produced by [`to_jsonl`]. Blank lines are
/// ignored; any malformed line is an error naming its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Stamped>, JsonError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| JsonError {
            at: e.at,
            message: format!("line {}: {}", i + 1, e.message),
        })?;
        let s = Stamped::from_json(&v).ok_or_else(|| JsonError {
            at: 0,
            message: format!("line {}: not a stamped event", i + 1),
        })?;
        events.push(s);
    }
    Ok(events)
}

/// Renders events as CSV with a header row.
pub fn to_csv(events: &[Stamped]) -> String {
    let mut out = String::from("cycle,kind,subject,detail\n");
    for e in events {
        let subject = match e.event.subject() {
            Some(n) => n.0.to_string(),
            None => String::new(),
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            e.cycle,
            e.event.kind(),
            subject,
            e.event
        ));
    }
    out
}

/// The synthetic track (`tid`) carrying network-wide events (stalls) in a
/// Chrome trace, placed after every router track.
fn net_tid(max_router: u16) -> i64 {
    max_router as i64 + 1
}

/// Renders events as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object form), sorted by timestamp.
///
/// Mapping: one cycle = 1µs of trace time; `pid` 0 is the mesh; each
/// router is a named thread (`tid` = router index) whose `off`/`waking`
/// phases become duration (`X`) slices. Punch emissions start flow arrows
/// (`s`) that finish (`f`) at the targeted router's delivery; WU
/// assertions, force-wakes, slack firings and faults are instants on their
/// router's track.
pub fn chrome_trace(events: &[Stamped]) -> String {
    // (ts, seq, record): sort by ts, stable in original order within a tie.
    let mut rows: Vec<(u64, usize, Json)> = Vec::new();
    let mut seq = 0usize;
    let mut push = |rows: &mut Vec<(u64, usize, Json)>, ts: u64, v: Json| {
        rows.push((ts, seq, v));
        seq += 1;
    };

    let max_router = events
        .iter()
        .filter_map(|e| e.event.subject())
        .map(|n| n.0)
        .max()
        .unwrap_or(0);
    let end_ts = events.last().map(|e| e.cycle).unwrap_or(0);

    // Track metadata: name every router thread plus the network track.
    for tid in 0..=max_router as i64 {
        push(&mut rows, 0, meta_thread(tid, &format!("R{tid}")));
    }
    push(&mut rows, 0, meta_thread(net_tid(max_router), "network"));

    // Per-router power phase being drawn: (tag, since).
    let mut open: HashMap<u16, (PowerTag, u64)> = HashMap::new();
    // Punch flows awaiting delivery at their target: target -> flow ids.
    let mut pending: HashMap<u16, Vec<i64>> = HashMap::new();
    let mut next_flow: i64 = 1;

    for e in events {
        let ts = e.cycle;
        match e.event {
            Event::Power { router, from, to } => {
                if let Some((tag, since)) = open.remove(&router.0) {
                    debug_assert_eq!(tag, from, "power track out of sync");
                    push(
                        &mut rows,
                        since,
                        slice(tag.label(), "power", since, ts, router.0),
                    );
                }
                if to != PowerTag::On {
                    open.insert(router.0, (to, ts));
                }
            }
            Event::PunchEmit { router, target, .. } => {
                let id = next_flow;
                next_flow += 1;
                pending.entry(target.0).or_default().push(id);
                push(
                    &mut rows,
                    ts,
                    slice("punch-emit", "punch", ts, ts + 1, router.0),
                );
                push(&mut rows, ts, flow("s", id, ts, router.0));
            }
            Event::PunchDeliver { router } => {
                if let Some(id) = pending.get_mut(&router.0).and_then(|q| {
                    if q.is_empty() {
                        None
                    } else {
                        Some(q.remove(0))
                    }
                }) {
                    push(
                        &mut rows,
                        ts,
                        slice("punch-arrive", "punch", ts, ts + 1, router.0),
                    );
                    push(&mut rows, ts, flow("f", id, ts, router.0));
                } else {
                    push(
                        &mut rows,
                        ts,
                        instant("punch-notify", "punch", ts, router.0 as i64),
                    );
                }
            }
            Event::Stall { .. } => {
                push(
                    &mut rows,
                    ts,
                    instant("stall", "watchdog", ts, net_tid(max_router)),
                );
            }
            ref ev => {
                let tid = ev
                    .subject()
                    .map(|n| n.0 as i64)
                    .unwrap_or(net_tid(max_router));
                push(&mut rows, ts, instant(ev.kind(), category(ev), ts, tid));
            }
        }
    }

    // Close power phases still open when the capture ended.
    for (router, (tag, since)) in open {
        let end = end_ts.max(since + 1);
        push(
            &mut rows,
            since,
            slice(tag.label(), "power", since, end, router),
        );
    }

    rows.sort_by_key(|(ts, seq, _)| (*ts, *seq));
    let mut doc = Json::obj();
    doc.push(
        "traceEvents",
        Json::Arr(rows.into_iter().map(|(_, _, v)| v).collect()),
    );
    doc.push("displayTimeUnit", Json::Str("ms".to_string()));
    doc.render()
}

fn category(ev: &Event) -> &'static str {
    match ev {
        Event::Power { .. } | Event::BetEpoch { .. } => "power",
        Event::PunchEmit { .. } | Event::PunchDeliver { .. } => "punch",
        Event::WuAssert { .. } | Event::ForceWake { .. } | Event::Stall { .. } => "watchdog",
        Event::Slack1 { .. } | Event::Slack2 { .. } | Event::NiReady { .. } => "ni",
        Event::Inject { .. } | Event::Deliver { .. } => "packet",
        Event::Fault { .. } => "fault",
    }
}

fn base(name: &str, cat: &str, ph: &str, ts: u64, tid: i64) -> Json {
    let mut o = Json::obj();
    o.push("name", Json::Str(name.to_string()));
    o.push("cat", Json::Str(cat.to_string()));
    o.push("ph", Json::Str(ph.to_string()));
    o.push("ts", Json::Int(ts as i64));
    o.push("pid", Json::Int(0));
    o.push("tid", Json::Int(tid));
    o
}

fn meta_thread(tid: i64, name: &str) -> Json {
    let mut o = base("thread_name", "__metadata", "M", 0, tid);
    let mut args = Json::obj();
    args.push("name", Json::Str(name.to_string()));
    o.push("args", args);
    o
}

fn slice(name: &str, cat: &str, start: u64, end: u64, router: u16) -> Json {
    let mut o = base(name, cat, "X", start, router as i64);
    o.push("dur", Json::Int((end - start) as i64));
    o
}

fn instant(name: &str, cat: &str, ts: u64, tid: i64) -> Json {
    let mut o = base(name, cat, "i", ts, tid);
    o.push("s", Json::Str("t".to_string()));
    o
}

fn flow(ph: &str, id: i64, ts: u64, router: u16) -> Json {
    let mut o = base("punch", "punch", ph, ts, router as i64);
    o.push("id", Json::Int(id));
    if ph == "f" {
        o.push("bp", Json::Str("e".to_string()));
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;
    use punchsim_types::NodeId;

    fn demo_events() -> Vec<Stamped> {
        let r = |n: u16| NodeId(n);
        vec![
            Stamped {
                cycle: 0,
                event: Event::Power {
                    router: r(5),
                    from: PowerTag::On,
                    to: PowerTag::Off,
                },
            },
            Stamped {
                cycle: 3,
                event: Event::Slack1 {
                    node: r(26),
                    dst: r(31),
                },
            },
            Stamped {
                cycle: 4,
                event: Event::PunchEmit {
                    router: r(26),
                    dst: r(31),
                    target: r(29),
                },
            },
            Stamped {
                cycle: 7,
                event: Event::PunchDeliver { router: r(29) },
            },
            Stamped {
                cycle: 8,
                event: Event::Power {
                    router: r(5),
                    from: PowerTag::Off,
                    to: PowerTag::Waking,
                },
            },
            Stamped {
                cycle: 8,
                event: Event::BetEpoch {
                    router: r(5),
                    off_cycles: 8,
                },
            },
            Stamped {
                cycle: 10,
                event: Event::WuAssert { router: r(9) },
            },
            Stamped {
                cycle: 12,
                event: Event::Fault {
                    kind: FaultKind::WuDropped,
                    router: r(9),
                },
            },
            Stamped {
                cycle: 16,
                event: Event::Power {
                    router: r(5),
                    from: PowerTag::Waking,
                    to: PowerTag::On,
                },
            },
            Stamped {
                cycle: 20,
                event: Event::ForceWake { router: r(9) },
            },
            Stamped {
                cycle: 25,
                event: Event::Stall {
                    stalled_for: 10,
                    in_flight: 2,
                },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips_losslessly() {
        let events = demo_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_parser_names_the_bad_line() {
        let err = parse_jsonl("{\"cycle\":1,\"kind\":\"wu-assert\",\"router\":2}\nnot json\n")
            .unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
        let err = parse_jsonl("{\"cycle\":1,\"kind\":\"mystery\"}\n").unwrap_err();
        assert!(err.message.contains("line 1"), "{err}");
    }

    #[test]
    fn csv_has_header_and_one_row_per_event() {
        let events = demo_events();
        let csv = to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,kind,subject,detail");
        assert_eq!(lines.len(), events.len() + 1);
        // Exactly four columns everywhere (event Display is comma-free).
        for line in &lines {
            assert_eq!(line.matches(',').count(), 3, "{line}");
        }
    }

    /// Satellite: the Chrome trace export is valid JSON and its event
    /// timestamps are monotonically non-decreasing.
    #[test]
    fn chrome_trace_is_valid_json_with_monotonic_timestamps() {
        let text = chrome_trace(&demo_events());
        let doc = Json::parse(&text).expect("valid JSON");
        let evs = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!evs.is_empty());
        let mut last = 0i64;
        for e in evs {
            let ts = e
                .get("ts")
                .and_then(Json::as_f64)
                .expect("every record has ts") as i64;
            assert!(ts >= last, "timestamps regressed: {ts} after {last}");
            last = ts;
            for key in ["name", "ph", "pid", "tid"] {
                assert!(e.get(key).is_some(), "record missing {key}");
            }
        }
    }

    #[test]
    fn chrome_trace_draws_power_slices_and_punch_flows() {
        let text = chrome_trace(&demo_events());
        let doc = Json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phases: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        // Power off/waking phases became duration slices...
        let slices: Vec<&Json> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert!(slices
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("off")));
        assert!(slices
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("waking")));
        // ...the punch emission opened a flow that finished at the target...
        assert!(phases.contains(&"s"));
        assert!(phases.contains(&"f"));
        // ...and each router got a named track.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("R5")
        }));
    }

    #[test]
    fn chrome_trace_closes_open_power_slices_at_capture_end() {
        // A router still off when the capture ends must not lose its slice.
        let events = vec![Stamped {
            cycle: 2,
            event: Event::Power {
                router: NodeId(1),
                from: PowerTag::On,
                to: PowerTag::Off,
            },
        }];
        let text = chrome_trace(&events);
        let doc = Json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("off")
        }));
    }

    #[test]
    fn empty_capture_still_renders_a_loadable_document() {
        let text = chrome_trace(&[]);
        let doc = Json::parse(&text).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());
    }
}
