//! Periodic time-series sampling: per-interval metrics rolled from
//! cumulative counters.
//!
//! The simulator's aggregates (`NetStats`, `PgCounters`) are cumulative;
//! a [`Sampler`] turns periodic snapshots of them ([`Sample`]) into
//! per-interval deltas ([`IntervalRow`]) — delivered packets, mean latency,
//! off-fraction, punch-signal link utilization, WU assertions, escalations
//! per interval — so a campaign's `.timing.json` sidecar can show how a run
//! *evolved*, not just where it ended.
//!
//! The host drives the sampler from its progress hook (`run_hooked`), which
//! keeps the sampler read-only with respect to the simulation: attaching
//! one cannot perturb deterministic results.

use crate::json::Json;
use punchsim_types::Cycle;

/// A cumulative snapshot of the counters the sampler differentiates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sample {
    /// Current cycle.
    pub cycle: Cycle,
    /// Packets delivered since measurement start.
    pub delivered: u64,
    /// Sum of measured packet latencies.
    pub latency_sum: f64,
    /// Number of measured packet latencies.
    pub latency_count: u64,
    /// Total router-cycles spent powered off, across all routers.
    pub off_cycles: u64,
    /// Punch-signal link traversals (sideband wire activity).
    pub punch_hops: u64,
    /// Watchdog force-wake escalations.
    pub escalations: u64,
    /// Conventional WU handshake assertions.
    pub wu_assertions: u64,
}

/// One closed sampling interval, as deltas of the cumulative counters.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRow {
    /// First cycle of the interval (exclusive of the previous sample).
    pub start: Cycle,
    /// Last cycle of the interval.
    pub end: Cycle,
    /// Packets delivered during the interval.
    pub delivered: u64,
    /// Mean latency of packets delivered during the interval (0 if none).
    pub avg_latency: f64,
    /// Fraction of router-cycles spent off during the interval.
    pub off_fraction: f64,
    /// Punch-signal link traversals during the interval.
    pub punch_hops: u64,
    /// Force-wake escalations during the interval.
    pub escalations: u64,
    /// WU assertions during the interval.
    pub wu_assertions: u64,
}

impl IntervalRow {
    /// Serializes into a JSON object with a stable key order.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("start", Json::Int(self.start as i64));
        o.push("end", Json::Int(self.end as i64));
        o.push("delivered", Json::Int(self.delivered as i64));
        o.push("avg_latency", Json::Float(self.avg_latency));
        o.push("off_fraction", Json::Float(self.off_fraction));
        o.push("punch_hops", Json::Int(self.punch_hops as i64));
        o.push("escalations", Json::Int(self.escalations as i64));
        o.push("wu_assertions", Json::Int(self.wu_assertions as i64));
        o
    }
}

/// Rolls periodic [`Sample`]s into [`IntervalRow`]s.
#[derive(Debug, Clone)]
pub struct Sampler {
    routers: usize,
    last: Sample,
    primed: bool,
    rows: Vec<IntervalRow>,
}

impl Sampler {
    /// Creates a sampler for a mesh of `routers` routers (used to normalize
    /// the off-fraction).
    pub fn new(routers: usize) -> Self {
        Sampler {
            routers: routers.max(1),
            last: Sample::default(),
            primed: false,
            rows: Vec::new(),
        }
    }

    /// Feeds one cumulative snapshot. The first call primes the baseline;
    /// each later call with an advanced cycle closes one interval.
    ///
    /// Counter resets (e.g. warmup-end `reset_stats`) are tolerated: deltas
    /// saturate at zero instead of underflowing.
    pub fn observe(&mut self, s: Sample) {
        if !self.primed {
            self.last = s;
            self.primed = true;
            return;
        }
        if s.cycle <= self.last.cycle {
            // Same cycle (or a host rewind after reset): re-prime.
            self.last = s;
            return;
        }
        let dt = (s.cycle - self.last.cycle) as f64;
        let d_count = s.latency_count.saturating_sub(self.last.latency_count);
        let d_sum = (s.latency_sum - self.last.latency_sum).max(0.0);
        let avg_latency = if d_count > 0 {
            d_sum / d_count as f64
        } else {
            0.0
        };
        let d_off = s.off_cycles.saturating_sub(self.last.off_cycles);
        self.rows.push(IntervalRow {
            start: self.last.cycle,
            end: s.cycle,
            delivered: s.delivered.saturating_sub(self.last.delivered),
            avg_latency,
            off_fraction: d_off as f64 / (self.routers as f64 * dt),
            punch_hops: s.punch_hops.saturating_sub(self.last.punch_hops),
            escalations: s.escalations.saturating_sub(self.last.escalations),
            wu_assertions: s.wu_assertions.saturating_sub(self.last.wu_assertions),
        });
        self.last = s;
    }

    /// The closed intervals so far.
    pub fn rows(&self) -> &[IntervalRow] {
        &self.rows
    }

    /// Consumes the sampler, returning its intervals.
    pub fn into_rows(self) -> Vec<IntervalRow> {
        self.rows
    }

    /// Serializes all intervals into a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.rows.iter().map(IntervalRow::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: Cycle, delivered: u64, sum: f64, count: u64, off: u64) -> Sample {
        Sample {
            cycle,
            delivered,
            latency_sum: sum,
            latency_count: count,
            off_cycles: off,
            punch_hops: delivered * 3,
            escalations: 0,
            wu_assertions: delivered,
        }
    }

    #[test]
    fn intervals_are_deltas_of_cumulative_counters() {
        let mut s = Sampler::new(16);
        s.observe(sample(0, 0, 0.0, 0, 0));
        s.observe(sample(100, 10, 200.0, 10, 400));
        s.observe(sample(200, 30, 700.0, 30, 400));
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].delivered, 10);
        assert_eq!(rows[0].avg_latency, 20.0);
        // 400 off router-cycles over 16 routers * 100 cycles.
        assert!((rows[0].off_fraction - 0.25).abs() < 1e-12);
        assert_eq!(rows[1].delivered, 20);
        assert_eq!(rows[1].avg_latency, 25.0);
        assert_eq!(rows[1].off_fraction, 0.0);
        assert_eq!(rows[1].punch_hops, 60);
    }

    #[test]
    fn empty_interval_has_zero_latency_not_nan() {
        let mut s = Sampler::new(4);
        s.observe(sample(0, 0, 0.0, 0, 0));
        s.observe(sample(50, 0, 0.0, 0, 0));
        assert_eq!(s.rows()[0].avg_latency, 0.0);
        assert!(s.rows()[0].avg_latency.is_finite());
    }

    #[test]
    fn counter_reset_saturates_instead_of_underflowing() {
        let mut s = Sampler::new(4);
        s.observe(sample(0, 100, 1000.0, 100, 50));
        // Host reset its stats between observations.
        s.observe(sample(10, 2, 6.0, 2, 0));
        let row = &s.rows()[0];
        assert_eq!(row.delivered, 0);
        assert_eq!(row.avg_latency, 0.0);
        assert_eq!(row.off_fraction, 0.0);
    }

    #[test]
    fn json_rows_render_deterministically() {
        let mut s = Sampler::new(4);
        s.observe(sample(0, 0, 0.0, 0, 0));
        s.observe(sample(10, 1, 5.0, 1, 0));
        let a = s.to_json().render();
        let b = s.to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"avg_latency\": 5.0"));
    }
}
