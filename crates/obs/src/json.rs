//! A minimal, dependency-free JSON value: deterministic emission and a
//! strict parser.
//!
//! The workspace is deliberately free of external crates, so every JSON
//! artifact — campaign `BENCH_*.json` files, the result store, the CI
//! baseline, and the observability layer's JSONL / Chrome-trace exports —
//! is written and read by this module. Two properties matter more than
//! generality:
//!
//! * **Deterministic emission** — object keys keep insertion order, floats
//!   use Rust's shortest round-trip formatting, indentation is fixed. The
//!   same [`Json`] value always renders to the same bytes, which is what
//!   makes "byte-identical artifacts across thread counts" a testable
//!   guarantee.
//! * **Round-tripping** — everything the emitter produces, the parser
//!   accepts, so the store and the CI comparison gate read yesterday's
//!   artifacts without a schema mismatch.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (emission is
/// deterministic); integers are kept apart from floats so cycle counters
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects: that is a
    /// programming error, not a data error).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64` (floats with integral value coerce).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// canonical artifact form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no insignificant whitespace — the form
    /// used for JSONL event streams, where one value must occupy one line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Int(_) | Json::Float(_) | Json::Str(_) => {
                self.write(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Shortest round-trip float formatting; non-finite values have no JSON
/// representation and must never reach an artifact, so they fail loudly.
fn write_f64(out: &mut String, f: f64) {
    assert!(f.is_finite(), "non-finite float in JSON artifact");
    if f == f.trunc() && f.abs() < 1e15 {
        // Keep an explicit fractional part so the value re-parses as Float:
        // integers and floats must round-trip into the same variant.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Artifacts only ever escape control characters;
                            // surrogate pairs are out of scope.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(0.5),
            Json::Float(-1234.75),
            Json::Float(3.0),
            Json::Str("hello \"world\"\nline".to_string()),
            Json::Str(String::new()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let mut inner = Json::obj();
        inner.push("latency", Json::Float(36.25));
        inner.push("delivered", Json::Int(1234));
        let v = Json::Obj(vec![
            ("schema".to_string(), Json::Str("v1".to_string())),
            ("runs".to_string(), Json::Arr(vec![inner, Json::Null])),
            ("empty_arr".to_string(), Json::Arr(vec![])),
            ("empty_obj".to_string(), Json::obj()),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn emission_is_deterministic_and_stable() {
        let mut v = Json::obj();
        v.push("b", Json::Int(1));
        v.push("a", Json::Float(2.0));
        // Insertion order, not alphabetical; fixed indentation; floats keep
        // a fractional part.
        assert_eq!(v.render(), "{\n  \"b\": 1,\n  \"a\": 2.0\n}\n");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(20000.0).render();
        assert_eq!(text, "20000.0\n");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(20000.0));
    }

    #[test]
    fn compact_rendering_roundtrips_on_one_line() {
        let mut v = Json::obj();
        v.push("kind", Json::Str("power".to_string()));
        v.push("router", Json::Int(5));
        v.push("args", Json::Arr(vec![Json::Int(1), Json::Float(2.5)]));
        let line = v.render_compact();
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(line, "{\"kind\":\"power\",\"router\":5,\"args\":[1,2.5]}");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "{} {}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn accessors_coerce_numbers() {
        let v = Json::parse("{\"i\": 7, \"f\": 7.0, \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("f").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
