//! Event sinks: where the simulator's instrumentation points deliver
//! [`Stamped`] events.
//!
//! Three implementations cover the intended operating points:
//!
//! * [`NullSink`] — the zero-overhead disabled path. Hosts keep their sink
//!   behind an `Option`, so the *usual* disabled cost is one branch; the
//!   null sink exists for call sites that want a sink unconditionally.
//! * [`RingSink`] — a bounded "flight recorder": keeps the most recent N
//!   events and counts what it evicted. This is what the watchdog dumps
//!   into a `StallReport` when a run wedges.
//! * [`VecSink`] — unbounded capture for tests and the `trace` subcommand,
//!   where the whole run's event stream becomes the artifact.

use crate::event::{Event, Stamped};
use punchsim_types::Cycle;
use std::collections::VecDeque;

/// A destination for cycle-stamped events.
///
/// Implementations must be cheap: instrumentation points fire on hot paths
/// and rely on `record` being a plain buffer write (no I/O, no locking).
pub trait EventSink: std::fmt::Debug {
    /// Records one event at `cycle`.
    fn record(&mut self, cycle: Cycle, event: &Event);

    /// The currently retained events, oldest first.
    fn snapshot(&self) -> Vec<Stamped>;

    /// Total events offered to the sink, including any it discarded.
    fn recorded(&self) -> u64;
}

/// Discards everything. The measured-zero-overhead stand-in for "tracing
/// compiled in, disabled at runtime".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _cycle: Cycle, _event: &Event) {}

    fn snapshot(&self) -> Vec<Stamped> {
        Vec::new()
    }

    fn recorded(&self) -> u64 {
        0
    }
}

/// A bounded flight recorder retaining the most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<Stamped>,
    capacity: usize,
    dropped: u64,
    recorded: u64,
}

impl RingSink {
    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for RingSink {
    fn record(&mut self, cycle: Cycle, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Stamped {
            cycle,
            event: *event,
        });
        self.recorded += 1;
    }

    fn snapshot(&self) -> Vec<Stamped> {
        self.buf.iter().copied().collect()
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Unbounded capture, for tests and whole-run trace artifacts.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<Stamped>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The captured events, oldest first.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Consumes the sink, returning the captured events.
    pub fn into_events(self) -> Vec<Stamped> {
        self.events
    }
}

impl EventSink for VecSink {
    fn record(&mut self, cycle: Cycle, event: &Event) {
        self.events.push(Stamped {
            cycle,
            event: *event,
        });
    }

    fn snapshot(&self) -> Vec<Stamped> {
        self.events.clone()
    }

    fn recorded(&self) -> u64 {
        self.events.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::NodeId;

    fn ev(n: u16) -> Event {
        Event::WuAssert { router: NodeId(n) }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut s = RingSink::new(3);
        for i in 0..5u64 {
            s.record(i, &ev(i as u16));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.recorded(), 5);
        let cycles: Vec<u64> = s.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_capacity_zero_is_clamped_not_silently_lossy() {
        let mut s = RingSink::new(0);
        s.record(7, &ev(1));
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn null_sink_drops_everything() {
        let mut s = NullSink;
        s.record(1, &ev(0));
        assert!(s.snapshot().is_empty());
        assert_eq!(s.recorded(), 0);
    }

    #[test]
    fn vec_sink_keeps_everything_in_order() {
        let mut s = VecSink::new();
        for i in 0..4u64 {
            s.record(i, &ev(i as u16));
        }
        assert_eq!(s.recorded(), 4);
        assert_eq!(s.events().len(), 4);
        assert!(s.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }
}
