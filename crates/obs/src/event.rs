//! The cycle-stamped event vocabulary of the observability layer.
//!
//! Every observable incident in a simulation — a router changing power
//! state, a punch signal being emitted or delivered, a conventional WU
//! assertion, an NI slack firing, a watchdog escalation — is one [`Event`]
//! value. Events are deliberately small (`Copy`, all-integer payloads) so
//! that recording one into a sink is a handful of word moves and the
//! disabled path stays free of allocation.
//!
//! The taxonomy follows the paper's timeline of a non-blocking wakeup
//! (§4.1–4.2): slack-1/slack-2 firings at the NI, punch emission and
//! sideband delivery, the conventional WU handshake as the safety net, and
//! the watchdog's force-wake escalation backstopping everything.

use crate::json::Json;
use punchsim_types::{Cycle, NodeId};

/// A power state label, mirroring `punchsim_noc::PowerState` without its
/// embedded `ready_at` cycle (the transition's own timestamp carries that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PowerTag {
    /// Fully powered and operational.
    On,
    /// Power-gated.
    Off,
    /// In the wakeup transient.
    Waking,
}

impl PowerTag {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            PowerTag::On => "on",
            PowerTag::Off => "off",
            PowerTag::Waking => "waking",
        }
    }

    /// Inverse of [`PowerTag::label`].
    pub fn from_label(s: &str) -> Option<PowerTag> {
        match s {
            "on" => Some(PowerTag::On),
            "off" => Some(PowerTag::Off),
            "waking" => Some(PowerTag::Waking),
            _ => None,
        }
    }
}

impl std::fmt::Display for PowerTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of sideband perturbation a [`Event::Fault`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A punch generation was silently dropped.
    PunchDropped,
    /// A punch codeword was corrupted to a different valid target set.
    PunchCorrupted,
    /// A conventional wakeup assertion was swallowed (stuck router).
    WuDropped,
    /// A stuck-off epoch armed on a router.
    StuckEpoch,
}

impl FaultKind {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::PunchDropped => "punch-dropped",
            FaultKind::PunchCorrupted => "punch-corrupted",
            FaultKind::WuDropped => "wu-dropped",
            FaultKind::StuckEpoch => "stuck-epoch",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<FaultKind> {
        match s {
            "punch-dropped" => Some(FaultKind::PunchDropped),
            "punch-corrupted" => Some(FaultKind::PunchCorrupted),
            "wu-dropped" => Some(FaultKind::WuDropped),
            "stuck-epoch" => Some(FaultKind::StuckEpoch),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One observable incident in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A router's power state changed.
    Power {
        /// The router that transitioned.
        router: NodeId,
        /// State before the transition.
        from: PowerTag,
        /// State after the transition.
        to: PowerTag,
    },
    /// A power-gated epoch ended (the router left `Off`); `off_cycles` is
    /// its length, to be judged against the break-even time.
    BetEpoch {
        /// The router whose off-epoch ended.
        router: NodeId,
        /// How many cycles the router spent gated.
        off_cycles: u64,
    },
    /// A punch signal was generated at `router` for a packet heading to
    /// `dst`, targeting the router `min(H, remaining hops)` ahead.
    PunchEmit {
        /// Where the punch was generated.
        router: NodeId,
        /// The packet's final destination.
        dst: NodeId,
        /// The punched router (H hops ahead on the XY path).
        target: NodeId,
    },
    /// The sideband fabric notified `router` (punch arrival or en-route
    /// sweep) — the router must wake or stay awake.
    PunchDeliver {
        /// The notified router.
        router: NodeId,
    },
    /// A blocked flit asserted the conventional WU handshake toward a
    /// powered-off router (the paper's safety net).
    WuAssert {
        /// The router being woken.
        router: NodeId,
    },
    /// Slack-1: the NI learned a message's destination at enqueue time.
    Slack1 {
        /// The injecting node.
        node: NodeId,
        /// The message destination.
        dst: NodeId,
    },
    /// Slack-2: a future injection became known `slack2_cycles` ahead.
    Slack2 {
        /// The node that will inject.
        node: NodeId,
    },
    /// The NI is ready to inject the head flit this cycle.
    NiReady {
        /// The injecting node.
        node: NodeId,
        /// The message destination.
        dst: NodeId,
    },
    /// A packet entered the network at its source NI.
    Inject {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A packet fully ejected at its destination.
    Deliver {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// End-to-end latency in cycles (enqueue to tail ejection).
        latency: u64,
    },
    /// The watchdog force-woke a router after a blocked-packet streak.
    ForceWake {
        /// The escalated router.
        router: NodeId,
    },
    /// The watchdog declared a no-forward-progress stall.
    Stall {
        /// Consecutive cycles without progress.
        stalled_for: u64,
        /// Packets in flight at detection.
        in_flight: u64,
    },
    /// The fault injector perturbed the sideband machinery.
    Fault {
        /// What was perturbed.
        kind: FaultKind,
        /// The router the perturbation applied to.
        router: NodeId,
    },
}

impl Event {
    /// Stable kebab-case discriminant label used by every exporter.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Power { .. } => "power",
            Event::BetEpoch { .. } => "bet-epoch",
            Event::PunchEmit { .. } => "punch-emit",
            Event::PunchDeliver { .. } => "punch-deliver",
            Event::WuAssert { .. } => "wu-assert",
            Event::Slack1 { .. } => "slack1",
            Event::Slack2 { .. } => "slack2",
            Event::NiReady { .. } => "ni-ready",
            Event::Inject { .. } => "inject",
            Event::Deliver { .. } => "deliver",
            Event::ForceWake { .. } => "force-wake",
            Event::Stall { .. } => "stall",
            Event::Fault { .. } => "fault",
        }
    }

    /// The router/node the event is principally about, when there is one
    /// (exporters use it to pick a per-router track).
    pub fn subject(&self) -> Option<NodeId> {
        match self {
            Event::Power { router, .. }
            | Event::BetEpoch { router, .. }
            | Event::PunchEmit { router, .. }
            | Event::PunchDeliver { router }
            | Event::WuAssert { router }
            | Event::ForceWake { router }
            | Event::Fault { router, .. } => Some(*router),
            Event::Slack1 { node, .. } | Event::Slack2 { node } | Event::NiReady { node, .. } => {
                Some(*node)
            }
            Event::Inject { src, .. } => Some(*src),
            Event::Deliver { dst, .. } => Some(*dst),
            Event::Stall { .. } => None,
        }
    }

    /// Serializes into a JSON object (without the cycle stamp; see
    /// [`Stamped::to_json`]).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("kind", Json::Str(self.kind().to_string()));
        match *self {
            Event::Power { router, from, to } => {
                o.push("router", Json::Int(router.0 as i64));
                o.push("from", Json::Str(from.label().to_string()));
                o.push("to", Json::Str(to.label().to_string()));
            }
            Event::BetEpoch { router, off_cycles } => {
                o.push("router", Json::Int(router.0 as i64));
                o.push("off_cycles", Json::Int(off_cycles as i64));
            }
            Event::PunchEmit {
                router,
                dst,
                target,
            } => {
                o.push("router", Json::Int(router.0 as i64));
                o.push("dst", Json::Int(dst.0 as i64));
                o.push("target", Json::Int(target.0 as i64));
            }
            Event::PunchDeliver { router } | Event::WuAssert { router } => {
                o.push("router", Json::Int(router.0 as i64));
            }
            Event::Slack1 { node, dst } | Event::NiReady { node, dst } => {
                o.push("node", Json::Int(node.0 as i64));
                o.push("dst", Json::Int(dst.0 as i64));
            }
            Event::Slack2 { node } => {
                o.push("node", Json::Int(node.0 as i64));
            }
            Event::Inject { packet, src, dst } => {
                o.push("packet", Json::Int(packet as i64));
                o.push("src", Json::Int(src.0 as i64));
                o.push("dst", Json::Int(dst.0 as i64));
            }
            Event::Deliver {
                packet,
                src,
                dst,
                latency,
            } => {
                o.push("packet", Json::Int(packet as i64));
                o.push("src", Json::Int(src.0 as i64));
                o.push("dst", Json::Int(dst.0 as i64));
                o.push("latency", Json::Int(latency as i64));
            }
            Event::ForceWake { router } => {
                o.push("router", Json::Int(router.0 as i64));
            }
            Event::Stall {
                stalled_for,
                in_flight,
            } => {
                o.push("stalled_for", Json::Int(stalled_for as i64));
                o.push("in_flight", Json::Int(in_flight as i64));
            }
            Event::Fault { kind, router } => {
                o.push("fault", Json::Str(kind.label().to_string()));
                o.push("router", Json::Int(router.0 as i64));
            }
        }
        o
    }

    /// Inverse of [`Event::to_json`]; `None` on any malformed object.
    pub fn from_json(v: &Json) -> Option<Event> {
        let node = |key: &str| -> Option<NodeId> { v.get(key)?.as_u64().map(|n| NodeId(n as u16)) };
        let int = |key: &str| -> Option<u64> { v.get(key)?.as_u64() };
        Some(match v.get("kind")?.as_str()? {
            "power" => Event::Power {
                router: node("router")?,
                from: PowerTag::from_label(v.get("from")?.as_str()?)?,
                to: PowerTag::from_label(v.get("to")?.as_str()?)?,
            },
            "bet-epoch" => Event::BetEpoch {
                router: node("router")?,
                off_cycles: int("off_cycles")?,
            },
            "punch-emit" => Event::PunchEmit {
                router: node("router")?,
                dst: node("dst")?,
                target: node("target")?,
            },
            "punch-deliver" => Event::PunchDeliver {
                router: node("router")?,
            },
            "wu-assert" => Event::WuAssert {
                router: node("router")?,
            },
            "slack1" => Event::Slack1 {
                node: node("node")?,
                dst: node("dst")?,
            },
            "slack2" => Event::Slack2 {
                node: node("node")?,
            },
            "ni-ready" => Event::NiReady {
                node: node("node")?,
                dst: node("dst")?,
            },
            "inject" => Event::Inject {
                packet: int("packet")?,
                src: node("src")?,
                dst: node("dst")?,
            },
            "deliver" => Event::Deliver {
                packet: int("packet")?,
                src: node("src")?,
                dst: node("dst")?,
                latency: int("latency")?,
            },
            "force-wake" => Event::ForceWake {
                router: node("router")?,
            },
            "stall" => Event::Stall {
                stalled_for: int("stalled_for")?,
                in_flight: int("in_flight")?,
            },
            "fault" => Event::Fault {
                kind: FaultKind::from_label(v.get("fault")?.as_str()?)?,
                router: node("router")?,
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Power { router, from, to } => write!(f, "{router} {from} -> {to}"),
            Event::BetEpoch { router, off_cycles } => {
                write!(f, "{router} off-epoch ended after {off_cycles} cycles")
            }
            Event::PunchEmit {
                router,
                dst,
                target,
            } => write!(f, "punch at {router} for dst {dst} targets {target}"),
            Event::PunchDeliver { router } => write!(f, "punch notifies {router}"),
            Event::WuAssert { router } => write!(f, "WU asserted toward {router}"),
            Event::Slack1 { node, dst } => write!(f, "slack-1 at {node} for dst {dst}"),
            Event::Slack2 { node } => write!(f, "slack-2 forewarning at {node}"),
            Event::NiReady { node, dst } => write!(f, "NI {node} ready to inject to {dst}"),
            Event::Inject { packet, src, dst } => {
                write!(f, "P{packet} injected {src} -> {dst}")
            }
            Event::Deliver {
                packet,
                src,
                dst,
                latency,
            } => write!(f, "P{packet} delivered {src} -> {dst} in {latency} cycles"),
            Event::ForceWake { router } => write!(f, "watchdog force-wakes {router}"),
            Event::Stall {
                stalled_for,
                in_flight,
            } => write!(
                f,
                "stall declared: {stalled_for} idle cycles with {in_flight} packets in flight"
            ),
            Event::Fault { kind, router } => write!(f, "fault {kind} at {router}"),
        }
    }
}

/// An [`Event`] with the cycle it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Cycle of occurrence.
    pub cycle: Cycle,
    /// What happened.
    pub event: Event,
}

impl Stamped {
    /// Serializes into a JSON object with a leading `"cycle"` member.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("cycle", Json::Int(self.cycle as i64));
        if let Json::Obj(pairs) = self.event.to_json() {
            if let Json::Obj(out) = &mut o {
                out.extend(pairs);
            }
        }
        o
    }

    /// Inverse of [`Stamped::to_json`].
    pub fn from_json(v: &Json) -> Option<Stamped> {
        Some(Stamped {
            cycle: v.get("cycle")?.as_u64()?,
            event: Event::from_json(v)?,
        })
    }
}

impl std::fmt::Display for Stamped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.cycle, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn one_of_each() -> Vec<Event> {
        vec![
            Event::Power {
                router: NodeId(5),
                from: PowerTag::Off,
                to: PowerTag::Waking,
            },
            Event::BetEpoch {
                router: NodeId(5),
                off_cycles: 42,
            },
            Event::PunchEmit {
                router: NodeId(26),
                dst: NodeId(31),
                target: NodeId(29),
            },
            Event::PunchDeliver { router: NodeId(27) },
            Event::WuAssert { router: NodeId(9) },
            Event::Slack1 {
                node: NodeId(0),
                dst: NodeId(63),
            },
            Event::Slack2 { node: NodeId(1) },
            Event::NiReady {
                node: NodeId(2),
                dst: NodeId(3),
            },
            Event::Inject {
                packet: 17,
                src: NodeId(0),
                dst: NodeId(63),
            },
            Event::Deliver {
                packet: 17,
                src: NodeId(0),
                dst: NodeId(63),
                latency: 58,
            },
            Event::ForceWake { router: NodeId(5) },
            Event::Stall {
                stalled_for: 10_000,
                in_flight: 3,
            },
            Event::Fault {
                kind: FaultKind::WuDropped,
                router: NodeId(5),
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_json() {
        for (i, ev) in one_of_each().into_iter().enumerate() {
            let s = Stamped {
                cycle: 100 + i as u64,
                event: ev,
            };
            let back = Stamped::from_json(&s.to_json()).expect("roundtrip");
            assert_eq!(back, s, "{ev:?}");
        }
    }

    #[test]
    fn display_is_informative_and_comma_free() {
        // The CSV exporter quotes nothing, so event rendering must never
        // contain commas or newlines.
        for ev in one_of_each() {
            let s = ev.to_string();
            assert!(!s.contains(','), "{s}");
            assert!(!s.contains('\n'), "{s}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn labels_roundtrip() {
        for t in [PowerTag::On, PowerTag::Off, PowerTag::Waking] {
            assert_eq!(PowerTag::from_label(t.label()), Some(t));
        }
        for k in [
            FaultKind::PunchDropped,
            FaultKind::PunchCorrupted,
            FaultKind::WuDropped,
            FaultKind::StuckEpoch,
        ] {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(PowerTag::from_label("nope"), None);
        assert_eq!(FaultKind::from_label("nope"), None);
    }
}
