//! Seeded, deterministic fault injection for the power-gating machinery.
//!
//! The Power Punch paper's central safety argument (§4.1–4.2) is that punch
//! signals are *pure optimization*: the conventional WU handshake — a level
//! signal re-asserted every stalled cycle — remains the correctness safety
//! net, so losing, corrupting or delaying punches can cost latency but never
//! deliverability. This crate makes that argument executable: a
//! [`FaultInjector`] wraps any [`PowerManager`] and perturbs the sideband
//! traffic flowing into it according to a [`FaultConfig`]:
//!
//! * **punch drops** — punch-carrying events vanish in transit;
//! * **codeword corruption** — a punch decodes to a *different valid*
//!   target set, waking the wrong routers (modeled by rewriting the
//!   destination to another in-mesh router; every single-destination set is
//!   a valid codebook entry);
//! * **wakeup jitter** — surviving events are delivered a bounded uniform
//!   number of cycles late;
//! * **dropped WU assertions** — individual cycles of the level signal are
//!   lost (only delaying wakeups while `p < 1`);
//! * **stuck-off epochs** — a router's sleep gate ignores every wakeup for
//!   a scheduled window, exercising the network watchdog's escalating
//!   force-wake recovery.
//!
//! All randomness comes from one [`SimRng`] stream seeded by
//! [`FaultConfig::seed`], independent of the traffic seed, so a fault
//! schedule is bit-reproducible across runs and stable under traffic
//! changes.

use punchsim_noc::obs::{Event, FaultKind, Stamped};
use punchsim_noc::{IdleInfo, PgCounters, PmEvent, PowerManager, PowerState};
use punchsim_types::{
    ConfigError, Cycle, FaultConfig, NodeId, SchemeKind, SimRng, StuckEpoch, Substrate,
};

pub mod choice;

pub use choice::ChoiceInjector;

/// Counts of each fault actually injected so far (as opposed to the
/// configured probabilities).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Punch-carrying events dropped in transit.
    pub punches_dropped: u64,
    /// Punch destinations rewritten to a different valid target.
    pub punches_corrupted: u64,
    /// Cycles of the conventional WU level signal lost (including every
    /// assertion swallowed by an armed stuck-off epoch).
    pub wu_dropped: u64,
    /// Events delivered late due to wakeup jitter.
    pub events_delayed: u64,
    /// Stuck-off epochs that armed.
    pub stuck_epochs_started: u64,
    /// Stuck-off epochs cleared by the watchdog's force-wake escalation
    /// (rather than expiring on their own).
    pub forced_wakes: u64,
}

impl FaultStats {
    /// Total faults injected, the value surfaced as
    /// [`PgCounters::faults_injected`].
    pub fn total(&self) -> u64 {
        self.punches_dropped
            + self.punches_corrupted
            + self.wu_dropped
            + self.events_delayed
            + self.stuck_epochs_started
    }
}

/// Lifecycle of one scheduled [`StuckEpoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochState {
    /// Waiting for the start cycle and an Off router.
    Pending,
    /// The router is stuck: externally Off, ignoring wakeups until `until`.
    Armed {
        /// First cycle at which the epoch expires on its own.
        until: Cycle,
    },
    /// Expired or cleared by a force-wake.
    Done,
}

/// A deterministic fault-injecting wrapper around any power manager.
///
/// Compose it over the scheme under test and attach the result to a
/// [`Network`](punchsim_noc::Network); the network sees the same
/// [`PowerManager`] interface, with faults applied to the event stream and
/// power states in between.
pub struct FaultInjector {
    inner: Box<dyn PowerManager>,
    topo: Substrate,
    rng: SimRng,
    cfg: FaultConfig,
    /// Events delayed by jitter, as `(due_cycle, event)`.
    delayed: Vec<(Cycle, PmEvent)>,
    /// Scratch buffer for the filtered event stream (reused across ticks).
    filtered: Vec<PmEvent>,
    epochs: Vec<(StuckEpoch, EpochState)>,
    /// `stuck[r]` while some armed epoch masks router `r` to Off.
    stuck: Vec<bool>,
    stats: FaultStats,
    /// Inner counters plus `faults_injected`, refreshed every tick so
    /// `counters()` can hand out a reference.
    counters_cache: PgCounters,
    /// Injected-fault events buffered for the network's sink; `None` while
    /// tracing is disabled.
    trace: Option<Vec<Stamped>>,
}

impl FaultInjector {
    /// Wraps `inner` with the fault schedule in `cfg` over `topo` (a bare
    /// [`punchsim_types::Mesh`] converts implicitly).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadStuckRouter`] if any scheduled stuck epoch
    /// names a router outside `topo`. This is checked here (not just in
    /// [`punchsim_types::SimConfig::validate`]) because the injector can be
    /// composed directly over hand-built managers, where the epoch would
    /// otherwise index out of bounds deep inside `advance_epochs`.
    pub fn new(
        inner: Box<dyn PowerManager>,
        cfg: &FaultConfig,
        topo: impl Into<Substrate>,
    ) -> Result<Self, ConfigError> {
        let topo: Substrate = topo.into();
        if let Some(e) = cfg.stuck_epochs.iter().find(|e| !topo.contains(e.router)) {
            return Err(ConfigError::BadStuckRouter(e.router));
        }
        let counters_cache = inner.counters().clone();
        Ok(FaultInjector {
            inner,
            topo,
            rng: SimRng::seed_from_u64(cfg.seed),
            cfg: cfg.clone(),
            delayed: Vec::new(),
            filtered: Vec::new(),
            epochs: cfg
                .stuck_epochs
                .iter()
                .map(|&e| (e, EpochState::Pending))
                .collect(),
            stuck: vec![false; topo.nodes()],
            stats: FaultStats::default(),
            counters_cache,
            trace: None,
        })
    }

    /// Faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped power manager.
    pub fn inner(&self) -> &dyn PowerManager {
        self.inner.as_ref()
    }

    /// Arms pending epochs whose start cycle has passed *and* whose router
    /// is actually Off (a powered-on router cannot be stuck off), and
    /// expires armed epochs whose window ended.
    fn advance_epochs(&mut self, cycle: Cycle) {
        let mut changed = false;
        let mut armed_now = Vec::new();
        for (e, st) in &mut self.epochs {
            match *st {
                EpochState::Pending => {
                    if cycle >= e.start && self.inner.state(e.router) == PowerState::Off {
                        *st = EpochState::Armed {
                            until: cycle.saturating_add(e.duration),
                        };
                        self.stats.stuck_epochs_started += 1;
                        armed_now.push(e.router);
                        changed = true;
                    }
                }
                EpochState::Armed { until } => {
                    if cycle >= until {
                        *st = EpochState::Done;
                        changed = true;
                    }
                }
                EpochState::Done => {}
            }
        }
        if changed {
            // A router may appear in several epochs: recompute the union.
            self.stuck.iter_mut().for_each(|s| *s = false);
            for (e, st) in &self.epochs {
                if matches!(st, EpochState::Armed { .. }) {
                    self.stuck[e.router.index()] = true;
                }
            }
        }
        for r in armed_now {
            self.record_fault(cycle, FaultKind::StuckEpoch, r);
        }
    }

    /// Buffers an injected-fault event while tracing is enabled.
    fn record_fault(&mut self, cycle: Cycle, kind: FaultKind, router: NodeId) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(Stamped {
                cycle,
                event: Event::Fault { kind, router },
            });
        }
    }

    /// Rewrites `dst` to a different in-topology router — the decoded-to-
    /// wrong-codeword model. Deterministic given the RNG stream position.
    fn corrupt_dst(&mut self, dst: NodeId) -> NodeId {
        let n = self.topo.nodes() as u16;
        if n <= 1 {
            return dst;
        }
        let pick = self.rng.random_range(0..n - 1);
        // Skip over the original so the corrupted value always differs.
        if pick >= dst.0 {
            NodeId(pick + 1)
        } else {
            NodeId(pick)
        }
    }

    /// Applies drop/corrupt/jitter to one event; pushes the survivor into
    /// `filtered` (or `delayed`).
    fn perturb(&mut self, cycle: Cycle, ev: PmEvent) {
        // Where the perturbed signal originated, for fault-event tracing.
        let origin = match ev {
            PmEvent::HeadArrival { router, .. } | PmEvent::BlockedNeed { router } => router,
            PmEvent::NiMessageKnown { node, .. }
            | PmEvent::FutureInjection { node }
            | PmEvent::NiReadyToInject { node, .. } => node,
        };
        let mut ev = ev;
        match &mut ev {
            // The conventional WU handshake: a level signal.
            PmEvent::BlockedNeed { router } => {
                if self.stuck[router.index()] {
                    // The stuck gate ignores the assertion outright.
                    self.stats.wu_dropped += 1;
                    self.record_fault(cycle, FaultKind::WuDropped, origin);
                    return;
                }
                if self.cfg.drop_wu_ppm > 0 && self.rng.random_bool_ppm(self.cfg.drop_wu_ppm) {
                    self.stats.wu_dropped += 1;
                    self.record_fault(cycle, FaultKind::WuDropped, origin);
                    return;
                }
            }
            // Punch-carrying sideband events.
            PmEvent::HeadArrival { dst, .. }
            | PmEvent::NiMessageKnown { dst, .. }
            | PmEvent::NiReadyToInject { dst, .. } => {
                if self.cfg.drop_punch_ppm > 0 && self.rng.random_bool_ppm(self.cfg.drop_punch_ppm)
                {
                    self.stats.punches_dropped += 1;
                    self.record_fault(cycle, FaultKind::PunchDropped, origin);
                    return;
                }
                if self.cfg.corrupt_punch_ppm > 0
                    && self.rng.random_bool_ppm(self.cfg.corrupt_punch_ppm)
                {
                    let d = *dst;
                    *dst = self.corrupt_dst(d);
                    self.stats.punches_corrupted += 1;
                    self.record_fault(cycle, FaultKind::PunchCorrupted, origin);
                }
            }
            // Slack-2 forewarnings carry no destination but ride the same
            // sideband, so they share the punch drop probability.
            PmEvent::FutureInjection { .. } => {
                if self.cfg.drop_punch_ppm > 0 && self.rng.random_bool_ppm(self.cfg.drop_punch_ppm)
                {
                    self.stats.punches_dropped += 1;
                    self.record_fault(cycle, FaultKind::PunchDropped, origin);
                    return;
                }
            }
        }
        if self.cfg.max_wakeup_jitter > 0 {
            let d = self.rng.random_range(0..self.cfg.max_wakeup_jitter + 1) as Cycle;
            if d > 0 {
                self.stats.events_delayed += 1;
                self.delayed.push((cycle + d, ev));
                return;
            }
        }
        self.filtered.push(ev);
    }

    fn refresh_counters(&mut self) {
        self.counters_cache = self.inner.counters().clone();
        self.counters_cache.faults_injected = self.stats.total();
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("scheme", &self.inner.kind())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PowerManager for FaultInjector {
    fn kind(&self) -> SchemeKind {
        self.inner.kind()
    }

    /// The inner state, masked to `Off` while a stuck epoch is armed on
    /// `r`. The default `is_available` goes through this method, so the
    /// network never routes into a stuck router's datapath.
    fn state(&self, r: NodeId) -> PowerState {
        if self.stuck[r.index()] {
            PowerState::Off
        } else {
            self.inner.state(r)
        }
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.advance_epochs(cycle);
        // Jittered events whose delay elapsed are delivered this cycle.
        let mut due = Vec::new();
        self.delayed.retain(|(at, ev)| {
            if *at <= cycle {
                due.push(*ev);
                false
            } else {
                true
            }
        });
        self.filtered.clear();
        self.filtered.extend(due);
        for &ev in events {
            self.perturb(cycle, ev);
        }
        let filtered = std::mem::take(&mut self.filtered);
        self.inner.tick(cycle, &filtered, idle);
        self.filtered = filtered;
        self.refresh_counters();
    }

    /// Escalated wakeup: clears any armed stuck epoch on `r` (the
    /// watchdog's force-wake overrides the faulty gate) and forwards.
    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        if self.stuck[r.index()] {
            self.stuck[r.index()] = false;
            self.stats.forced_wakes += 1;
            for (e, st) in &mut self.epochs {
                if e.router == r && matches!(st, EpochState::Armed { .. }) {
                    *st = EpochState::Done;
                }
            }
        }
        self.inner.force_wake(r, cycle);
        self.refresh_counters();
    }

    fn pending_punches(&self) -> usize {
        self.inner.pending_punches() + self.delayed.len()
    }

    fn punch_hops_at(&self) -> Option<&[u64]> {
        self.inner.punch_hops_at()
    }

    /// Earliest cycle at which this injector (or the wrapped scheme) could
    /// act: a jittered event coming due, a stuck epoch arming or expiring,
    /// or the inner manager's own horizon.
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = self.inner.next_event_at(now);
        let mut merge = |c: Cycle| {
            let c = c.max(now);
            horizon = Some(horizon.map_or(c, |h| h.min(c)));
        };
        for &(at, _) in &self.delayed {
            merge(at);
        }
        for (e, st) in &self.epochs {
            match st {
                // Arming also depends on the inner gate being Off, which
                // can change any cycle once the start has passed.
                EpochState::Pending => merge(e.start),
                EpochState::Armed { until } => merge(*until),
                EpochState::Done => {}
            }
        }
        horizon
    }

    /// Bulk-advances over a quiescent window. Safe to delegate to the
    /// wrapped manager only when the injector itself has no pending work:
    /// no jittered events in flight and every stuck epoch finished (a
    /// `Pending` epoch could arm and an `Armed` one expires on a schedule,
    /// both of which `advance_epochs` must observe per cycle).
    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        let dormant = self.delayed.is_empty()
            && self.epochs.iter().all(|(_, st)| *st == EpochState::Done)
            && idle.idle.iter().all(|&b| b);
        if dormant {
            self.inner.tick_quiet(from, to, idle);
            self.refresh_counters();
        } else {
            for c in from..to {
                self.tick(c, &[], idle);
            }
        }
    }

    fn counters(&self) -> &PgCounters {
        &self.counters_cache
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
        self.stats = FaultStats::default();
        self.refresh_counters();
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
        self.inner.set_tracing(enabled);
    }

    /// Interleaves this injector's fault events with the wrapped scheme's
    /// own trace, ordered by cycle.
    fn drain_trace(&mut self) -> Vec<Stamped> {
        let mut out = self.trace.as_mut().map(std::mem::take).unwrap_or_default();
        out.extend(self.inner.drain_trace());
        out.sort_by_key(|s| s.cycle);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_noc::AlwaysOn;
    use punchsim_types::Mesh;

    fn idle_none(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    /// A gate-array-free test double that records the events it receives.
    struct Recorder {
        counters: PgCounters,
        seen: Vec<PmEvent>,
        off: Vec<bool>,
        forced: Vec<NodeId>,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder {
                counters: PgCounters::new(n),
                seen: Vec::new(),
                off: vec![false; n],
                forced: Vec::new(),
            }
        }
    }

    impl PowerManager for Recorder {
        fn kind(&self) -> SchemeKind {
            SchemeKind::ConvPg
        }
        fn state(&self, r: NodeId) -> PowerState {
            if self.off[r.index()] {
                PowerState::Off
            } else {
                PowerState::On
            }
        }
        fn tick(&mut self, _cycle: Cycle, events: &[PmEvent], _idle: IdleInfo<'_>) {
            self.seen.extend_from_slice(events);
        }
        fn force_wake(&mut self, r: NodeId, _cycle: Cycle) {
            self.forced.push(r);
            self.off[r.index()] = false;
        }
        fn counters(&self) -> &PgCounters {
            &self.counters
        }
        fn reset_counters(&mut self) {
            self.counters.reset();
        }
    }

    fn head(router: u16, dst: u16) -> PmEvent {
        PmEvent::HeadArrival {
            router: NodeId(router),
            dst: NodeId(dst),
        }
    }

    #[test]
    fn out_of_mesh_stuck_epoch_is_a_typed_config_error() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(99),
                start: 0,
                duration: 10,
            }],
            ..FaultConfig::default()
        };
        // Previously this epoch would have indexed out of bounds deep in
        // `advance_epochs`; now construction rejects it up front.
        let err = FaultInjector::new(Box::new(Recorder::new(16)), &cfg, mesh).unwrap_err();
        assert_eq!(err, ConfigError::BadStuckRouter(NodeId(99)));
    }

    #[test]
    fn inactive_config_passes_everything_through() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig::default();
        let mut f = FaultInjector::new(Box::new(Recorder::new(16)), &cfg, mesh).unwrap();
        let evs = [head(0, 5), PmEvent::BlockedNeed { router: NodeId(3) }];
        for c in 0..10 {
            f.tick(
                c,
                &evs,
                IdleInfo {
                    idle: &idle_none(16),
                },
            );
        }
        assert_eq!(f.stats().total(), 0);
        assert_eq!(f.counters().faults_injected, 0);
    }

    #[test]
    fn full_drop_removes_all_punch_events_but_spares_wu() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            drop_punch_ppm: 1_000_000,
            ..FaultConfig::default()
        };
        let mut f = FaultInjector::new(Box::new(Recorder::new(16)), &cfg, mesh).unwrap();
        for c in 0..20 {
            f.tick(
                c,
                &[head(0, 5), PmEvent::BlockedNeed { router: NodeId(3) }],
                IdleInfo {
                    idle: &idle_none(16),
                },
            );
        }
        assert_eq!(f.stats().punches_dropped, 20);
        // The WU safety net is untouched by punch drops.
        assert_eq!(f.stats().wu_dropped, 0);
        assert_eq!(f.counters().faults_injected, 20);
    }

    #[test]
    fn corruption_rewrites_dst_to_valid_different_node() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            corrupt_punch_ppm: 1_000_000,
            seed: 7,
            ..FaultConfig::default()
        };
        let mut f = FaultInjector::new(Box::new(AlwaysOn::new(16)), &cfg, mesh).unwrap();
        for c in 0..50 {
            f.tick(
                c,
                &[head(0, 5)],
                IdleInfo {
                    idle: &idle_none(16),
                },
            );
        }
        assert_eq!(f.stats().punches_corrupted, 50);
        for _ in 0..100 {
            let d = f.corrupt_dst(NodeId(5));
            assert_ne!(d, NodeId(5));
            assert!(mesh.contains(d), "corrupted dst {d} must stay in-mesh");
        }
    }

    #[test]
    fn jitter_delays_but_never_loses_events() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            max_wakeup_jitter: 3,
            seed: 11,
            ..FaultConfig::default()
        };
        let mut f = FaultInjector::new(Box::new(Recorder::new(16)), &cfg, mesh).unwrap();
        for c in 0..40 {
            f.tick(
                c,
                &[head(1, 9)],
                IdleInfo {
                    idle: &idle_none(16),
                },
            );
        }
        // Drain the queue.
        for c in 40..50 {
            f.tick(
                c,
                &[],
                IdleInfo {
                    idle: &idle_none(16),
                },
            );
        }
        assert!(f.stats().events_delayed > 0, "jitter should trigger");
        assert_eq!(f.pending_punches(), 0, "queue fully drained");
        assert_eq!(f.stats().punches_dropped, 0, "jitter never loses events");
    }

    #[test]
    fn stuck_epoch_masks_state_and_force_wake_clears_it() {
        let mesh = Mesh::new(4, 4);
        let mut inner = Recorder::new(16);
        inner.off[3] = true; // router 3 is genuinely off
        let cfg = FaultConfig {
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(3),
                start: 5,
                duration: 1_000,
            }],
            ..FaultConfig::default()
        };
        let mut f = FaultInjector::new(Box::new(inner), &cfg, mesh).unwrap();
        let idle = idle_none(16);
        for c in 0..5 {
            f.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(f.stats().stuck_epochs_started, 0, "not armed before start");
        f.tick(5, &[], IdleInfo { idle: &idle });
        assert_eq!(f.stats().stuck_epochs_started, 1);
        assert_eq!(f.state(NodeId(3)), PowerState::Off);
        // WU assertions are swallowed while stuck.
        f.tick(
            6,
            &[PmEvent::BlockedNeed { router: NodeId(3) }],
            IdleInfo { idle: &idle },
        );
        assert_eq!(f.stats().wu_dropped, 1);
        // Escalation clears the mask and reaches the inner gate.
        f.force_wake(NodeId(3), 7);
        assert_eq!(f.stats().forced_wakes, 1);
        assert_eq!(f.state(NodeId(3)), PowerState::On, "inner force_wake ran");
        // The epoch is done: it must not re-arm.
        for c in 8..30 {
            f.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(f.stats().stuck_epochs_started, 1);
    }

    #[test]
    fn stuck_epoch_waits_for_router_to_sleep() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(2),
                start: 0,
                duration: 100,
            }],
            ..FaultConfig::default()
        };
        // The recorder keeps router 2 on: the epoch may never arm.
        let mut f = FaultInjector::new(Box::new(Recorder::new(16)), &cfg, mesh).unwrap();
        let idle = idle_none(16);
        for c in 0..10 {
            f.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(
            f.stats().stuck_epochs_started,
            0,
            "an on router cannot be stuck off"
        );
        assert_eq!(f.state(NodeId(2)), PowerState::On);
    }

    #[test]
    fn tracing_surfaces_injected_faults_as_events() {
        let mesh = Mesh::new(4, 4);
        let mut inner = Recorder::new(16);
        inner.off[3] = true;
        let cfg = FaultConfig {
            drop_punch_ppm: 1_000_000,
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(3),
                start: 0,
                duration: 100,
            }],
            ..FaultConfig::default()
        };
        let mut f = FaultInjector::new(Box::new(inner), &cfg, mesh).unwrap();
        f.set_tracing(true);
        let idle = idle_none(16);
        f.tick(
            0,
            &[head(0, 5), PmEvent::BlockedNeed { router: NodeId(3) }],
            IdleInfo { idle: &idle },
        );
        let events = f.drain_trace();
        let kinds: Vec<FaultKind> = events
            .iter()
            .filter_map(|s| match s.event {
                Event::Fault { kind, .. } => Some(kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&FaultKind::StuckEpoch), "{events:?}");
        assert!(kinds.contains(&FaultKind::PunchDropped), "{events:?}");
        assert!(kinds.contains(&FaultKind::WuDropped), "{events:?}");
        // Drained once: the buffer is empty until the next perturbation.
        assert!(f.drain_trace().is_empty());
        // Disabled tracing buffers nothing.
        f.set_tracing(false);
        f.tick(1, &[head(0, 5)], IdleInfo { idle: &idle });
        assert!(f.drain_trace().is_empty());
    }

    /// Inner double for horizon tests: always Off, no events of its own.
    struct Dormant {
        counters: PgCounters,
    }

    impl PowerManager for Dormant {
        fn kind(&self) -> SchemeKind {
            SchemeKind::ConvPg
        }
        fn state(&self, _r: NodeId) -> PowerState {
            PowerState::Off
        }
        fn tick(&mut self, _cycle: Cycle, _events: &[PmEvent], _idle: IdleInfo<'_>) {}
        fn force_wake(&mut self, _r: NodeId, _cycle: Cycle) {}
        fn counters(&self) -> &PgCounters {
            &self.counters
        }
        fn reset_counters(&mut self) {
            self.counters.reset();
        }
        fn next_event_at(&self, _now: Cycle) -> Option<Cycle> {
            None
        }
        fn tick_quiet(&mut self, _from: Cycle, _to: Cycle, _idle: IdleInfo<'_>) {}
    }

    #[test]
    fn next_event_at_tracks_epochs_and_delayed_events() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(3),
                start: 50,
                duration: 100,
            }],
            ..FaultConfig::default()
        };
        let inner = Dormant {
            counters: PgCounters::new(16),
        };
        let mut f = FaultInjector::new(Box::new(inner), &cfg, mesh).unwrap();
        // Pending epoch: the horizon is its start cycle (clamped to now).
        assert_eq!(f.next_event_at(10), Some(50));
        assert_eq!(f.next_event_at(60), Some(60));
        // A jittered event in flight bounds the horizon too.
        f.delayed.push((30, head(0, 5)));
        assert_eq!(f.next_event_at(10), Some(30));
        assert_eq!(f.next_event_at(40), Some(40), "overdue events fire now");
        f.delayed.clear();
        // Arm the epoch (the Dormant inner is Off) and check expiry.
        let idle = idle_none(16);
        f.tick(50, &[], IdleInfo { idle: &idle });
        assert_eq!(f.stats().stuck_epochs_started, 1);
        assert_eq!(f.next_event_at(60), Some(150));
        // Once every epoch is done the injector adds no horizon.
        for c in 150..152 {
            f.tick(c, &[], IdleInfo { idle: &idle });
        }
        assert_eq!(f.next_event_at(200), None);
    }

    #[test]
    fn tick_quiet_matches_per_cycle_loop_with_pending_work() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            max_wakeup_jitter: 4,
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(3),
                start: 10,
                duration: 25,
            }],
            seed: 42,
            ..FaultConfig::default()
        };
        let build = || {
            let inner = Dormant {
                counters: PgCounters::new(16),
            };
            let mut f = FaultInjector::new(Box::new(inner), &cfg, mesh).unwrap();
            let idle = idle_none(16);
            // Prologue: populate the jitter queue and arm the epoch.
            for c in 0..12 {
                f.tick(c, &[head(1, 9)], IdleInfo { idle: &idle });
            }
            f
        };
        let all_idle = vec![true; 16];
        let mut slow = build();
        for c in 12..80 {
            slow.tick(c, &[], IdleInfo { idle: &all_idle });
        }
        let mut fast = build();
        fast.tick_quiet(12, 80, IdleInfo { idle: &all_idle });
        assert_eq!(slow.stats(), fast.stats());
        assert_eq!(slow.pending_punches(), fast.pending_punches());
        assert_eq!(slow.counters(), fast.counters());
        assert_eq!(slow.next_event_at(80), fast.next_event_at(80));
    }

    #[test]
    fn dormant_tick_quiet_delegates_to_inner() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig::default();
        let mut f = FaultInjector::new(Box::new(AlwaysOn::new(16)), &cfg, mesh).unwrap();
        let all_idle = vec![true; 16];
        f.tick_quiet(0, 10_000, IdleInfo { idle: &all_idle });
        assert_eq!(f.stats().total(), 0);
        assert_eq!(f.next_event_at(10_000), None);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let mesh = Mesh::new(4, 4);
        let cfg = FaultConfig {
            drop_punch_ppm: 300_000,
            corrupt_punch_ppm: 100_000,
            drop_wu_ppm: 50_000,
            max_wakeup_jitter: 2,
            seed: 99,
            ..FaultConfig::default()
        };
        let run = || {
            let mut f = FaultInjector::new(Box::new(AlwaysOn::new(16)), &cfg, mesh).unwrap();
            let idle = vec![false; 16];
            for c in 0..500 {
                f.tick(
                    c,
                    &[
                        head((c % 16) as u16, ((c * 3) % 16) as u16),
                        PmEvent::BlockedNeed {
                            router: NodeId((c % 16) as u16),
                        },
                    ],
                    IdleInfo { idle: &idle },
                );
            }
            f.stats().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical seeds must give identical fault streams");
        assert!(a.total() > 0, "faults should actually fire at these rates");
    }
}
