//! RNG-free, per-cycle fault injection driven by explicit
//! [`FaultChoice`]s — the enumerable counterpart of [`FaultInjector`].
//!
//! The sampled injector answers "does the protocol survive *this seeded
//! schedule* of faults"; the exhaustive checker needs the universally
//! quantified question "does it survive *every* schedule". That requires
//! the fault alphabet to be an explicit per-cycle decision the checker can
//! branch on, so [`ChoiceInjector`] holds no RNG at all: each tick applies
//! exactly the one [`FaultChoice`] armed for it (default
//! [`FaultChoice::None`]) to the whole event stream of that cycle, then
//! forgets it.
//!
//! A choice applies to *all* matching events of its cycle — the coarsest
//! granularity that still contains every single-event fault, keeping the
//! branching factor (and thus the reachable set) small without losing
//! counterexamples: any stall reachable by dropping one punch among
//! several is also reachable on a path where the punches occur on
//! different cycles.
//!
//! [`FaultInjector`]: crate::FaultInjector

use punchsim_noc::obs::{Event, FaultKind, Stamped};
use punchsim_noc::{IdleInfo, PgCounters, PmEvent, PowerManager, PowerState};
use punchsim_types::{ConfigError, Cycle, FaultChoice, NodeId, SchemeKind, Substrate};

use crate::FaultStats;

/// Stuck-off status of one router under scripted [`FaultChoice::StickOff`]
/// faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stuck {
    /// Not stuck.
    No,
    /// Stuck until the given cycle (exclusive), then released.
    Until(Cycle),
    /// Stuck until the watchdog force-wakes the router — the adversarial
    /// worst case for the bounded-stall property.
    Forever,
}

/// A deterministic, enumerable fault-injecting wrapper: faults happen if
/// and only if a [`FaultChoice`] was armed for the cycle (via
/// [`PowerManager::arm_choice`], reached through
/// `Network::arm_fault_choice`).
pub struct ChoiceInjector {
    inner: Box<dyn PowerManager>,
    topo: Substrate,
    /// The choice armed for the next tick; consumed (reset to `None`) by it.
    armed: FaultChoice,
    stuck: Vec<Stuck>,
    /// Scratch for the filtered event stream (reused across ticks).
    filtered: Vec<PmEvent>,
    stats: FaultStats,
    counters_cache: PgCounters,
    /// Injected-fault events buffered for the network's sink; `None` while
    /// tracing is disabled.
    trace: Option<Vec<Stamped>>,
}

impl ChoiceInjector {
    /// Wraps `inner` over `topo` (a bare [`punchsim_types::Mesh`] converts
    /// implicitly) with no faults armed.
    pub fn new(inner: Box<dyn PowerManager>, topo: impl Into<Substrate>) -> Self {
        let topo: Substrate = topo.into();
        let counters_cache = inner.counters().clone();
        ChoiceInjector {
            inner,
            topo,
            armed: FaultChoice::None,
            stuck: vec![Stuck::No; topo.nodes()],
            filtered: Vec::new(),
            stats: FaultStats::default(),
            counters_cache,
            trace: None,
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped power manager.
    pub fn inner(&self) -> &dyn PowerManager {
        self.inner.as_ref()
    }

    /// Validates a choice against the topology without arming it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadStuckRouter`] when the choice names a
    /// router outside the topology (both `CorruptPunch` destinations and
    /// `StickOff` routers must be in range — the same class of bug the
    /// validated [`crate::FaultInjector::new`] rejects).
    pub fn validate_choice(&self, choice: FaultChoice) -> Result<(), ConfigError> {
        let named = match choice {
            FaultChoice::CorruptPunch { dst } => Some(dst),
            FaultChoice::StickOff { router, .. } => Some(router),
            _ => None,
        };
        match named {
            Some(r) if !self.topo.contains(r) => Err(ConfigError::BadStuckRouter(r)),
            _ => Ok(()),
        }
    }

    /// Buffers an injected-fault event while tracing is enabled.
    fn record_fault(&mut self, cycle: Cycle, kind: FaultKind, router: NodeId) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(Stamped {
                cycle,
                event: Event::Fault { kind, router },
            });
        }
    }

    /// Releases timed stuck windows whose expiry has passed.
    fn expire_stuck(&mut self, cycle: Cycle) {
        for s in &mut self.stuck {
            if let Stuck::Until(until) = *s {
                if cycle >= until {
                    *s = Stuck::No;
                }
            }
        }
    }

    fn refresh_counters(&mut self) {
        self.counters_cache = self.inner.counters().clone();
        self.counters_cache.faults_injected = self.stats.total();
    }

    /// Applies `choice` to one event: `true` keeps it (possibly rewritten
    /// in place), `false` drops it. Stuck routers swallow their WU
    /// assertions regardless of the choice — that is what "stuck" means.
    fn apply(&mut self, cycle: Cycle, choice: FaultChoice, ev: &mut PmEvent) -> bool {
        if let PmEvent::BlockedNeed { router } = *ev {
            if self.stuck[router.index()] != Stuck::No {
                self.stats.wu_dropped += 1;
                self.record_fault(cycle, FaultKind::WuDropped, router);
                return false;
            }
        }
        match (choice, ev) {
            (FaultChoice::DropWu, &mut PmEvent::BlockedNeed { router }) => {
                self.stats.wu_dropped += 1;
                self.record_fault(cycle, FaultKind::WuDropped, router);
                false
            }
            (
                FaultChoice::DropPunch,
                &mut (PmEvent::HeadArrival { router: origin, .. }
                | PmEvent::NiMessageKnown { node: origin, .. }
                | PmEvent::NiReadyToInject { node: origin, .. }
                | PmEvent::FutureInjection { node: origin }),
            ) => {
                self.stats.punches_dropped += 1;
                self.record_fault(cycle, FaultKind::PunchDropped, origin);
                false
            }
            (
                FaultChoice::CorruptPunch { dst: bad },
                PmEvent::HeadArrival {
                    router: origin,
                    dst,
                }
                | PmEvent::NiMessageKnown { node: origin, dst }
                | PmEvent::NiReadyToInject { node: origin, dst },
            ) => {
                if *dst != bad {
                    *dst = bad;
                    let origin = *origin;
                    self.stats.punches_corrupted += 1;
                    self.record_fault(cycle, FaultKind::PunchCorrupted, origin);
                }
                true
            }
            _ => true,
        }
    }
}

impl std::fmt::Debug for ChoiceInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChoiceInjector")
            .field("scheme", &self.inner.kind())
            .field("armed", &self.armed)
            .field("stats", &self.stats)
            .finish()
    }
}

impl PowerManager for ChoiceInjector {
    fn kind(&self) -> SchemeKind {
        self.inner.kind()
    }

    /// The inner state, masked to `Off` while the router is stuck (the
    /// faulty sleep gate keeps the datapath unpowered no matter what the
    /// scheme decided).
    fn state(&self, r: NodeId) -> PowerState {
        if self.stuck[r.index()] != Stuck::No {
            PowerState::Off
        } else {
            self.inner.state(r)
        }
    }

    fn tick(&mut self, cycle: Cycle, events: &[PmEvent], idle: IdleInfo<'_>) {
        self.expire_stuck(cycle);
        let choice = std::mem::take(&mut self.armed);
        if let FaultChoice::StickOff { router, duration } = choice {
            // Only an Off router can have its sleep gate stick: the fault
            // model freezes an existing gate state, it does not power
            // routers down.
            if self.inner.state(router) == PowerState::Off
                && self.stuck[router.index()] == Stuck::No
            {
                self.stuck[router.index()] = match duration {
                    Some(d) => Stuck::Until(cycle.saturating_add(d)),
                    None => Stuck::Forever,
                };
                self.stats.stuck_epochs_started += 1;
                self.record_fault(cycle, FaultKind::StuckEpoch, router);
            }
        }
        self.filtered.clear();
        for &ev in events {
            let mut ev = ev;
            if self.apply(cycle, choice, &mut ev) {
                self.filtered.push(ev);
            }
        }
        let filtered = std::mem::take(&mut self.filtered);
        self.inner.tick(cycle, &filtered, idle);
        self.filtered = filtered;
        self.refresh_counters();
    }

    /// Escalated wakeup: releases any stuck window on `r` (the watchdog's
    /// force-wake overrides the faulty gate) and forwards.
    fn force_wake(&mut self, r: NodeId, cycle: Cycle) {
        if self.stuck[r.index()] != Stuck::No {
            self.stuck[r.index()] = Stuck::No;
            self.stats.forced_wakes += 1;
        }
        self.inner.force_wake(r, cycle);
        self.refresh_counters();
    }

    fn pending_punches(&self) -> usize {
        self.inner.pending_punches()
    }

    fn punch_hops_at(&self) -> Option<&[u64]> {
        self.inner.punch_hops_at()
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = self.inner.next_event_at(now);
        for s in &self.stuck {
            if let Stuck::Until(until) = *s {
                let c = until.max(now);
                horizon = Some(horizon.map_or(c, |h| h.min(c)));
            }
        }
        horizon
    }

    /// Bulk-advances over a quiescent window; safe to delegate only while
    /// the injector is fully dormant (nothing armed, nothing stuck).
    fn tick_quiet(&mut self, from: Cycle, to: Cycle, idle: IdleInfo<'_>) {
        let dormant = self.armed.is_none()
            && self.stuck.iter().all(|s| *s == Stuck::No)
            && idle.idle.iter().all(|&b| b);
        if dormant {
            self.inner.tick_quiet(from, to, idle);
            self.refresh_counters();
        } else {
            for c in from..to {
                self.tick(c, &[], idle);
            }
        }
    }

    fn counters(&self) -> &PgCounters {
        &self.counters_cache
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
        self.stats = FaultStats::default();
        self.refresh_counters();
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
        self.inner.set_tracing(enabled);
    }

    fn drain_trace(&mut self) -> Vec<Stamped> {
        let mut out = self.trace.as_mut().map(std::mem::take).unwrap_or_default();
        out.extend(self.inner.drain_trace());
        out.sort_by_key(|s| s.cycle);
        out
    }

    fn clone_boxed(&self) -> Option<Box<dyn PowerManager>> {
        let inner = self.inner.clone_boxed()?;
        Some(Box::new(ChoiceInjector {
            inner,
            topo: self.topo,
            armed: self.armed,
            stuck: self.stuck.clone(),
            filtered: Vec::new(),
            stats: self.stats.clone(),
            counters_cache: self.counters_cache.clone(),
            trace: self.trace.clone(),
        }))
    }

    fn encode_state(&self, now: Cycle, out: &mut Vec<u8>) -> bool {
        use punchsim_noc::snapshot::{put_u64, put_u8};
        // The armed choice is consumed by the very next tick; the checker
        // encodes states *between* ticks, where it is always `None`.
        debug_assert!(self.armed.is_none(), "encode_state with a choice armed");
        for s in &self.stuck {
            match *s {
                Stuck::No => {
                    put_u8(out, 0);
                    put_u64(out, 0);
                }
                Stuck::Until(until) => {
                    put_u8(out, 1);
                    put_u64(out, until.saturating_sub(now));
                }
                Stuck::Forever => {
                    put_u8(out, 2);
                    put_u64(out, 0);
                }
            }
        }
        self.inner.encode_state(now, out)
    }

    fn arm_choice(&mut self, choice: FaultChoice) -> bool {
        if self.validate_choice(choice).is_err() {
            return false;
        }
        self.armed = choice;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_noc::AlwaysOn;
    use punchsim_types::Mesh;

    fn idle_none(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    fn head(router: u16, dst: u16) -> PmEvent {
        PmEvent::HeadArrival {
            router: NodeId(router),
            dst: NodeId(dst),
        }
    }

    /// Minimal inner double: per-router on/off switch, records events.
    struct Recorder {
        counters: PgCounters,
        seen: Vec<PmEvent>,
        off: Vec<bool>,
    }

    impl Recorder {
        fn new(n: usize) -> Self {
            Recorder {
                counters: PgCounters::new(n),
                seen: Vec::new(),
                off: vec![false; n],
            }
        }
    }

    impl PowerManager for Recorder {
        fn kind(&self) -> SchemeKind {
            SchemeKind::ConvPg
        }
        fn state(&self, r: NodeId) -> PowerState {
            if self.off[r.index()] {
                PowerState::Off
            } else {
                PowerState::On
            }
        }
        fn tick(&mut self, _cycle: Cycle, events: &[PmEvent], _idle: IdleInfo<'_>) {
            self.seen.extend_from_slice(events);
        }
        fn force_wake(&mut self, r: NodeId, _cycle: Cycle) {
            self.off[r.index()] = false;
        }
        fn counters(&self) -> &PgCounters {
            &self.counters
        }
        fn reset_counters(&mut self) {
            self.counters.reset();
        }
    }

    #[test]
    fn unarmed_ticks_pass_everything_through() {
        let mesh = Mesh::new(4, 4);
        let mut f = ChoiceInjector::new(Box::new(Recorder::new(16)), mesh);
        let idle = idle_none(16);
        for c in 0..10 {
            f.tick(
                c,
                &[head(0, 5), PmEvent::BlockedNeed { router: NodeId(3) }],
                IdleInfo { idle: &idle },
            );
        }
        assert_eq!(f.stats().total(), 0);
    }

    #[test]
    fn armed_choice_is_one_shot() {
        let mesh = Mesh::new(4, 4);
        let mut f = ChoiceInjector::new(Box::new(Recorder::new(16)), mesh);
        let idle = idle_none(16);
        assert!(f.arm_choice(FaultChoice::DropPunch));
        f.tick(0, &[head(0, 5)], IdleInfo { idle: &idle });
        assert_eq!(f.stats().punches_dropped, 1);
        // The next tick is fault-free again.
        f.tick(1, &[head(0, 5)], IdleInfo { idle: &idle });
        assert_eq!(f.stats().punches_dropped, 1);
    }

    #[test]
    fn drop_wu_swallows_the_level_signal_for_one_cycle() {
        let mesh = Mesh::new(4, 4);
        let mut f = ChoiceInjector::new(Box::new(Recorder::new(16)), mesh);
        let idle = idle_none(16);
        assert!(f.arm_choice(FaultChoice::DropWu));
        f.tick(
            0,
            &[PmEvent::BlockedNeed { router: NodeId(3) }, head(0, 5)],
            IdleInfo { idle: &idle },
        );
        assert_eq!(f.stats().wu_dropped, 1);
        assert_eq!(f.stats().punches_dropped, 0, "punches unaffected");
    }

    #[test]
    fn corrupt_punch_rewrites_all_destinations_that_cycle() {
        let mesh = Mesh::new(4, 4);
        let mut f = ChoiceInjector::new(Box::new(Recorder::new(16)), mesh);
        let idle = idle_none(16);
        assert!(f.arm_choice(FaultChoice::CorruptPunch { dst: NodeId(9) }));
        f.tick(0, &[head(0, 5), head(1, 7)], IdleInfo { idle: &idle });
        assert_eq!(f.stats().punches_corrupted, 2);
    }

    #[test]
    fn stick_off_only_applies_to_an_off_router_and_expires() {
        let mesh = Mesh::new(4, 4);
        let mut inner = Recorder::new(16);
        inner.off[3] = true;
        let mut f = ChoiceInjector::new(Box::new(inner), mesh);
        let idle = idle_none(16);
        // Router 2 is on: the choice is a no-op.
        assert!(f.arm_choice(FaultChoice::StickOff {
            router: NodeId(2),
            duration: Some(5),
        }));
        f.tick(0, &[], IdleInfo { idle: &idle });
        assert_eq!(f.stats().stuck_epochs_started, 0);
        // Router 3 is off: it sticks, swallowing WU, until the expiry.
        assert!(f.arm_choice(FaultChoice::StickOff {
            router: NodeId(3),
            duration: Some(5),
        }));
        f.tick(1, &[], IdleInfo { idle: &idle });
        assert_eq!(f.stats().stuck_epochs_started, 1);
        assert_eq!(f.state(NodeId(3)), PowerState::Off);
        f.tick(
            2,
            &[PmEvent::BlockedNeed { router: NodeId(3) }],
            IdleInfo { idle: &idle },
        );
        assert_eq!(f.stats().wu_dropped, 1);
        // Past the expiry the mask is released (the inner gate is still
        // off, but WU assertions reach it again).
        f.tick(6, &[], IdleInfo { idle: &idle });
        f.tick(
            7,
            &[PmEvent::BlockedNeed { router: NodeId(3) }],
            IdleInfo { idle: &idle },
        );
        assert_eq!(f.stats().wu_dropped, 1, "released after expiry");
    }

    #[test]
    fn force_wake_releases_a_forever_stick() {
        let mesh = Mesh::new(4, 4);
        let mut inner = Recorder::new(16);
        inner.off[3] = true;
        let mut f = ChoiceInjector::new(Box::new(inner), mesh);
        let idle = idle_none(16);
        assert!(f.arm_choice(FaultChoice::StickOff {
            router: NodeId(3),
            duration: None,
        }));
        f.tick(0, &[], IdleInfo { idle: &idle });
        assert_eq!(f.state(NodeId(3)), PowerState::Off);
        f.force_wake(NodeId(3), 1);
        assert_eq!(f.stats().forced_wakes, 1);
        assert_eq!(f.state(NodeId(3)), PowerState::On, "inner force_wake ran");
    }

    #[test]
    fn out_of_range_choices_are_rejected_not_armed() {
        let mesh = Mesh::new(2, 2);
        let mut f = ChoiceInjector::new(Box::new(Recorder::new(4)), mesh);
        assert!(!f.arm_choice(FaultChoice::StickOff {
            router: NodeId(99),
            duration: None,
        }));
        assert!(!f.arm_choice(FaultChoice::CorruptPunch { dst: NodeId(99) }));
        assert!(f.validate_choice(FaultChoice::DropPunch).is_ok());
        // Nothing armed: the next tick is fault-free.
        let idle = idle_none(4);
        f.tick(0, &[head(0, 3)], IdleInfo { idle: &idle });
        assert_eq!(f.stats().total(), 0);
    }

    #[test]
    fn clone_boxed_and_encode_state_compose_over_always_on() {
        let mesh = Mesh::new(2, 2);
        let f = ChoiceInjector::new(Box::new(AlwaysOn::new(4)), mesh);
        let mut a = Vec::new();
        assert!(f.encode_state(0, &mut a));
        let clone = f.clone_boxed().expect("AlwaysOn is clonable");
        let mut b = Vec::new();
        assert!(clone.encode_state(0, &mut b));
        assert_eq!(a, b, "clone encodes identically");
        // A timed stick changes the encoding, and rebasing keeps two
        // time-shifted copies identical.
        let mut inner = Recorder::new(4);
        inner.off[1] = true;
        let mut g = ChoiceInjector::new(Box::new(inner), mesh);
        let idle = idle_none(4);
        assert!(g.arm_choice(FaultChoice::StickOff {
            router: NodeId(1),
            duration: Some(8),
        }));
        g.tick(0, &[], IdleInfo { idle: &idle });
        let mut c = Vec::new();
        // Recorder has no encode_state: the composition reports failure.
        assert!(!g.encode_state(1, &mut c));
    }
}
