//! Fixed-width-bucket histogram for integer-valued latency samples.

/// A histogram over `u64` samples with unit-width buckets up to a cap;
/// samples at or above the cap land in an overflow bucket.
///
/// # Examples
///
/// ```
/// use punchsim_stats::Histogram;
///
/// let mut h = Histogram::new(64);
/// h.record(10);
/// h.record(10);
/// h.record(999); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket(10), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.percentile(0.5), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with unit buckets for values `0..cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        match self.buckets.get_mut(v as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in the bucket for value `v` (0 if `v` is beyond the cap).
    pub fn bucket(&self, v: u64) -> u64 {
        self.buckets.get(v as usize).copied().unwrap_or(0)
    }

    /// Count of samples at or above the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `v` such that at least `q` (in `0.0..=1.0`) of the
    /// samples are `<= v`. Overflow samples report the cap value.
    ///
    /// Returns 0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (v, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return v as u64;
            }
        }
        self.buckets.len() as u64
    }

    /// Merges another histogram (same cap) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the caps differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "cap mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Iterates `(value, count)` for non-empty buckets, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let mut h = Histogram::new(100);
        for v in 1..=9 {
            h.record(v);
        }
        assert_eq!(h.mean(), 5.0);
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(1.0), 9);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn overflow_counted() {
        let mut h = Histogram::new(4);
        h.record(3);
        h.record(4);
        h.record(100);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        // Overflowed samples saturate the percentile at the cap.
        assert_eq!(h.percentile(1.0), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.bucket(1), 2);
        assert_eq!(a.bucket(7), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn iter_skips_empty() {
        let mut h = Histogram::new(10);
        h.record(2);
        h.record(2);
        h.record(5);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(2, 2), (5, 1)]);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = Histogram::new(10);
        assert_eq!(h.percentile(0.99), 0);
    }
}
