//! Streaming mean/min/max/variance accumulator.

/// Streaming statistics over a sequence of `f64` samples using Welford's
/// online algorithm (numerically stable, O(1) memory).
///
/// # Examples
///
/// ```
/// use punchsim_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// s.extend([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Records every sample of an iterator.
    pub fn extend(&mut self, it: impl IntoIterator<Item = f64>) {
        for v in it {
            self.record(v);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / n;
        self.mean = (self.mean * self.count as f64 + other.mean * other.count as f64) / n;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let mut s = RunningStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(all.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(all[..37].iter().copied());
        b.extend(all[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        a.record(3.0);
        let b = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }
}
