//! Aligned plain-text / CSV table rendering for figure harnesses.

use std::fmt::Write as _;

/// A simple column-aligned table builder used by the benchmark harnesses to
/// print paper figures as text.
///
/// # Examples
///
/// ```
/// use punchsim_stats::Table;
///
/// let mut t = Table::new(["scheme", "latency"]);
/// t.row(["No-PG", "18.2"]);
/// t.row(["PowerPunch-PG", "19.6"]);
/// let s = t.render();
/// assert!(s.contains("No-PG"));
/// assert!(s.lines().count() >= 4); // header + separator + 2 rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, &w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas/newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats an `f64` with `digits` decimal places, for table cells.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["xxxxx", "1"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]).row(["3", "4"]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn ragged_rows_ok() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        t.row::<&str>([]);
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 1), "2.0");
    }
}
