//! Statistics primitives and plain-text table rendering for `punchsim`.
//!
//! The figure harnesses in `punchsim-bench` print each paper table/figure as
//! an aligned text table or CSV; the building blocks live here so library
//! users can collect the same statistics programmatically.
//!
//! # Examples
//!
//! ```
//! use punchsim_stats::RunningStats;
//!
//! let mut lat = RunningStats::new();
//! for v in [10.0, 12.0, 14.0] {
//!     lat.record(v);
//! }
//! assert_eq!(lat.mean(), 12.0);
//! assert_eq!(lat.count(), 3);
//! ```

pub mod histogram;
pub mod running;
pub mod table;

pub use histogram::Histogram;
pub use running::RunningStats;
pub use table::Table;
