//! Typed errors for configuration validation and simulation execution.
//!
//! The simulator's correctness story (the paper's §4.1–4.2 "punches are only
//! an optimization" argument) is only checkable if failures surface as
//! structured data rather than panics or silent infinite loops. This module
//! defines the three layers of that story:
//!
//! * [`ConfigError`] — a configuration violates a static constraint;
//! * [`InvariantViolation`] — a per-cycle runtime invariant broke (flits
//!   lost, or a flit latched into a powered-off router's datapath);
//! * [`StallReport`] — the network made no forward progress for longer than
//!   the watchdog threshold; carries everything needed to diagnose which
//!   router or wakeup path wedged.
//!
//! All three fold into [`SimError`], the error type returned by fallible
//! network operations.

use crate::{Cycle, NodeId, PacketId, VnetId};

/// A statically invalid configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `vnets` was zero; at least one virtual network is required.
    NoVnets,
    /// A vnet had neither data nor control VCs.
    NoVcs,
    /// `router_stages` outside the modeled 3..=4 range.
    BadRouterStages(u8),
    /// `link_latency` must be at least one cycle.
    ZeroLinkLatency,
    /// A packet class had zero flits.
    EmptyPacket,
    /// `punch_hops` outside 1..=4 (the paper evaluates 2–4).
    BadPunchHops(u16),
    /// `wakeup_latency` must be non-zero.
    ZeroWakeupLatency,
    /// A fault probability exceeded 1.0 (1_000_000 ppm).
    BadProbability {
        /// Which `FaultConfig` field was out of range.
        field: &'static str,
        /// The offending parts-per-million value.
        ppm: u32,
    },
    /// A stuck-off epoch referenced a router outside the mesh.
    BadStuckRouter(NodeId),
    /// Tracing was enabled with a zero-capacity flight recorder.
    ZeroTraceCapacity,
    /// A hooked run was asked to invoke its progress hook every 0 cycles.
    ZeroHookPeriod,
    /// A topology was given degenerate dimensions (zero for a mesh,
    /// below 2 for a torus ring).
    BadTopologyDims {
        /// Topology kind name (`"mesh"`, `"torus"`, `"cmesh"`).
        kind: &'static str,
        /// Offending width.
        width: u16,
        /// Offending height.
        height: u16,
    },
    /// A concentrated mesh was given a zero concentration factor.
    BadConcentration,
    /// The routing function's turn model admits cycles on the chosen
    /// topology (e.g. a non-dimension-ordered turn model on a torus, whose
    /// wrap links close rings no turn restriction can break).
    CyclicRouting {
        /// Routing function name.
        routing: &'static str,
        /// Topology kind name.
        topology: &'static str,
    },
    /// A scheme tag/label did not match any registered scheme.
    UnknownScheme {
        /// The unrecognized input string.
        input: String,
    },
    /// Sharded ticking was requested with zero shards (`--shards 0`).
    ZeroShards,
    /// Sharded ticking was asked to cut the mesh into more row shards than
    /// the topology has router rows, leaving at least one shard empty.
    ShardsExceedRows {
        /// Requested shard count.
        shards: usize,
        /// Router rows available to partition.
        rows: u16,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoVnets => write!(f, "at least one virtual network is required"),
            ConfigError::NoVcs => write!(f, "each vnet needs at least one VC"),
            ConfigError::BadRouterStages(s) => {
                write!(f, "router_stages must be 3 or 4, got {s}")
            }
            ConfigError::ZeroLinkLatency => write!(f, "link_latency must be at least 1 cycle"),
            ConfigError::EmptyPacket => write!(f, "packets must have at least one flit"),
            ConfigError::BadPunchHops(h) => {
                write!(
                    f,
                    "punch_hops must be in 1..=4 (paper evaluates 2-4), got {h}"
                )
            }
            ConfigError::ZeroWakeupLatency => write!(f, "wakeup_latency must be non-zero"),
            ConfigError::BadProbability { field, ppm } => {
                write!(f, "fault probability {field} = {ppm} ppm exceeds 1_000_000")
            }
            ConfigError::BadStuckRouter(r) => {
                write!(f, "stuck-off epoch names router {r} outside the mesh")
            }
            ConfigError::ZeroTraceCapacity => {
                write!(f, "tracing is enabled but ring_capacity is 0")
            }
            ConfigError::ZeroHookPeriod => {
                write!(f, "hook period must be at least 1 cycle")
            }
            ConfigError::BadTopologyDims {
                kind,
                width,
                height,
            } => {
                write!(f, "{kind} dimensions {width}x{height} are degenerate")
            }
            ConfigError::BadConcentration => {
                write!(f, "concentrated mesh needs a concentration factor >= 1")
            }
            ConfigError::CyclicRouting { routing, topology } => {
                write!(
                    f,
                    "routing {routing} admits cycles on a {topology} \
                     (only dimension-ordered routing is deadlock-free there)"
                )
            }
            ConfigError::UnknownScheme { input } => {
                write!(
                    f,
                    "unknown scheme {input:?} (see `punchsim-cli list-schemes` \
                     for the registered tags)"
                )
            }
            ConfigError::ZeroShards => {
                write!(f, "sharded ticking needs at least 1 shard (--shards 0)")
            }
            ConfigError::ShardsExceedRows { shards, rows } => {
                write!(
                    f,
                    "{shards} shards exceed the {rows} router rows available \
                     (each shard must own at least one row)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A broken per-cycle runtime invariant detected by the network watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Flit conservation failed: every injected flit must be delivered or
    /// still in flight (`injected == delivered + in_flight`).
    FlitConservation {
        /// Cycle of detection.
        cycle: Cycle,
        /// Flits injected since construction.
        injected: u64,
        /// Flits fully delivered since construction.
        delivered: u64,
        /// Flits currently tracked in flight.
        in_flight: u64,
    },
    /// A flit was latched into the datapath of a router whose power state
    /// was `Off` — the gating protocol guarantees this never happens (a
    /// router may only sleep when nothing is in flight toward it).
    FlitIntoOffRouter {
        /// Cycle of detection.
        cycle: Cycle,
        /// The powered-off router that received a flit.
        router: NodeId,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::FlitConservation {
                cycle,
                injected,
                delivered,
                in_flight,
            } => write!(
                f,
                "cycle {cycle}: flit conservation broken \
                 (injected {injected} != delivered {delivered} + in-flight {in_flight})"
            ),
            InvariantViolation::FlitIntoOffRouter { cycle, router } => write!(
                f,
                "cycle {cycle}: flit latched into powered-off router {router}"
            ),
        }
    }
}

/// The oldest packet blocked at the moment a stall was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedPacket {
    /// Packet id.
    pub packet: PacketId,
    /// Cycles since the packet entered its NI.
    pub age: Cycle,
    /// The powered-off router it was last counted blocked on, if any.
    pub blocked_on: Option<NodeId>,
}

/// Structured diagnosis produced when the network makes no forward progress
/// for longer than the watchdog threshold, instead of silently looping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the stall was declared.
    pub cycle: Cycle,
    /// Consecutive cycles without forward progress.
    pub stalled_for: Cycle,
    /// Packets somewhere between NI enqueue and tail ejection.
    pub in_flight_packets: usize,
    /// Routers reported fully off.
    pub off_routers: Vec<NodeId>,
    /// Routers currently in their wakeup transient.
    pub waking_routers: Vec<NodeId>,
    /// The oldest packet still in flight.
    pub oldest_blocked: Option<BlockedPacket>,
    /// Punch signals still in flight or queued in the sideband fabric.
    pub pending_punches: usize,
    /// The tail of the flight recorder at detection time (pre-rendered,
    /// oldest first; empty when tracing was disabled). This is the
    /// cycle-by-cycle story of what the network did — and failed to do —
    /// in the window leading up to the stall.
    pub last_events: Vec<String>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no forward progress for {} cycles at cycle {}: {} packets in flight, \
             {} routers off, {} waking, {} punches pending",
            self.stalled_for,
            self.cycle,
            self.in_flight_packets,
            self.off_routers.len(),
            self.waking_routers.len(),
            self.pending_punches
        )?;
        if let Some(b) = &self.oldest_blocked {
            write!(f, "; oldest packet {} ({} cycles old", b.packet, b.age)?;
            match b.blocked_on {
                Some(r) => write!(f, ", blocked on {r})")?,
                None => write!(f, ")")?,
            }
        }
        if !self.last_events.is_empty() {
            write!(f, "; last {} events:", self.last_events.len())?;
            for e in &self.last_events {
                write!(f, "\n  {e}")?;
            }
        }
        Ok(())
    }
}

/// Any error a simulation run can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A node id was outside the mesh.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// A vnet id was outside the configured vnet count.
    VnetOutOfRange {
        /// The offending vnet.
        vnet: VnetId,
        /// Configured number of vnets.
        vnets: u8,
    },
    /// The watchdog declared a no-forward-progress stall.
    Stall(Box<StallReport>),
    /// A per-cycle invariant check failed.
    Invariant(InvariantViolation),
    /// A sharded-tick worker thread panicked. The persistent shard pool
    /// converts worker panics into this typed error (instead of hanging
    /// at its completion barrier or aborting the process); the pool — and
    /// the simulation loop around it — stay usable.
    ShardPanic {
        /// Index of the shard whose worker panicked (shard 0 runs on the
        /// host thread and propagates panics natively).
        shard: usize,
        /// Stringified panic payload from the worker.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} outside mesh of {nodes} nodes")
            }
            SimError::VnetOutOfRange { vnet, vnets } => {
                write!(f, "vnet {vnet} outside configured {vnets} vnets")
            }
            SimError::Stall(r) => write!(f, "network stalled: {r}"),
            SimError::Invariant(v) => write!(f, "invariant violated: {v}"),
            SimError::ShardPanic { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::BadRouterStages(7);
        assert!(e.to_string().contains('7'));
        let s = SimError::NodeOutOfRange {
            node: NodeId(99),
            nodes: 64,
        };
        assert!(s.to_string().contains("R99"));
        assert!(s.to_string().contains("64"));
    }

    #[test]
    fn stall_report_display_names_blocked_router() {
        let r = StallReport {
            cycle: 500,
            stalled_for: 200,
            in_flight_packets: 3,
            off_routers: vec![NodeId(5)],
            waking_routers: vec![],
            oldest_blocked: Some(BlockedPacket {
                packet: PacketId(7),
                age: 450,
                blocked_on: Some(NodeId(5)),
            }),
            pending_punches: 0,
            last_events: vec![],
        };
        let s = SimError::Stall(Box::new(r)).to_string();
        assert!(s.contains("P7"), "{s}");
        assert!(s.contains("R5"), "{s}");
    }

    #[test]
    fn stall_report_display_appends_flight_recorder_tail() {
        let r = StallReport {
            cycle: 500,
            stalled_for: 200,
            in_flight_packets: 1,
            off_routers: vec![],
            waking_routers: vec![],
            oldest_blocked: None,
            pending_punches: 0,
            last_events: vec![
                "[498] WU asserted toward R5".to_string(),
                "[499] fault wu-dropped at R5".to_string(),
            ],
        };
        let s = r.to_string();
        assert!(s.contains("last 2 events"), "{s}");
        assert!(s.contains("wu-dropped"), "{s}");
    }

    #[test]
    fn config_error_converts_to_sim_error() {
        let s: SimError = ConfigError::NoVnets.into();
        assert!(matches!(s, SimError::Config(ConfigError::NoVnets)));
        use std::error::Error;
        assert!(s.source().is_some());
    }
}
