//! Router port directions and small direction-indexed maps.

/// One of the four mesh link directions.
///
/// `East` is `X+`, `West` is `X-`, `South` is `Y+`, `North` is `Y-`
/// (consistent with Figure 4's row-major numbering where ids grow eastward
/// and southward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Toward smaller rows (`Y-`).
    North,
    /// Toward larger columns (`X+`).
    East,
    /// Toward larger rows (`Y+`).
    South,
    /// Toward smaller columns (`X-`).
    West,
}

impl Direction {
    /// All four directions in fixed N,E,S,W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// `true` for `East`/`West` (the X dimension).
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// `true` for `North`/`South` (the Y dimension).
    #[inline]
    pub fn is_y(self) -> bool {
        !self.is_x()
    }

    /// Stable index in `0..4`, matching [`Direction::ALL`] order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A router port: one of the four link directions or the local NI port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// Port attached to the local network interface.
    Local,
    /// Port attached to the mesh link in the given direction.
    Link(Direction),
}

impl Port {
    /// All five ports: Local first, then N,E,S,W.
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::Link(Direction::North),
        Port::Link(Direction::East),
        Port::Link(Direction::South),
        Port::Link(Direction::West),
    ];

    /// Stable index in `0..5`, matching [`Port::ALL`] order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::Link(d) => 1 + d.index(),
        }
    }

    /// The link direction, or `None` for the local port.
    #[inline]
    pub fn direction(self) -> Option<Direction> {
        match self {
            Port::Local => None,
            Port::Link(d) => Some(d),
        }
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Port::Local => f.write_str("L"),
            Port::Link(d) => write!(f, "{d}"),
        }
    }
}

impl From<Direction> for Port {
    fn from(d: Direction) -> Self {
        Port::Link(d)
    }
}

/// A fixed-size map from [`Port`] to `T`, used for per-port router state.
///
/// # Examples
///
/// ```
/// use punchsim_types::{Port, PortMap, Direction};
///
/// let mut credits: PortMap<u32> = PortMap::default();
/// credits[Port::Link(Direction::East)] = 3;
/// assert_eq!(credits[Port::Link(Direction::East)], 3);
/// assert_eq!(credits[Port::Local], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortMap<T>([T; 5]);

impl<T> PortMap<T> {
    /// Builds a map by evaluating `f` for every port.
    pub fn from_fn(mut f: impl FnMut(Port) -> T) -> Self {
        PortMap(Port::ALL.map(&mut f))
    }

    /// Iterates over `(port, &value)` pairs in [`Port::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &T)> {
        Port::ALL.iter().copied().zip(self.0.iter())
    }

    /// Iterates over `(port, &mut value)` pairs in [`Port::ALL`] order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Port, &mut T)> {
        Port::ALL.iter().copied().zip(self.0.iter_mut())
    }
}

impl<T> std::ops::Index<Port> for PortMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, p: Port) -> &T {
        &self.0[p.index()]
    }
}

impl<T> std::ops::IndexMut<Port> for PortMap<T> {
    #[inline]
    fn index_mut(&mut self, p: Port) -> &mut T {
        &mut self.0[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn indices_are_stable_and_distinct() {
        let mut seen = [false; 5];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dimension_predicates() {
        assert!(Direction::East.is_x());
        assert!(Direction::West.is_x());
        assert!(Direction::North.is_y());
        assert!(Direction::South.is_y());
    }

    #[test]
    fn portmap_from_fn() {
        let m = PortMap::from_fn(|p| p.index() * 10);
        assert_eq!(m[Port::Local], 0);
        assert_eq!(m[Port::Link(Direction::West)], 40);
        assert_eq!(m.iter().count(), 5);
    }
}
