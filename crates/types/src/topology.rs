//! First-class network topologies: the trait and its implementations.
//!
//! The paper evaluates Power Punch on an 8x8 XY mesh, but its §4.1 codeword
//! derivation is a theorem about *turn restrictions*, not about meshes or XY
//! specifically. This module lifts the substrate into a [`Topology`] trait so
//! the punch fabric, codebook enumeration, NoC kernel and campaign layer can
//! run over a 2D [`Mesh`](crate::Mesh), a wrap-around [`Torus`], or a
//! concentrated mesh ([`CMesh`]) without any of them knowing which.
//!
//! [`Substrate`] is the `Copy`/`Eq`/`Hash` handle that configuration
//! structures store; it dispatches every trait method to the concrete
//! topology and renders a stable tag for artifact ids (`8x8`, `torus8x8`,
//! `c4x4x4`).

use crate::direction::Direction;
use crate::error::ConfigError;
use crate::geometry::{Coord, Mesh};
use crate::NodeId;

/// The geometric contract every substrate provides: a `width x height`
/// router grid with row-major ids, four link directions, and enough
/// arithmetic for routing functions to plan straight-line runs without
/// walking hop by hop.
///
/// The two primitives beyond plain mesh geometry are [`Topology::delta`]
/// (the signed per-axis travel a minimal route performs, wrap-aware on a
/// torus) and [`Topology::advance`] (the closed-form coordinate jump `k`
/// hops in one direction — the basis of O(1) punch-target computation).
pub trait Topology {
    /// Number of router columns.
    fn width(&self) -> u16;

    /// Number of router rows.
    fn height(&self) -> u16;

    /// Total number of routers.
    fn nodes(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// Returns `true` if `node` is a valid id for this topology.
    fn contains(&self, node: NodeId) -> bool {
        node.index() < self.nodes()
    }

    /// Converts a node id to its coordinate (row-major, Figure 4 numbering).
    fn coord(&self, node: NodeId) -> Coord {
        debug_assert!(self.contains(node));
        Coord {
            x: node.0 % self.width(),
            y: node.0 / self.width(),
        }
    }

    /// Converts a coordinate to its node id.
    fn node(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width() && c.y < self.height());
        NodeId(c.y * self.width() + c.x)
    }

    /// The neighbour of `node` in direction `dir`, or `None` where no link
    /// exists (mesh edges; a torus always has one).
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// The signed per-axis travel `(dx, dy)` a minimal route from `from` to
    /// `to` performs: positive `dx` is eastward, positive `dy` southward.
    /// On a torus this is the shortest wrapped offset, with exact half-ring
    /// ties broken toward East/South so routing stays deterministic.
    fn delta(&self, from: NodeId, to: NodeId) -> (i32, i32);

    /// Minimal hop distance between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        let (dx, dy) = self.delta(a, b);
        (dx.unsigned_abs() + dy.unsigned_abs()) as u16
    }

    /// The node exactly `k` hops from `node` in direction `dir` — a
    /// closed-form coordinate jump, never a hop-by-hop walk.
    ///
    /// The caller must ensure the run stays on the grid (a mesh has edges);
    /// routing functions only ever advance along runs produced from
    /// [`Topology::delta`], which satisfies this by construction.
    fn advance(&self, node: NodeId, dir: Direction, k: u16) -> NodeId;

    /// If travelling from `from` in direction `dir` reaches `to` after
    /// `k >= 1` straight hops (without leaving the grid), returns `Some(k)`.
    /// This is what lets `on_path` checks stay closed-form per segment.
    fn steps_between(&self, from: NodeId, to: NodeId, dir: Direction) -> Option<u16>;

    /// `true` when links wrap around (the substrate contains rings). Turn
    /// restrictions alone cannot break cycles through wrap links, which is
    /// why config validation rejects non-dimension-ordered routing here.
    fn wraps(&self) -> bool {
        false
    }

    /// Terminals (NIs) multiplexed onto each router. 1 everywhere except a
    /// concentrated mesh, where the synthetic harness scales per-router
    /// offered load by this factor.
    fn concentration(&self) -> u16 {
        1
    }

    /// Iterates over all node ids in ascending order.
    fn iter_nodes(&self) -> std::iter::Map<std::ops::Range<u16>, fn(u16) -> NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }
}

impl Topology for Mesh {
    fn width(&self) -> u16 {
        Mesh::width(*self)
    }

    fn height(&self) -> u16 {
        Mesh::height(*self)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Mesh::neighbor(*self, node, dir)
    }

    fn delta(&self, from: NodeId, to: NodeId) -> (i32, i32) {
        let (f, t) = (Mesh::coord(*self, from), Mesh::coord(*self, to));
        (t.x as i32 - f.x as i32, t.y as i32 - f.y as i32)
    }

    fn advance(&self, node: NodeId, dir: Direction, k: u16) -> NodeId {
        let c = Mesh::coord(*self, node);
        let n = match dir {
            Direction::East => Coord::new(c.x + k, c.y),
            Direction::West => Coord::new(c.x - k, c.y),
            Direction::South => Coord::new(c.x, c.y + k),
            Direction::North => Coord::new(c.x, c.y - k),
        };
        Mesh::node(*self, n)
    }

    fn steps_between(&self, from: NodeId, to: NodeId, dir: Direction) -> Option<u16> {
        let (f, t) = (Mesh::coord(*self, from), Mesh::coord(*self, to));
        let k = match dir {
            Direction::East if f.y == t.y && t.x > f.x => t.x - f.x,
            Direction::West if f.y == t.y && t.x < f.x => f.x - t.x,
            Direction::South if f.x == t.x && t.y > f.y => t.y - f.y,
            Direction::North if f.x == t.x && t.y < f.y => f.y - t.y,
            _ => return None,
        };
        Some(k)
    }
}

/// A 2D torus: the mesh grid with every row and column closed into a ring.
///
/// Wrap links halve the network diameter but introduce cyclic channel
/// dependencies, so only dimension-ordered routing (XY/YX) is admitted on a
/// torus — see [`RoutingKind::validate_on`](crate::routing::RoutingKind).
///
/// # Examples
///
/// ```
/// use punchsim_types::{topology::{Topology, Torus}, Direction, NodeId};
///
/// let t = Torus::new(4, 4);
/// // R0 wraps west to the end of its row and north to the bottom row.
/// assert_eq!(t.neighbor(NodeId(0), Direction::West), Some(NodeId(3)));
/// assert_eq!(t.neighbor(NodeId(0), Direction::North), Some(NodeId(12)));
/// // Opposite corners are 4 hops apart instead of the mesh's 6.
/// assert_eq!(t.distance(NodeId(0), NodeId(15)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// Creates a `width x height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (a 1-wide ring is a self-loop).
    pub fn new(width: u16, height: u16) -> Self {
        Torus::try_new(width, height).expect("torus dimensions must be >= 2")
    }

    /// Creates a `width x height` torus, returning a typed error when a
    /// dimension is below 2.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadTopologyDims`] when `width < 2` or `height < 2`.
    pub fn try_new(width: u16, height: u16) -> Result<Self, ConfigError> {
        if width < 2 || height < 2 {
            return Err(ConfigError::BadTopologyDims {
                kind: "torus",
                width,
                height,
            });
        }
        Ok(Torus { width, height })
    }
}

/// Shortest wrapped offset of `d` on a ring of `n`, in `(-n/2, n/2]`:
/// exact half-ring ties resolve to the positive (East/South) direction.
fn ring_delta(d: i32, n: i32) -> i32 {
    let m = d.rem_euclid(n);
    if m * 2 > n {
        m - n
    } else {
        m
    }
}

impl Topology for Torus {
    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Some(self.advance(node, dir, 1))
    }

    fn delta(&self, from: NodeId, to: NodeId) -> (i32, i32) {
        let (f, t) = (self.coord(from), self.coord(to));
        (
            ring_delta(t.x as i32 - f.x as i32, self.width as i32),
            ring_delta(t.y as i32 - f.y as i32, self.height as i32),
        )
    }

    fn advance(&self, node: NodeId, dir: Direction, k: u16) -> NodeId {
        let c = self.coord(node);
        let (w, h) = (self.width as i32, self.height as i32);
        let (mut x, mut y) = (c.x as i32, c.y as i32);
        match dir {
            Direction::East => x = (x + k as i32).rem_euclid(w),
            Direction::West => x = (x - k as i32).rem_euclid(w),
            Direction::South => y = (y + k as i32).rem_euclid(h),
            Direction::North => y = (y - k as i32).rem_euclid(h),
        }
        self.node(Coord::new(x as u16, y as u16))
    }

    fn steps_between(&self, from: NodeId, to: NodeId, dir: Direction) -> Option<u16> {
        let (f, t) = (self.coord(from), self.coord(to));
        let (w, h) = (self.width as i32, self.height as i32);
        let k = match dir {
            Direction::East if f.y == t.y => (t.x as i32 - f.x as i32).rem_euclid(w),
            Direction::West if f.y == t.y => (f.x as i32 - t.x as i32).rem_euclid(w),
            Direction::South if f.x == t.x => (t.y as i32 - f.y as i32).rem_euclid(h),
            Direction::North if f.x == t.x => (f.y as i32 - t.y as i32).rem_euclid(h),
            _ => return None,
        };
        (k > 0).then_some(k as u16)
    }

    fn wraps(&self) -> bool {
        true
    }
}

/// A concentrated mesh: a `width x height` router grid where each router
/// multiplexes `concentration` network interfaces (terminals), as in CMesh
/// designs that trade per-tile routers for fewer, busier ones.
///
/// Routing-wise a CMesh is a mesh over its routers; the concentration
/// factor is carried as topology metadata and used by the synthetic
/// harness to scale per-router offered load (each router injects on behalf
/// of `concentration` terminals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CMesh {
    routers: Mesh,
    concentration: u16,
}

impl CMesh {
    /// Creates a concentrated mesh of `width x height` routers with
    /// `concentration` terminals each.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `concentration` is zero.
    pub fn new(width: u16, height: u16, concentration: u16) -> Self {
        CMesh::try_new(width, height, concentration).expect("invalid concentrated mesh")
    }

    /// Creates a concentrated mesh, returning a typed error on zero
    /// dimensions or zero concentration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadTopologyDims`] on a zero dimension and
    /// [`ConfigError::BadConcentration`] on a zero concentration factor.
    pub fn try_new(width: u16, height: u16, concentration: u16) -> Result<Self, ConfigError> {
        let routers = Mesh::try_new(width, height).map_err(|_| ConfigError::BadTopologyDims {
            kind: "cmesh",
            width,
            height,
        })?;
        if concentration == 0 {
            return Err(ConfigError::BadConcentration);
        }
        Ok(CMesh {
            routers,
            concentration,
        })
    }

    /// The underlying router grid.
    pub fn routers(self) -> Mesh {
        self.routers
    }
}

impl Topology for CMesh {
    fn width(&self) -> u16 {
        Mesh::width(self.routers)
    }

    fn height(&self) -> u16 {
        Mesh::height(self.routers)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Mesh::neighbor(self.routers, node, dir)
    }

    fn delta(&self, from: NodeId, to: NodeId) -> (i32, i32) {
        Topology::delta(&self.routers, from, to)
    }

    fn advance(&self, node: NodeId, dir: Direction, k: u16) -> NodeId {
        Topology::advance(&self.routers, node, dir, k)
    }

    fn steps_between(&self, from: NodeId, to: NodeId, dir: Direction) -> Option<u16> {
        Topology::steps_between(&self.routers, from, to, dir)
    }

    fn concentration(&self) -> u16 {
        self.concentration
    }
}

/// The storable topology handle: which concrete substrate a configuration,
/// spec or simulation runs on. `Copy`/`Eq`/`Hash` so it slots into configs
/// and content hashes exactly like `Mesh` did before the trait existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Substrate {
    /// Plain 2D mesh (the paper's substrate).
    Mesh(Mesh),
    /// 2D torus (wrap-around links).
    Torus(Torus),
    /// Concentrated mesh (several terminals per router).
    CMesh(CMesh),
}

macro_rules! dispatch {
    ($self:expr, $t:ident => $e:expr) => {
        match $self {
            Substrate::Mesh($t) => $e,
            Substrate::Torus($t) => $e,
            Substrate::CMesh($t) => $e,
        }
    };
}

impl Substrate {
    /// Stable tag used in artifact ids and content hashes: `8x8` for a
    /// mesh (byte-identical to the pre-trait rendering), `torus8x8` for a
    /// torus, `c4x4x4` for a concentrated mesh (`c{W}x{H}x{C}`).
    /// Never rename a tag: artifact names and baselines depend on them.
    pub fn tag(&self) -> String {
        match self {
            Substrate::Mesh(m) => format!("{}x{}", m.width(), m.height()),
            Substrate::Torus(t) => format!("torus{}x{}", Topology::width(t), Topology::height(t)),
            Substrate::CMesh(c) => format!(
                "c{}x{}x{}",
                Topology::width(c),
                Topology::height(c),
                c.concentration
            ),
        }
    }

    /// Short kind name for error messages and CLI help.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Substrate::Mesh(_) => "mesh",
            Substrate::Torus(_) => "torus",
            Substrate::CMesh(_) => "cmesh",
        }
    }

    /// Number of router columns.
    #[inline]
    pub fn width(&self) -> u16 {
        dispatch!(self, t => Topology::width(t))
    }

    /// Number of router rows.
    #[inline]
    pub fn height(&self) -> u16 {
        dispatch!(self, t => Topology::height(t))
    }

    /// Total number of routers.
    #[inline]
    pub fn nodes(&self) -> usize {
        dispatch!(self, t => Topology::nodes(t))
    }

    /// Returns `true` if `node` is a valid id for this substrate.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        dispatch!(self, t => Topology::contains(t, node))
    }

    /// Converts a node id to its coordinate.
    #[inline]
    pub fn coord(&self, node: NodeId) -> Coord {
        dispatch!(self, t => Topology::coord(t, node))
    }

    /// Converts a coordinate to its node id.
    #[inline]
    pub fn node(&self, c: Coord) -> NodeId {
        dispatch!(self, t => Topology::node(t, c))
    }

    /// The neighbour of `node` in direction `dir`, or `None` where no link
    /// exists.
    #[inline]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        dispatch!(self, t => Topology::neighbor(t, node, dir))
    }

    /// Minimal hop distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        dispatch!(self, t => Topology::distance(t, a, b))
    }

    /// Iterates over all node ids in ascending order.
    pub fn iter_nodes(&self) -> std::iter::Map<std::ops::Range<u16>, fn(u16) -> NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// Directions in which `node` has a neighbour, in fixed N,E,S,W order.
    pub fn neighbor_dirs(&self, node: NodeId) -> impl Iterator<Item = Direction> + use<> {
        let s = *self;
        Direction::ALL
            .into_iter()
            .filter(move |&d| s.neighbor(node, d).is_some())
    }

    /// Whether any link wraps around (true only for the torus).
    #[inline]
    pub fn wraps(&self) -> bool {
        dispatch!(self, t => Topology::wraps(t))
    }

    /// Terminals multiplexed per router (1 except for concentrated meshes).
    #[inline]
    pub fn concentration(&self) -> u16 {
        dispatch!(self, t => Topology::concentration(t))
    }
}

impl Topology for Substrate {
    fn width(&self) -> u16 {
        Substrate::width(self)
    }

    fn height(&self) -> u16 {
        Substrate::height(self)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Substrate::neighbor(self, node, dir)
    }

    fn delta(&self, from: NodeId, to: NodeId) -> (i32, i32) {
        dispatch!(self, t => Topology::delta(t, from, to))
    }

    fn advance(&self, node: NodeId, dir: Direction, k: u16) -> NodeId {
        dispatch!(self, t => Topology::advance(t, node, dir, k))
    }

    fn steps_between(&self, from: NodeId, to: NodeId, dir: Direction) -> Option<u16> {
        dispatch!(self, t => Topology::steps_between(t, from, to, dir))
    }

    fn wraps(&self) -> bool {
        dispatch!(self, t => Topology::wraps(t))
    }

    fn concentration(&self) -> u16 {
        dispatch!(self, t => Topology::concentration(t))
    }
}

impl Default for Substrate {
    /// The paper's default substrate: the 8x8 mesh.
    fn default() -> Self {
        Substrate::Mesh(Mesh::new(8, 8))
    }
}

impl From<Mesh> for Substrate {
    fn from(m: Mesh) -> Self {
        Substrate::Mesh(m)
    }
}

impl From<Torus> for Substrate {
    fn from(t: Torus) -> Self {
        Substrate::Torus(t)
    }
}

impl From<CMesh> for Substrate {
    fn from(c: CMesh) -> Self {
        Substrate::CMesh(c)
    }
}

impl std::fmt::Display for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_delta_and_advance_are_plain_offsets() {
        let m = Mesh::new(8, 8);
        assert_eq!(Topology::delta(&m, NodeId(27), NodeId(31)), (4, 0));
        assert_eq!(Topology::delta(&m, NodeId(31), NodeId(27)), (-4, 0));
        assert_eq!(
            Topology::advance(&m, NodeId(27), Direction::East, 4),
            NodeId(31)
        );
        assert_eq!(
            Topology::advance(&m, NodeId(27), Direction::South, 2),
            NodeId(43)
        );
    }

    #[test]
    fn mesh_steps_between_requires_straight_lines() {
        let m = Mesh::new(8, 8);
        assert_eq!(
            Topology::steps_between(&m, NodeId(26), NodeId(29), Direction::East),
            Some(3)
        );
        assert_eq!(
            Topology::steps_between(&m, NodeId(26), NodeId(29), Direction::West),
            None
        );
        // Different row: not a straight east run.
        assert_eq!(
            Topology::steps_between(&m, NodeId(26), NodeId(37), Direction::East),
            None
        );
        // Zero steps is not "between".
        assert_eq!(
            Topology::steps_between(&m, NodeId(26), NodeId(26), Direction::East),
            None
        );
    }

    #[test]
    fn torus_wraps_in_all_directions() {
        let t = Torus::new(4, 4);
        for n in t.iter_nodes() {
            for d in Direction::ALL {
                let nb = t.neighbor(n, d).expect("torus has no edges");
                assert_eq!(t.neighbor(nb, d.opposite()), Some(n), "{n} {d}");
            }
        }
    }

    #[test]
    fn torus_delta_takes_the_short_way_round() {
        let t = Torus::new(8, 8);
        // R0 -> R7 is one hop west on the ring, not seven east.
        assert_eq!(t.delta(NodeId(0), NodeId(7)), (-1, 0));
        // Exact half-ring ties break toward East/South.
        assert_eq!(t.delta(NodeId(0), NodeId(4)), (4, 0));
        assert_eq!(t.delta(NodeId(4), NodeId(0)), (4, 0));
        assert_eq!(t.distance(NodeId(0), NodeId(63)), 2);
    }

    #[test]
    fn torus_advance_matches_repeated_neighbor() {
        let t = Torus::new(5, 3);
        for n in t.iter_nodes() {
            for d in Direction::ALL {
                let mut cur = n;
                for k in 1..=6u16 {
                    cur = t.neighbor(cur, d).unwrap();
                    assert_eq!(t.advance(n, d, k), cur, "{n} {d} {k}");
                }
            }
        }
    }

    #[test]
    fn torus_steps_between_wraps() {
        let t = Torus::new(8, 8);
        // R7 east-wraps to R0 in one step.
        assert_eq!(
            t.steps_between(NodeId(7), NodeId(0), Direction::East),
            Some(1)
        );
        assert_eq!(
            t.steps_between(NodeId(0), NodeId(7), Direction::East),
            Some(7)
        );
        assert_eq!(
            t.steps_between(NodeId(0), NodeId(7), Direction::West),
            Some(1)
        );
        assert_eq!(t.steps_between(NodeId(0), NodeId(0), Direction::East), None);
    }

    #[test]
    fn torus_rejects_degenerate_dims() {
        assert!(matches!(
            Torus::try_new(1, 4),
            Err(ConfigError::BadTopologyDims { kind: "torus", .. })
        ));
        assert!(Torus::try_new(2, 2).is_ok());
    }

    #[test]
    fn cmesh_routes_like_its_router_grid() {
        let c = CMesh::new(4, 4, 4);
        let m = Mesh::new(4, 4);
        assert_eq!(Topology::nodes(&c), 16);
        assert_eq!(Topology::concentration(&c), 4);
        for n in Topology::iter_nodes(&c) {
            for d in Direction::ALL {
                assert_eq!(Topology::neighbor(&c, n, d), Mesh::neighbor(m, n, d));
            }
        }
        assert!(matches!(
            CMesh::try_new(4, 4, 0),
            Err(ConfigError::BadConcentration)
        ));
    }

    #[test]
    fn substrate_tags_are_stable() {
        assert_eq!(Substrate::from(Mesh::new(8, 8)).tag(), "8x8");
        assert_eq!(Substrate::from(Torus::new(8, 8)).tag(), "torus8x8");
        assert_eq!(Substrate::from(CMesh::new(4, 4, 4)).tag(), "c4x4x4");
        assert_eq!(Substrate::default().tag(), "8x8");
    }

    #[test]
    fn substrate_dispatch_matches_concrete() {
        let s: Substrate = Torus::new(4, 6).into();
        assert_eq!(s.nodes(), 24);
        assert_eq!(s.width(), 4);
        assert_eq!(s.height(), 6);
        assert!(Topology::wraps(&s));
        assert_eq!(s.neighbor(NodeId(0), Direction::North), Some(NodeId(20)));
        assert_eq!(s.coord(NodeId(5)), Coord::new(1, 1));
        assert_eq!(s.node(Coord::new(1, 1)), NodeId(5));
        assert_eq!(s.neighbor_dirs(NodeId(0)).count(), 4);
    }
}
