//! Enumerable fault choices for exhaustive protocol verification.
//!
//! The statistical fault injector (`punchsim-faults::FaultInjector`) samples
//! perturbations from seeded RNG streams — right for soak testing, useless
//! for model checking, where every transition out of a state must be
//! *enumerable* and *deterministic*. A [`FaultChoice`] names one adversarial
//! perturbation applied to exactly one cycle of the power-gating sideband:
//! the model checker treats each choice as one outgoing edge of the current
//! state, and the scripted injector (`punchsim-faults::ChoiceInjector`)
//! replays a recorded sequence of choices cycle by cycle to reproduce a
//! counterexample.
//!
//! The alphabet mirrors the PR 1 fault model minus wakeup jitter: jitter
//! queues events for unbounded future cycles, which would make the rebased
//! state encoding unbounded, and its effects (late punches) are already
//! subsumed by [`FaultChoice::DropPunch`] followed by fault-free cycles.

use crate::{Cycle, NodeId};

/// One adversarial perturbation of a single simulation cycle.
///
/// Granularity is per cycle, not per event: a choice applies to *every*
/// matching sideband event of the cycle it is armed for. This keeps the
/// branching factor of the model checker linear in the alphabet rather than
/// exponential in the per-cycle event count, and is conservative — the
/// adversary is strictly stronger than one that picks single events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultChoice {
    /// Fault-free cycle: every sideband event is delivered untouched.
    #[default]
    None,
    /// Every punch-carrying event of this cycle (head arrivals, slack-1,
    /// slack-2, NI-ready) vanishes in transit.
    DropPunch,
    /// Every punch-carrying event of this cycle decodes to the *different
    /// valid* destination `dst` — the wrong-codeword model.
    CorruptPunch {
        /// The destination the corrupted codewords decode to.
        dst: NodeId,
    },
    /// Every conventional WU assertion (level signal) of this cycle is lost.
    DropWu,
    /// `router`'s sleep gate wedges: it is masked to `Off` and ignores WU
    /// assertions until the epoch expires or the watchdog force-wakes it.
    StickOff {
        /// The router whose gate sticks (must currently be off — a powered
        /// router cannot be stuck off).
        router: NodeId,
        /// Self-expiry after this many cycles; `None` sticks until a
        /// force-wake clears it (the worst case the escalation path must
        /// recover from).
        duration: Option<Cycle>,
    },
}

impl FaultChoice {
    /// `true` for the fault-free choice.
    pub fn is_none(self) -> bool {
        matches!(self, FaultChoice::None)
    }

    /// Stable compact label used in `VERIFY_*.json` artifacts and
    /// counterexample listings (e.g. `none`, `drop-punch`,
    /// `corrupt-punch:3`, `stick-off:2:16`, `stick-off:2:forever`).
    pub fn label(self) -> String {
        match self {
            FaultChoice::None => "none".to_string(),
            FaultChoice::DropPunch => "drop-punch".to_string(),
            FaultChoice::CorruptPunch { dst } => format!("corrupt-punch:{}", dst.0),
            FaultChoice::DropWu => "drop-wu".to_string(),
            FaultChoice::StickOff { router, duration } => match duration {
                Some(d) => format!("stick-off:{}:{d}", router.0),
                None => format!("stick-off:{}:forever", router.0),
            },
        }
    }
}

impl std::fmt::Display for FaultChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let choices = [
            FaultChoice::None,
            FaultChoice::DropPunch,
            FaultChoice::CorruptPunch { dst: NodeId(3) },
            FaultChoice::DropWu,
            FaultChoice::StickOff {
                router: NodeId(2),
                duration: Some(16),
            },
            FaultChoice::StickOff {
                router: NodeId(2),
                duration: None,
            },
        ];
        let labels: Vec<String> = choices.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "none",
                "drop-punch",
                "corrupt-punch:3",
                "drop-wu",
                "stick-off:2:16",
                "stick-off:2:forever",
            ]
        );
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn default_is_fault_free() {
        assert!(FaultChoice::default().is_none());
        assert!(!FaultChoice::DropWu.is_none());
    }
}
