//! A small, fast, seedable pseudo-random number generator.
//!
//! The simulator's determinism guarantee — identical configuration and seed
//! reproduce a run bit-for-bit — requires an RNG whose stream is fixed
//! forever, independent of any external crate's implementation choices. This
//! module implements xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the standard pairing: SplitMix64 expands a 64-bit seed into
//! well-mixed state even for adjacent seeds like 0, 1, 2.
//!
//! # Examples
//!
//! ```
//! use punchsim_types::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(42);
//! let a = rng.random_range(0..64u16);
//! assert!(a < 64);
//! let f = rng.random_range(0.0..1.0f64);
//! assert!((0.0..1.0).contains(&f));
//! // Same seed, same stream.
//! let mut again = SimRng::seed_from_u64(42);
//! assert_eq!(again.random_range(0..64u16), a);
//! ```

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `range` (half-open, `start..end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `ppm / 1_000_000` (exact integer arithmetic;
    /// no floating point enters the decision).
    #[inline]
    pub fn random_bool_ppm(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        if ppm >= 1_000_000 {
            return true;
        }
        self.random_range(0..1_000_000u32) < ppm
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply trick (Lemire): map 64 random bits into
        // `0..bound` with negligible bias and no division on the fast path.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types [`SimRng::random_range`] can sample uniformly.
pub trait SampleRange: Copy + PartialOrd {
    /// Draws a uniform sample from `range`.
    fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    #[inline]
    fn sample(rng: &mut SimRng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.random_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_stream_is_stable() {
        // Pin the stream so accidental algorithm changes are caught: these
        // values are part of the determinism contract.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(3..17u16);
            assert!((3..17).contains(&v));
            let f = r.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let u = r.random_range(0..1u64);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SimRng::seed_from_u64(2);
        let mut counts = [0u32; 16];
        for _ in 0..16_000 {
            counts[r.random_range(0..16usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn ppm_extremes_are_exact() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!r.random_bool_ppm(0));
            assert!(r.random_bool_ppm(1_000_000));
        }
        // Around half for 500_000 ppm.
        let hits = (0..10_000).filter(|_| r.random_bool_ppm(500_000)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }
}
