//! Foundational types for the `punchsim` NoC simulator.
//!
//! This crate defines the vocabulary shared by every other `punchsim` crate:
//! node/router identifiers, mesh [`geometry`], port [`direction`]s,
//! dimension-order [`routing`], and the simulation [`config`] structures
//! mirroring Table 2 of the Power Punch paper (HPCA 2015).
//!
//! # Examples
//!
//! ```
//! use punchsim_types::{Mesh, NodeId, routing::xy_next_hop};
//!
//! let mesh = Mesh::new(8, 8);
//! let src = NodeId(27);
//! let dst = NodeId(31);
//! // XY routing moves in X first: 27 -> 28.
//! assert_eq!(xy_next_hop(mesh, src, dst), Some(NodeId(28)));
//! ```

pub mod choice;
pub mod config;
pub mod direction;
pub mod error;
pub mod geometry;
pub mod rng;
pub mod routing;
pub mod topology;

pub use choice::FaultChoice;
pub use config::{
    FaultConfig, NocConfig, PowerConfig, SchemeKind, SchemeMeta, SchemePowerProfile, SimConfig,
    StuckEpoch, TraceConfig, WatchdogConfig,
};
pub use direction::{Direction, Port, PortMap};
pub use error::{BlockedPacket, ConfigError, InvariantViolation, SimError, StallReport};
pub use geometry::{Coord, Mesh};
pub use rng::SimRng;
pub use routing::{RouteView, RoutingFunction, RoutingKind};
pub use topology::{CMesh, Substrate, Topology, Torus};

/// A simulation timestamp, in router clock cycles.
pub type Cycle = u64;

/// Identifier of a node (tile) in the mesh; routers and network interfaces
/// share this numbering, row-major from the top-left corner as in Figure 4
/// of the paper (node 0 at the north-west corner, X+ eastward, Y+ southward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the raw index as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Identifier of a packet, unique within a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a virtual network (message class). The MESI protocol in
/// `punchsim-cmp` uses three: request, forward, and response, which is the
/// minimum for deadlock freedom stated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VnetId(pub u8);

impl VnetId {
    /// Returns the raw index as a `usize`, for indexing per-vnet tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VnetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VN{}", self.0)
    }
}
