//! Simulation configuration, mirroring Table 2 of the paper.

use crate::geometry::Mesh;

/// Which power-gating scheme drives the routers (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Baseline: no power-gating, all routers always on.
    NoPg,
    /// Conventional power-gating: a sleeping router is woken only when a
    /// blocked packet at a neighbour (or the local NI) needs it.
    ConvPg,
    /// Conventional power-gating optimized with the idle timeout filter and
    /// the one-hop early wakeup at route-computation time — the paper's
    /// `ConvOpt-PG` comparison point.
    ConvOptPg,
    /// Power Punch with multi-hop punch signals only (no NI slack) —
    /// `PowerPunch-Signal`.
    PowerPunchSignal,
    /// Full Power Punch: multi-hop punch signals plus injection-node slack —
    /// `PowerPunch-PG`.
    PowerPunchFull,
}

impl SchemeKind {
    /// The four schemes evaluated in the paper's figures, in figure order.
    pub const EVALUATED: [SchemeKind; 4] = [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ];

    /// Short label used in figure output, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::NoPg => "No-PG",
            SchemeKind::ConvPg => "Conv-PG",
            SchemeKind::ConvOptPg => "ConvOpt-PG",
            SchemeKind::PowerPunchSignal => "PowerPunch-Signal",
            SchemeKind::PowerPunchFull => "PowerPunch-PG",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Router microarchitecture and network parameters (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh dimensions (Table 2: 4x4, 8x8 or 16x16; default 8x8).
    pub mesh: Mesh,
    /// Number of virtual networks (3 for MESI without deadlock).
    pub vnets: u8,
    /// Data VCs per vnet (Table 2 / §2.1: two 3-flit data VCs).
    pub data_vcs_per_vnet: u8,
    /// Buffer depth of each data VC, in flits.
    pub data_vc_depth: u8,
    /// Control VCs per vnet (§2.1: one 1-flit control VC).
    pub ctrl_vcs_per_vnet: u8,
    /// Buffer depth of each control VC, in flits.
    pub ctrl_vc_depth: u8,
    /// Router pipeline depth: 3 (look-ahead routing + speculative switch
    /// allocation, Figure 3b) or 4 (look-ahead routing, Figure 3a).
    pub router_stages: u8,
    /// Link traversal latency in cycles.
    pub link_latency: u8,
    /// Link width in bits (Table 2: 128 bits/cycle).
    pub link_width_bits: u16,
    /// NI pipeline latency in cycles (§5: "all the NI operations are packed
    /// compactly in three cycles").
    pub ni_latency: u8,
    /// Flits in a data packet (64-byte cache line over 128-bit links plus
    /// a head flit).
    pub data_packet_flits: u8,
    /// Flits in a control packet.
    pub ctrl_packet_flits: u8,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            mesh: Mesh::new(8, 8),
            vnets: 3,
            data_vcs_per_vnet: 2,
            data_vc_depth: 3,
            ctrl_vcs_per_vnet: 1,
            ctrl_vc_depth: 1,
            router_stages: 3,
            link_latency: 1,
            link_width_bits: 128,
            ni_latency: 3,
            data_packet_flits: 5,
            ctrl_packet_flits: 1,
        }
    }
}

impl NocConfig {
    /// Total VCs per input port (all vnets, data + control).
    pub fn vcs_per_port(&self) -> usize {
        self.vnets as usize * (self.data_vcs_per_vnet + self.ctrl_vcs_per_vnet) as usize
    }

    /// VCs per vnet (data + control).
    pub fn vcs_per_vnet(&self) -> usize {
        (self.data_vcs_per_vnet + self.ctrl_vcs_per_vnet) as usize
    }

    /// Zero-load per-hop latency in cycles (router pipeline + link).
    pub fn hop_latency(&self) -> u64 {
        self.router_stages as u64 + self.link_latency as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vnets == 0 {
            return Err("at least one virtual network is required".into());
        }
        if self.data_vcs_per_vnet == 0 && self.ctrl_vcs_per_vnet == 0 {
            return Err("each vnet needs at least one VC".into());
        }
        if !(3..=4).contains(&self.router_stages) {
            return Err("router_stages must be 3 or 4".into());
        }
        if self.link_latency == 0 {
            return Err("link_latency must be at least 1 cycle".into());
        }
        if self.data_packet_flits == 0 || self.ctrl_packet_flits == 0 {
            return Err("packets must have at least one flit".into());
        }
        Ok(())
    }
}

/// Power-gating parameters (§5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerConfig {
    /// Router wakeup latency in cycles (SPICE-estimated 8 in the paper;
    /// swept 6..=12 in Figure 13).
    pub wakeup_latency: u32,
    /// Break-even time in cycles (~10 for on-chip routers, paper ref. 7).
    pub break_even_time: u32,
    /// Idle timeout before sleeping, in cycles (4, consistent with paper
    /// refs. 7 and 9).
    pub idle_timeout: u32,
    /// Punch-signal hop depth H (2, 3 or 4; 3 covers Twakeup up to 9 cycles
    /// for 3-stage routers, §4.1).
    pub punch_hops: u16,
    /// Cycles of slack-2: how long before the message reaches the NI the
    /// node knows "some packet will be generated" (≈ L2/directory access
    /// latency, ~6 cycles).
    pub slack2_cycles: u32,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            wakeup_latency: 8,
            break_even_time: 10,
            idle_timeout: 4,
            punch_hops: 3,
            slack2_cycles: 6,
        }
    }
}

impl PowerConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=4).contains(&self.punch_hops) {
            return Err("punch_hops must be in 1..=4 (paper evaluates 2-4)".into());
        }
        if self.wakeup_latency == 0 {
            return Err("wakeup_latency must be non-zero".into());
        }
        Ok(())
    }
}

/// Top-level simulation configuration: network, power-gating and scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Network microarchitecture parameters.
    pub noc: NocConfig,
    /// Power-gating parameters.
    pub power: PowerConfig,
    /// Which power-gating scheme to run.
    pub scheme: SchemeKind,
    /// RNG seed for all stochastic components; a given seed reproduces a
    /// run bit-for-bit.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            noc: NocConfig::default(),
            power: PowerConfig::default(),
            scheme: SchemeKind::NoPg,
            seed: 0xC0FFEE,
        }
    }
}

impl SimConfig {
    /// A default configuration running the given scheme.
    pub fn with_scheme(scheme: SchemeKind) -> Self {
        SimConfig {
            scheme,
            ..SimConfig::default()
        }
    }

    /// Validates all sub-configurations.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.noc.validate()?;
        self.power.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        // Table 2 of the paper.
        let c = NocConfig::default();
        assert_eq!(c.mesh, Mesh::new(8, 8));
        assert_eq!(c.vnets, 3);
        assert_eq!(c.data_vc_depth, 3);
        assert_eq!(c.ctrl_vc_depth, 1);
        assert_eq!(c.link_width_bits, 128);
        assert_eq!(c.ni_latency, 3);
        assert_eq!(c.vcs_per_port(), 9);
        assert_eq!(c.hop_latency(), 4);
        c.validate().unwrap();

        let p = PowerConfig::default();
        assert_eq!(p.wakeup_latency, 8);
        assert_eq!(p.break_even_time, 10);
        assert_eq!(p.idle_timeout, 4);
        assert_eq!(p.punch_hops, 3);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = NocConfig {
            router_stages: 5,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let p = PowerConfig {
            punch_hops: 9,
            ..PowerConfig::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(SchemeKind::ConvOptPg.label(), "ConvOpt-PG");
        assert_eq!(SchemeKind::PowerPunchFull.to_string(), "PowerPunch-PG");
        assert_eq!(SchemeKind::EVALUATED.len(), 4);
    }
}
