//! Simulation configuration, mirroring Table 2 of the paper, plus the
//! fault-injection and watchdog sections that make the paper's safety-net
//! argument (§4.1–4.2: punches are pure optimization) executable.

use crate::error::ConfigError;
use crate::routing::{RouteView, RoutingKind};
use crate::topology::Substrate;
use crate::{Cycle, NodeId};

/// Which power-gating scheme drives the routers (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Baseline: no power-gating, all routers always on.
    NoPg,
    /// Conventional power-gating: a sleeping router is woken only when a
    /// blocked packet at a neighbour (or the local NI) needs it.
    ConvPg,
    /// Conventional power-gating optimized with the idle timeout filter and
    /// the one-hop early wakeup at route-computation time — the paper's
    /// `ConvOpt-PG` comparison point.
    ConvOptPg,
    /// Power Punch with multi-hop punch signals only (no NI slack) —
    /// `PowerPunch-Signal`.
    PowerPunchSignal,
    /// Full Power Punch: multi-hop punch signals plus injection-node slack —
    /// `PowerPunch-PG`.
    PowerPunchFull,
    /// Rival baseline: SDM-based circuit switching ("Ultra Low-Power
    /// SDM-based Circuit-Switching for NoCs"). A setup request walks the
    /// route ahead of the head flit; once the circuit is established, its
    /// routers are bypassed — data flows through the pre-configured SDM
    /// lanes while the router control plane stays gated off.
    SdmCircuit,
    /// Rival baseline: bufferless ring-style router ("A Ring Router
    /// Microarchitecture for NoCs"). Removes the input buffers leakage
    /// comes from; contention costs deflection/latching latency instead of
    /// buffering.
    RingRouter,
}

/// Per-scheme knobs for the analytical power/area models — the
/// "power-model parameter hook" of the scheme registry. The pre-existing
/// schemes all use [`SchemePowerProfile::BASELINE`] (every scale exactly
/// `1.0`), which keeps their energy numbers bit-identical to the historic
/// `default_45nm` model; rivals deviate where their microarchitecture
/// differs from the paper's buffered VC router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemePowerProfile {
    /// Scale on per-cycle router leakage. The bufferless ring router
    /// removes the input buffers, which hold the dominant share of router
    /// leakage at 45 nm.
    pub static_scale: f64,
    /// Scale on buffer read/write dynamic energy. SDM circuits bypass VC
    /// buffering once established; the ring router replaces buffers with
    /// pipeline latches.
    pub buffer_dynamic_scale: f64,
    /// Extra dynamic energy per link traversal, in pJ — the ring router's
    /// deflection/latching cost paid on every hop.
    pub extra_link_pj: f64,
    /// Whether the router keeps packet buffers at all (drives the area
    /// model: a bufferless router is substantially smaller).
    pub buffered: bool,
}

impl SchemePowerProfile {
    /// The paper's buffered VC router: all scales neutral.
    pub const BASELINE: SchemePowerProfile = SchemePowerProfile {
        static_scale: 1.0,
        buffer_dynamic_scale: 1.0,
        extra_link_pj: 0.0,
        buffered: true,
    };
}

/// One scheme's registry metadata: the stable tag, the paper-legend label,
/// a one-line description, and the power-model parameter hook. This table
/// ([`SchemeKind::METAS`]) is **the** single place scheme identity data
/// lives — parsing, `Display`, CLI help, artifact ids and the power model
/// all derive from it. The constructor half of the registry (scheme →
/// `PowerManager`) lives in `punchsim-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeMeta {
    /// The scheme this entry describes.
    pub kind: SchemeKind,
    /// Stable machine-readable tag (CLI values, spec ids, artifact keys).
    pub tag: &'static str,
    /// Paper-legend display label.
    pub label: &'static str,
    /// One-line description for `punchsim-cli list-schemes`.
    pub description: &'static str,
    /// Whether the scheme appears in the paper's Figures 7–13 comparison
    /// set ([`SchemeKind::EVALUATED`] must mirror this flag in table
    /// order; pinned by a test).
    pub in_paper_figures: bool,
    /// Power/area-model parameters.
    pub power: SchemePowerProfile,
}

impl SchemeKind {
    /// Every registered scheme, in registry order.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::NoPg,
        SchemeKind::ConvPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
        SchemeKind::SdmCircuit,
        SchemeKind::RingRouter,
    ];

    /// The four schemes evaluated in the paper's figures, in figure order.
    pub const EVALUATED: [SchemeKind; 4] = [
        SchemeKind::NoPg,
        SchemeKind::ConvOptPg,
        SchemeKind::PowerPunchSignal,
        SchemeKind::PowerPunchFull,
    ];

    /// The structurally different rival baselines (ROADMAP item 3): not in
    /// the paper's figures, never added to [`SchemeKind::EVALUATED`] (the
    /// checked-in BENCH baselines key on that set staying fixed).
    pub const RIVALS: [SchemeKind; 2] = [SchemeKind::SdmCircuit, SchemeKind::RingRouter];

    /// The scheme registry's data half: one entry per scheme, in
    /// [`SchemeKind::ALL`] order. Tags are **forever** — cached campaign
    /// results and checked-in baselines key on them; never rename one.
    pub const METAS: [SchemeMeta; 7] = [
        SchemeMeta {
            kind: SchemeKind::NoPg,
            tag: "nopg",
            label: "No-PG",
            description: "all routers always on; the paper's no-power-gating baseline",
            in_paper_figures: true,
            power: SchemePowerProfile::BASELINE,
        },
        SchemeMeta {
            kind: SchemeKind::ConvPg,
            tag: "conv",
            label: "Conv-PG",
            description: "conventional power-gating: the WU handshake wakes routers on demand",
            in_paper_figures: false,
            power: SchemePowerProfile::BASELINE,
        },
        SchemeMeta {
            kind: SchemeKind::ConvOptPg,
            tag: "convopt",
            label: "ConvOpt-PG",
            description: "conventional PG plus idle-timeout filter and one-hop early wakeup",
            in_paper_figures: true,
            power: SchemePowerProfile::BASELINE,
        },
        SchemeMeta {
            kind: SchemeKind::PowerPunchSignal,
            tag: "pps",
            label: "PowerPunch-Signal",
            description: "multi-hop punch signals only, no injection-node slack (paper 4.1)",
            in_paper_figures: true,
            power: SchemePowerProfile::BASELINE,
        },
        SchemeMeta {
            kind: SchemeKind::PowerPunchFull,
            tag: "ppf",
            label: "PowerPunch-PG",
            description: "punch signals plus NI slack 1/2; the paper's full scheme (4.2)",
            in_paper_figures: true,
            power: SchemePowerProfile::BASELINE,
        },
        SchemeMeta {
            kind: SchemeKind::SdmCircuit,
            tag: "sdm",
            label: "SDM-Circuit",
            description: "SDM circuit switching: setup walks ahead, established circuits \
                          bypass gated-off routers",
            in_paper_figures: false,
            power: SchemePowerProfile {
                // Router leakage is unchanged — savings come from circuits
                // letting the control plane stay gated while data flows.
                static_scale: 1.0,
                // Established circuits bypass VC buffering; most flits ride
                // the pre-configured lanes.
                buffer_dynamic_scale: 0.4,
                extra_link_pj: 0.0,
                buffered: true,
            },
        },
        SchemeMeta {
            kind: SchemeKind::RingRouter,
            tag: "ring",
            label: "Ring-Router",
            description: "bufferless ring-style router: no buffer leakage, deflection \
                          latency instead of buffering",
            in_paper_figures: false,
            power: SchemePowerProfile {
                // Input buffers hold the dominant share of router leakage
                // at 45 nm; removing them leaves crossbar + control.
                static_scale: 0.45,
                // Pipeline latches replace buffer reads/writes.
                buffer_dynamic_scale: 0.35,
                // Deflection/latching cost per hop.
                extra_link_pj: 3.0,
                buffered: false,
            },
        },
    ];

    /// This scheme's registry metadata.
    pub fn meta(self) -> &'static SchemeMeta {
        // ALL order == METAS order (pinned by `metas_cover_all_in_order`);
        // a direct index keeps the hot tag()/label() paths O(1).
        &Self::METAS[self as usize]
    }

    /// Short label used in figure output, matching the paper's legends.
    pub fn label(self) -> &'static str {
        self.meta().label
    }

    /// Stable machine-readable tag: CLI flag values, campaign spec ids and
    /// `BENCH_*.json` artifacts all use these. Never rename a tag — cached
    /// campaign results and checked-in baselines key on them.
    pub fn tag(self) -> &'static str {
        self.meta().tag
    }

    /// The power/area-model parameter hook for this scheme.
    pub fn power_profile(self) -> &'static SchemePowerProfile {
        &self.meta().power
    }

    /// Parses a [`SchemeKind::tag`] back into a scheme.
    pub fn from_tag(tag: &str) -> Option<SchemeKind> {
        Self::METAS.iter().find(|m| m.tag == tag).map(|m| m.kind)
    }

    /// Parses a scheme from its tag *or* its display label, so
    /// `parse(k.to_string())` round-trips for every registered scheme.
    /// Unknown inputs yield the typed [`ConfigError::UnknownScheme`].
    pub fn parse(s: &str) -> Result<SchemeKind, ConfigError> {
        Self::METAS
            .iter()
            .find(|m| m.tag == s || m.label == s)
            .map(|m| m.kind)
            .ok_or_else(|| ConfigError::UnknownScheme {
                input: s.to_string(),
            })
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Router microarchitecture and network parameters (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Network substrate (Table 2 evaluates 4x4, 8x8 and 16x16 meshes;
    /// default the paper's 8x8 mesh — torus and concentrated mesh are also
    /// expressible).
    pub topology: Substrate,
    /// Routing function / turn model (default the paper's XY).
    pub routing: RoutingKind,
    /// Number of virtual networks (3 for MESI without deadlock).
    pub vnets: u8,
    /// Data VCs per vnet (Table 2 / §2.1: two 3-flit data VCs).
    pub data_vcs_per_vnet: u8,
    /// Buffer depth of each data VC, in flits.
    pub data_vc_depth: u8,
    /// Control VCs per vnet (§2.1: one 1-flit control VC).
    pub ctrl_vcs_per_vnet: u8,
    /// Buffer depth of each control VC, in flits.
    pub ctrl_vc_depth: u8,
    /// Router pipeline depth: 3 (look-ahead routing + speculative switch
    /// allocation, Figure 3b) or 4 (look-ahead routing, Figure 3a).
    pub router_stages: u8,
    /// Link traversal latency in cycles.
    pub link_latency: u8,
    /// Link width in bits (Table 2: 128 bits/cycle).
    pub link_width_bits: u16,
    /// NI pipeline latency in cycles (§5: "all the NI operations are packed
    /// compactly in three cycles").
    pub ni_latency: u8,
    /// Flits in a data packet (64-byte cache line over 128-bit links plus
    /// a head flit).
    pub data_packet_flits: u8,
    /// Flits in a control packet.
    pub ctrl_packet_flits: u8,
    /// Progress-watchdog parameters (invariant checks, stall detection and
    /// wakeup escalation).
    pub watchdog: WatchdogConfig,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            topology: Substrate::default(),
            routing: RoutingKind::Xy,
            vnets: 3,
            data_vcs_per_vnet: 2,
            data_vc_depth: 3,
            ctrl_vcs_per_vnet: 1,
            ctrl_vc_depth: 1,
            router_stages: 3,
            link_latency: 1,
            link_width_bits: 128,
            ni_latency: 3,
            data_packet_flits: 5,
            ctrl_packet_flits: 1,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl NocConfig {
    /// Total VCs per input port (all vnets, data + control).
    pub fn vcs_per_port(&self) -> usize {
        self.vnets as usize * (self.data_vcs_per_vnet + self.ctrl_vcs_per_vnet) as usize
    }

    /// VCs per vnet (data + control).
    pub fn vcs_per_vnet(&self) -> usize {
        (self.data_vcs_per_vnet + self.ctrl_vcs_per_vnet) as usize
    }

    /// Zero-load per-hop latency in cycles (router pipeline + link).
    pub fn hop_latency(&self) -> u64 {
        self.router_stages as u64 + self.link_latency as u64
    }

    /// The substrate + routing bundle route-aware components consume.
    pub fn view(&self) -> RouteView {
        RouteView::new(self.topology, self.routing)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vnets == 0 {
            return Err(ConfigError::NoVnets);
        }
        if self.data_vcs_per_vnet == 0 && self.ctrl_vcs_per_vnet == 0 {
            return Err(ConfigError::NoVcs);
        }
        if !(3..=4).contains(&self.router_stages) {
            return Err(ConfigError::BadRouterStages(self.router_stages));
        }
        if self.link_latency == 0 {
            return Err(ConfigError::ZeroLinkLatency);
        }
        if self.data_packet_flits == 0 || self.ctrl_packet_flits == 0 {
            return Err(ConfigError::EmptyPacket);
        }
        self.routing.validate_on(self.topology)?;
        Ok(())
    }
}

/// Progress-watchdog and recovery-escalation parameters.
///
/// The watchdog turns the paper's safety-net argument into a continuously
/// checked property: per-cycle invariant checks catch lost flits or flits
/// routed into a powered-off router, the stall detector converts silent
/// livelock into a structured [`crate::StallReport`], and the escalation
/// path force-wakes a router that keeps ignoring the level-signaled WU
/// handshake (modeling the hardware's timeout-then-force-wake retry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Declare a stall after this many consecutive cycles without forward
    /// progress while packets are in flight. `0` disables stall detection.
    pub stall_threshold: Cycle,
    /// Run the per-cycle invariant checks (flit conservation, no flit into
    /// an off router). Cheap (a few integer compares per cycle).
    pub invariant_checks: bool,
    /// Force-wake a router after its WU has been continuously asserted and
    /// ignored for this many cycles. `0` disables escalation.
    pub escalate_after: Cycle,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // Generous: orders of magnitude above any legitimate wakeup
            // chain (an 16x16 mesh worst case is ~30 hops x ~12 cycles).
            stall_threshold: 10_000,
            invariant_checks: true,
            // A healthy WU completes in `wakeup_latency` (~8) cycles; a WU
            // ignored for 64 cycles means the gate is stuck.
            escalate_after: 64,
        }
    }
}

/// One scheduled stuck-off epoch: a hardware fault where a router's sleep
/// gate ignores wakeup requests for a window of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckEpoch {
    /// The faulty router.
    pub router: NodeId,
    /// The epoch arms at the first cycle `>= start` at which the router is
    /// powered off (a powered-on router cannot be stuck off).
    pub start: Cycle,
    /// Cycles the router ignores wakeups once armed, unless the escalation
    /// path force-wakes it first.
    pub duration: Cycle,
}

/// Fault-injection parameters for the power-gating machinery (sideband
/// wires, wakeup gates), applied by `punchsim-faults`.
///
/// Probabilities are expressed in parts per million so the configuration
/// stays `Eq`/hashable and the determinism contract ("same config + seed ⇒
/// bit-identical run") never depends on floating-point parsing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Seed for the fault injector's own RNG stream (independent of the
    /// traffic seed, so fault placement is stable across traffic changes).
    pub seed: u64,
    /// Probability (ppm) that a punch-carrying sideband event is dropped.
    pub drop_punch_ppm: u32,
    /// Probability (ppm) that a punch codeword is corrupted in transit and
    /// decodes to a *different valid* target set — modeled by rewriting the
    /// punch's destination to another in-mesh router, which wakes the wrong
    /// routers (every single-destination set is a valid codebook entry).
    pub corrupt_punch_ppm: u32,
    /// Probability (ppm) that one cycle's conventional WU assertion is lost.
    /// The WU is a level signal re-asserted every stalled cycle, so p < 1
    /// only delays wakeups; p = 1 wedges the handshake and exercises the
    /// watchdog escalation path.
    pub drop_wu_ppm: u32,
    /// Maximum extra sideband delivery latency in cycles: each surviving
    /// event is delayed by a uniform `0..=max_wakeup_jitter` cycles.
    pub max_wakeup_jitter: u32,
    /// Scheduled stuck-off router epochs.
    pub stuck_epochs: Vec<StuckEpoch>,
}

impl FaultConfig {
    /// Converts a probability in `0.0..=1.0` to parts per million.
    pub fn ppm(prob: f64) -> u32 {
        (prob.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
    }

    /// `true` when any fault mechanism is active, i.e. the injector needs
    /// to wrap the power manager at all.
    pub fn is_active(&self) -> bool {
        self.drop_punch_ppm > 0
            || self.corrupt_punch_ppm > 0
            || self.drop_wu_ppm > 0
            || self.max_wakeup_jitter > 0
            || !self.stuck_epochs.is_empty()
    }

    /// Validates probabilities and epoch targets against the substrate.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, topo: impl Into<Substrate>) -> Result<(), ConfigError> {
        let topo = topo.into();
        for (field, ppm) in [
            ("drop_punch_ppm", self.drop_punch_ppm),
            ("corrupt_punch_ppm", self.corrupt_punch_ppm),
            ("drop_wu_ppm", self.drop_wu_ppm),
        ] {
            if ppm > 1_000_000 {
                return Err(ConfigError::BadProbability { field, ppm });
            }
        }
        for e in &self.stuck_epochs {
            if !topo.contains(e.router) {
                return Err(ConfigError::BadStuckRouter(e.router));
            }
        }
        Ok(())
    }
}

/// Power-gating parameters (§5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerConfig {
    /// Router wakeup latency in cycles (SPICE-estimated 8 in the paper;
    /// swept 6..=12 in Figure 13).
    pub wakeup_latency: u32,
    /// Break-even time in cycles (~10 for on-chip routers, paper ref. 7).
    pub break_even_time: u32,
    /// Idle timeout before sleeping, in cycles (4, consistent with paper
    /// refs. 7 and 9).
    pub idle_timeout: u32,
    /// Punch-signal hop depth H (2, 3 or 4; 3 covers Twakeup up to 9 cycles
    /// for 3-stage routers, §4.1).
    pub punch_hops: u16,
    /// Cycles of slack-2: how long before the message reaches the NI the
    /// node knows "some packet will be generated" (≈ L2/directory access
    /// latency, ~6 cycles).
    pub slack2_cycles: u32,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            wakeup_latency: 8,
            break_even_time: 10,
            idle_timeout: 4,
            punch_hops: 3,
            slack2_cycles: 6,
        }
    }
}

impl PowerConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=4).contains(&self.punch_hops) {
            return Err(ConfigError::BadPunchHops(self.punch_hops));
        }
        if self.wakeup_latency == 0 {
            return Err(ConfigError::ZeroWakeupLatency);
        }
        Ok(())
    }
}

/// Event-tracing parameters: whether the simulation hosts attach a
/// flight-recorder sink to the network, and how much it retains.
///
/// Tracing is observation only — enabling it never changes simulated
/// behavior or results, which CI asserts by byte-comparing campaign
/// artifacts produced with tracing off and on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Attach a ring-buffer event sink to the network.
    pub enabled: bool,
    /// Events the flight recorder retains (most recent first out); the
    /// watchdog dumps its tail into stall reports.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            // Enough to hold several wakeup chains (~tens of events each)
            // around an escalation without measurable memory cost.
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// An enabled configuration with the default ring capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.enabled && self.ring_capacity == 0 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        Ok(())
    }
}

/// Top-level simulation configuration: network, power-gating and scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Network microarchitecture parameters.
    pub noc: NocConfig,
    /// Power-gating parameters.
    pub power: PowerConfig,
    /// Which power-gating scheme to run.
    pub scheme: SchemeKind,
    /// Fault injection into the power-gating machinery (default: none).
    pub faults: FaultConfig,
    /// Event tracing (default: disabled, zero overhead).
    pub trace: TraceConfig,
    /// RNG seed for all stochastic components; a given seed reproduces a
    /// run bit-for-bit.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            noc: NocConfig::default(),
            power: PowerConfig::default(),
            scheme: SchemeKind::NoPg,
            faults: FaultConfig::default(),
            trace: TraceConfig::default(),
            seed: 0xC0FFEE,
        }
    }
}

impl SimConfig {
    /// A default configuration running the given scheme.
    pub fn with_scheme(scheme: SchemeKind) -> Self {
        SimConfig {
            scheme,
            ..SimConfig::default()
        }
    }

    /// Validates all sub-configurations.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.noc.validate()?;
        self.power.validate()?;
        self.faults.validate(self.noc.topology)?;
        self.trace.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Mesh;

    #[test]
    fn table2_defaults() {
        // Table 2 of the paper.
        let c = NocConfig::default();
        assert_eq!(c.topology, Substrate::Mesh(Mesh::new(8, 8)));
        assert_eq!(c.routing, RoutingKind::Xy);
        assert_eq!(c.vnets, 3);
        assert_eq!(c.data_vc_depth, 3);
        assert_eq!(c.ctrl_vc_depth, 1);
        assert_eq!(c.link_width_bits, 128);
        assert_eq!(c.ni_latency, 3);
        assert_eq!(c.vcs_per_port(), 9);
        assert_eq!(c.hop_latency(), 4);
        c.validate().unwrap();

        let p = PowerConfig::default();
        assert_eq!(p.wakeup_latency, 8);
        assert_eq!(p.break_even_time, 10);
        assert_eq!(p.idle_timeout, 4);
        assert_eq!(p.punch_hops, 3);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = NocConfig {
            router_stages: 5,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let p = PowerConfig {
            punch_hops: 9,
            ..PowerConfig::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn cyclic_routing_on_torus_is_rejected() {
        use crate::topology::Torus;
        let mut c = NocConfig {
            topology: Torus::new(8, 8).into(),
            routing: RoutingKind::WestFirst,
            ..NocConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::CyclicRouting { .. })
        ));
        c.routing = RoutingKind::Yx;
        c.validate().unwrap();
        // Any turn model is fine on an acyclic mesh substrate.
        c.topology = Mesh::new(8, 8).into();
        c.routing = RoutingKind::NegativeFirst;
        c.validate().unwrap();
    }

    #[test]
    fn validation_errors_are_typed() {
        let c = NocConfig {
            vnets: 0,
            ..NocConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::NoVnets));
        let p = PowerConfig {
            wakeup_latency: 0,
            ..PowerConfig::default()
        };
        assert_eq!(p.validate(), Err(ConfigError::ZeroWakeupLatency));
    }

    #[test]
    fn fault_config_defaults_inactive_and_validates() {
        let f = FaultConfig::default();
        assert!(!f.is_active());
        f.validate(Mesh::new(4, 4)).unwrap();
        let bad = FaultConfig {
            drop_punch_ppm: 2_000_000,
            ..FaultConfig::default()
        };
        assert!(matches!(
            bad.validate(Mesh::new(4, 4)),
            Err(ConfigError::BadProbability { .. })
        ));
        let bad_router = FaultConfig {
            stuck_epochs: vec![StuckEpoch {
                router: NodeId(99),
                start: 0,
                duration: 10,
            }],
            ..FaultConfig::default()
        };
        assert_eq!(
            bad_router.validate(Mesh::new(4, 4)),
            Err(ConfigError::BadStuckRouter(NodeId(99)))
        );
        assert!(bad_router.is_active());
    }

    #[test]
    fn trace_config_defaults_off_and_validates() {
        let t = TraceConfig::default();
        assert!(!t.enabled);
        assert!(t.ring_capacity > 0);
        t.validate().unwrap();
        assert!(TraceConfig::enabled().enabled);
        let bad = TraceConfig {
            enabled: true,
            ring_capacity: 0,
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroTraceCapacity));
        // A zero capacity is fine while tracing is off.
        let off = TraceConfig {
            enabled: false,
            ring_capacity: 0,
        };
        off.validate().unwrap();
        let cfg = SimConfig {
            trace: TraceConfig {
                enabled: true,
                ring_capacity: 0,
            },
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ppm_conversion_clamps() {
        assert_eq!(FaultConfig::ppm(0.5), 500_000);
        assert_eq!(FaultConfig::ppm(1.5), 1_000_000);
        assert_eq!(FaultConfig::ppm(-0.1), 0);
    }

    #[test]
    fn watchdog_defaults_are_enabled() {
        let w = WatchdogConfig::default();
        assert!(w.stall_threshold > 0);
        assert!(w.invariant_checks);
        assert!(w.escalate_after > 0);
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(SchemeKind::ConvOptPg.label(), "ConvOpt-PG");
        assert_eq!(SchemeKind::PowerPunchFull.to_string(), "PowerPunch-PG");
        assert_eq!(SchemeKind::EVALUATED.len(), 4);
    }

    #[test]
    fn scheme_tags_roundtrip() {
        for s in SchemeKind::ALL {
            assert_eq!(SchemeKind::from_tag(s.tag()), Some(s));
        }
        assert_eq!(SchemeKind::from_tag("warp9"), None);
    }

    #[test]
    fn scheme_parse_display_parse_is_identity() {
        for s in SchemeKind::ALL {
            // tag -> scheme -> Display(label) -> scheme round-trips.
            let parsed = SchemeKind::parse(s.tag()).unwrap();
            assert_eq!(parsed, s);
            assert_eq!(SchemeKind::parse(&parsed.to_string()).unwrap(), s);
        }
        assert!(matches!(
            SchemeKind::parse("warp9"),
            Err(ConfigError::UnknownScheme { input }) if input == "warp9"
        ));
    }

    #[test]
    fn metas_cover_all_in_order() {
        // `meta()` indexes METAS by discriminant: declaration order, ALL
        // order and METAS order must all agree.
        assert_eq!(SchemeKind::METAS.len(), SchemeKind::ALL.len());
        for (i, (m, k)) in SchemeKind::METAS.iter().zip(SchemeKind::ALL).enumerate() {
            assert_eq!(m.kind, k);
            assert_eq!(k as usize, i);
        }
        // Tags and labels are unique (artifact keys / legend names).
        for a in SchemeKind::ALL {
            for b in SchemeKind::ALL {
                if a != b {
                    assert_ne!(a.tag(), b.tag());
                    assert_ne!(a.label(), b.label());
                }
            }
        }
    }

    #[test]
    fn evaluated_mirrors_paper_figure_flag() {
        let flagged: Vec<SchemeKind> = SchemeKind::METAS
            .iter()
            .filter(|m| m.in_paper_figures)
            .map(|m| m.kind)
            .collect();
        assert_eq!(flagged, SchemeKind::EVALUATED.to_vec());
    }

    #[test]
    fn pre_existing_schemes_keep_baseline_power_profile() {
        // The historic five schemes must keep the exactly-neutral profile:
        // the 45 nm power model multiplies by these scales, and any value
        // other than literal 1.0/0.0 would drift the checked-in BENCH
        // baselines' energy fields.
        for s in [
            SchemeKind::NoPg,
            SchemeKind::ConvPg,
            SchemeKind::ConvOptPg,
            SchemeKind::PowerPunchSignal,
            SchemeKind::PowerPunchFull,
        ] {
            assert_eq!(*s.power_profile(), SchemePowerProfile::BASELINE);
        }
        // Rivals differ from the baseline router where their hardware does.
        assert!(SchemeKind::RingRouter.power_profile().static_scale < 1.0);
        assert!(!SchemeKind::RingRouter.power_profile().buffered);
        assert!(SchemeKind::SdmCircuit.power_profile().buffer_dynamic_scale < 1.0);
    }
}
