//! Mesh geometry: coordinates, node/coordinate conversion, neighbours.
//!
//! Numbering follows Figure 4 of the paper: node 0 is the north-west corner,
//! ids increase eastward along a row, then southward row by row. `X+` points
//! east and `Y+` points south (toward larger ids in both cases).

use crate::direction::Direction;
use crate::error::ConfigError;
use crate::NodeId;

/// A position in the mesh, `x` eastward and `y` southward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column, increasing eastward (`X+`).
    pub x: u16,
    /// Row, increasing southward (`Y+`).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    #[inline]
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A 2D mesh topology of `width x height` tiles.
///
/// # Examples
///
/// ```
/// use punchsim_types::{Mesh, NodeId, Coord};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.nodes(), 64);
/// assert_eq!(mesh.coord(NodeId(27)), Coord::new(3, 3));
/// assert_eq!(mesh.node(Coord::new(3, 3)), NodeId(27));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero. Use [`Mesh::try_new`] where a
    /// typed error is wanted instead (CLI parsing, config validation).
    pub fn new(width: u16, height: u16) -> Self {
        Mesh::try_new(width, height).expect("mesh dimensions must be non-zero")
    }

    /// Creates a `width x height` mesh, rejecting zero dimensions through
    /// the typed-error path: a `0xN` mesh has no nodes, and every
    /// coordinate conversion on it would otherwise divide by zero.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadTopologyDims`] when either dimension is zero.
    pub fn try_new(width: u16, height: u16) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::BadTopologyDims {
                kind: "mesh",
                width,
                height,
            });
        }
        Ok(Mesh { width, height })
    }

    /// Mesh width (number of columns).
    #[inline]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (number of rows).
    #[inline]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Returns `true` if `node` is a valid id for this mesh.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        node.index() < self.nodes()
    }

    /// Converts a node id to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(self.contains(node), "{node} out of range for {self:?}");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Converts a coordinate to its node id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn node(self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "{c} out of range for {self:?}"
        );
        NodeId(c.y * self.width + c.x)
    }

    /// The neighbour of `node` in direction `dir`, or `None` at a mesh edge.
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::North if c.y > 0 => Coord::new(c.x, c.y - 1),
            Direction::South if c.y + 1 < self.height => Coord::new(c.x, c.y + 1),
            Direction::West if c.x > 0 => Coord::new(c.x - 1, c.y),
            Direction::East if c.x + 1 < self.width => Coord::new(c.x + 1, c.y),
            _ => return None,
        };
        Some(self.node(n))
    }

    /// Manhattan distance in hops between two nodes.
    pub fn distance(self, a: NodeId, b: NodeId) -> u16 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// Iterates over all node ids in ascending order.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// Directions in which `node` has a neighbour, in fixed N,E,S,W order.
    pub fn neighbor_dirs(self, node: NodeId) -> impl Iterator<Item = Direction> + use<> {
        let mesh = self;
        Direction::ALL
            .into_iter()
            .filter(move |&d| mesh.neighbor(node, d).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip_8x8() {
        let m = Mesh::new(8, 8);
        for n in m.iter_nodes() {
            assert_eq!(m.node(m.coord(n)), n);
        }
    }

    #[test]
    fn paper_figure4_positions() {
        // Figure 4: R27 is at column 3, row 3 of the 8x8 mesh; R28 is its
        // eastern (X+) neighbour, R35 its southern (Y+) neighbour.
        let m = Mesh::new(8, 8);
        assert_eq!(m.coord(NodeId(27)), Coord::new(3, 3));
        assert_eq!(m.neighbor(NodeId(27), Direction::East), Some(NodeId(28)));
        assert_eq!(m.neighbor(NodeId(27), Direction::South), Some(NodeId(35)));
        assert_eq!(m.neighbor(NodeId(27), Direction::North), Some(NodeId(19)));
        assert_eq!(m.neighbor(NodeId(27), Direction::West), Some(NodeId(26)));
    }

    #[test]
    fn edges_have_no_neighbor() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::East), None);
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.distance(NodeId(27), NodeId(27)), 0);
        assert_eq!(m.distance(NodeId(27), NodeId(31)), 4);
    }

    #[test]
    fn rectangular_mesh() {
        let m = Mesh::new(4, 2);
        assert_eq!(m.nodes(), 8);
        assert_eq!(m.coord(NodeId(5)), Coord::new(1, 1));
        assert_eq!(m.neighbor(NodeId(3), Direction::South), Some(NodeId(7)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_coord_panics() {
        Mesh::new(4, 4).coord(NodeId(16));
    }

    #[test]
    fn zero_dimensions_are_a_typed_error() {
        for (w, h) in [(0, 4), (4, 0), (0, 0)] {
            assert!(matches!(
                Mesh::try_new(w, h),
                Err(ConfigError::BadTopologyDims { kind: "mesh", .. })
            ));
        }
        assert_eq!(Mesh::try_new(4, 4), Ok(Mesh::new(4, 4)));
    }

    #[test]
    fn within_three_hops_of_r27() {
        // Section 3: "There are 24 routers within 3 hops of router 27".
        let m = Mesh::new(8, 8);
        let n = m
            .iter_nodes()
            .filter(|&x| x != NodeId(27) && m.distance(NodeId(27), x) <= 3)
            .count();
        assert_eq!(n, 24);
    }
}
