//! Dimension-order (XY) routing.
//!
//! The paper implements Power Punch on a 2D mesh with XY routing (§4.1):
//! packets travel the full X offset first, then the full Y offset. The
//! resulting turn restriction — `Y->X` turns are illegal — is what lets
//! punch signals be merged into narrow codewords.

use crate::direction::Direction;
use crate::geometry::Mesh;
use crate::NodeId;

/// The XY-routing output direction at `from` for a packet headed to `to`,
/// or `None` when `from == to` (the packet ejects locally).
///
/// # Examples
///
/// ```
/// use punchsim_types::{Mesh, NodeId, Direction, routing::xy_direction};
///
/// let mesh = Mesh::new(8, 8);
/// // Packet at R26 headed to R31 travels east first (Figure 4).
/// assert_eq!(xy_direction(mesh, NodeId(26), NodeId(31)), Some(Direction::East));
/// ```
pub fn xy_direction(mesh: Mesh, from: NodeId, to: NodeId) -> Option<Direction> {
    let (f, t) = (mesh.coord(from), mesh.coord(to));
    if f.x < t.x {
        Some(Direction::East)
    } else if f.x > t.x {
        Some(Direction::West)
    } else if f.y < t.y {
        Some(Direction::South)
    } else if f.y > t.y {
        Some(Direction::North)
    } else {
        None
    }
}

/// The next router on the XY path from `from` to `to`, or `None` when
/// `from == to`.
pub fn xy_next_hop(mesh: Mesh, from: NodeId, to: NodeId) -> Option<NodeId> {
    let dir = xy_direction(mesh, from, to)?;
    Some(
        mesh.neighbor(from, dir)
            .expect("XY direction always points inside the mesh"),
    )
}

/// The router exactly `hops` hops along the XY path from `from` to `to`.
///
/// If the path is shorter than `hops`, returns the destination `to` itself.
/// This is precisely the paper's *targeted router* rule: the wakeup target
/// is the router `min(H, dist)` hops ahead (§4.1 step 1).
pub fn xy_router_ahead(mesh: Mesh, from: NodeId, to: NodeId, hops: u16) -> NodeId {
    let mut cur = from;
    for _ in 0..hops {
        match xy_next_hop(mesh, cur, to) {
            Some(next) => cur = next,
            None => break,
        }
    }
    cur
}

/// Returns `true` if `mid` lies on the XY path from `from` to `to`
/// (endpoints included). Used to drop *implied* punch targets (§4.1 step 4).
pub fn xy_on_path(mesh: Mesh, from: NodeId, to: NodeId, mid: NodeId) -> bool {
    let (f, t, m) = (mesh.coord(from), mesh.coord(to), mesh.coord(mid));
    // X phase: same row as source, x between f.x and t.x.
    let in_x_phase = m.y == f.y && m.x >= f.x.min(t.x) && m.x <= f.x.max(t.x);
    // Y phase: same column as destination, y between f.y and t.y.
    let in_y_phase = m.x == t.x && m.y >= f.y.min(t.y) && m.y <= f.y.max(t.y);
    in_x_phase || in_y_phase
}

/// An iterator over the routers of an XY route, excluding the source and
/// including the destination.
#[derive(Debug, Clone)]
pub struct XyPath {
    mesh: Mesh,
    cur: NodeId,
    dst: NodeId,
}

impl Iterator for XyPath {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = xy_next_hop(self.mesh, self.cur, self.dst)?;
        self.cur = next;
        Some(next)
    }
}

/// The XY route from `from` to `to` as an iterator of intermediate routers
/// and the destination (the source is not yielded).
///
/// # Examples
///
/// ```
/// use punchsim_types::{Mesh, NodeId, routing::xy_path};
///
/// let mesh = Mesh::new(8, 8);
/// let hops: Vec<_> = xy_path(mesh, NodeId(26), NodeId(36)).collect();
/// assert_eq!(hops, vec![NodeId(27), NodeId(28), NodeId(36)]);
/// ```
pub fn xy_path(mesh: Mesh, from: NodeId, to: NodeId) -> XyPath {
    XyPath {
        mesh,
        cur: from,
        dst: to,
    }
}

/// Returns `true` if turning from travel direction `incoming` to `outgoing`
/// is legal under XY routing (Y->X turns are forbidden).
pub fn xy_turn_legal(incoming: Direction, outgoing: Direction) -> bool {
    // Continuing straight or turning X->Y is legal; U-turns and Y->X are not.
    if outgoing == incoming.opposite() {
        return false;
    }
    !(incoming.is_y() && outgoing.is_x())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn x_before_y() {
        // R26 -> R29 goes straight east; R26 -> R36 goes east then south.
        let m = mesh8();
        let p: Vec<_> = xy_path(m, NodeId(26), NodeId(29)).collect();
        assert_eq!(p, vec![NodeId(27), NodeId(28), NodeId(29)]);
        let p: Vec<_> = xy_path(m, NodeId(26), NodeId(36)).collect();
        assert_eq!(p, vec![NodeId(27), NodeId(28), NodeId(36)]);
    }

    #[test]
    fn path_length_equals_distance() {
        let m = mesh8();
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                assert_eq!(xy_path(m, a, b).count(), m.distance(a, b) as usize);
            }
        }
    }

    #[test]
    fn router_ahead_respects_min_rule() {
        let m = mesh8();
        // Paper §4.1: packet with source R0, destination R7, currently at R3:
        // the targeted router for a 3-hop punch is R6.
        assert_eq!(xy_router_ahead(m, NodeId(3), NodeId(7), 3), NodeId(6));
        // Closer than H hops: the destination itself is the target.
        assert_eq!(xy_router_ahead(m, NodeId(5), NodeId(7), 3), NodeId(7));
        assert_eq!(xy_router_ahead(m, NodeId(7), NodeId(7), 3), NodeId(7));
    }

    #[test]
    fn paper_example_r26_to_r31_targets_r29() {
        // §4.1 step 1: "a packet currently at R26 with destination R31 knows
        // precisely that the targeted router is R29".
        let m = mesh8();
        assert_eq!(xy_router_ahead(m, NodeId(26), NodeId(31), 3), NodeId(29));
    }

    #[test]
    fn on_path_examples() {
        let m = mesh8();
        // R27 and R28 are along the path from R26 to R29 (§4.1 step 2).
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(27)));
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(28)));
        assert!(!xy_on_path(m, NodeId(26), NodeId(29), NodeId(35)));
        // R29 is along the path from R27 to R21 (§4.1 step 4).
        assert!(xy_on_path(m, NodeId(27), NodeId(21), NodeId(29)));
        // Endpoints count.
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(26)));
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(29)));
    }

    #[test]
    fn on_path_matches_enumeration() {
        let m = Mesh::new(5, 5);
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                let path: Vec<_> = std::iter::once(a).chain(xy_path(m, a, b)).collect();
                for c in m.iter_nodes() {
                    assert_eq!(
                        xy_on_path(m, a, b, c),
                        path.contains(&c),
                        "a={a} b={b} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn turn_legality() {
        use Direction::*;
        // Paper §4.1 step 3: "Y+ to X+ turns are illegal".
        assert!(!xy_turn_legal(South, East));
        assert!(!xy_turn_legal(North, West));
        assert!(xy_turn_legal(East, South));
        assert!(xy_turn_legal(East, North));
        assert!(xy_turn_legal(East, East));
        assert!(!xy_turn_legal(East, West)); // U-turn
    }
}
