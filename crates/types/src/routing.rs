//! Routing functions as first-class turn models.
//!
//! The paper implements Power Punch on a 2D mesh with XY routing (§4.1):
//! packets travel the full X offset first, then the full Y offset, and the
//! resulting turn restriction — `Y->X` turns are illegal — is what lets
//! punch signals be merged into narrow codewords. That derivation never
//! actually uses "XY"; it uses *determinism* (one outgoing port per
//! destination) and the *turn model* (which port sequences are legal). This
//! module expresses routing as exactly that contract:
//!
//! * [`RoutingFunction`] — plans a route as at most four straight segment
//!   runs over any [`Topology`], with closed-form `router_ahead`/`on_path`
//!   derived from the segment schedule (no hop-by-hop walking);
//! * [`RoutingKind`] — the storable implementations: dimension-ordered XY
//!   and YX plus the west-first, north-last and negative-first turn models;
//! * [`RouteView`] — a `Copy` bundle of substrate + routing that the punch
//!   fabric, codebook enumeration and power managers thread around.
//!
//! The original `xy_*` free functions remain as thin wrappers over
//! [`RoutingKind::Xy`] so existing mesh-only call sites keep working.

use crate::direction::Direction;
use crate::error::ConfigError;
use crate::geometry::Mesh;
use crate::topology::{Substrate, Topology};
use crate::NodeId;

/// A route plan: at most four straight `(direction, hops)` runs, in travel
/// order. Minimal 2D routes have at most one run per axis sign, so four
/// covers every turn model here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Segments {
    runs: [(Option<Direction>, u16); 4],
    len: u8,
}

impl Segments {
    /// Appends a run; zero-length runs are dropped.
    pub fn push(&mut self, dir: Direction, hops: u16) {
        if hops > 0 {
            self.runs[self.len as usize] = (Some(dir), hops);
            self.len += 1;
        }
    }

    /// The runs in travel order.
    pub fn iter(&self) -> impl Iterator<Item = (Direction, u16)> + '_ {
        self.runs[..self.len as usize]
            .iter()
            .map(|&(d, n)| (d.expect("pushed runs always carry a direction"), n))
    }

    /// Total hops across all runs.
    pub fn total_hops(&self) -> u16 {
        self.iter().map(|(_, n)| n).sum()
    }

    /// The first run's direction, or `None` for an empty (already-there)
    /// route.
    pub fn first_direction(&self) -> Option<Direction> {
        self.iter().next().map(|(d, _)| d)
    }
}

/// A deterministic routing function expressed as a turn model.
///
/// Implementors provide the segment schedule and the turn-legality
/// predicate; everything the simulator needs — output ports, punch targets,
/// implied-target checks — is derived from those in closed form.
pub trait RoutingFunction {
    /// The straight segment runs a packet travels from `from` to `to`, in
    /// order. Consecutive runs must form legal turns under
    /// [`RoutingFunction::turn_legal`], and each intermediate router's
    /// remaining route must equal `segments(topo, intermediate, to)` (the
    /// prefix property deterministic routing needs).
    fn segments(&self, topo: Substrate, from: NodeId, to: NodeId) -> Segments;

    /// Whether a packet travelling in `incoming` may leave in `outgoing`.
    /// All models here forbid U-turns.
    fn turn_legal(&self, incoming: Direction, outgoing: Direction) -> bool;

    /// The output direction at `from` for a packet headed to `to`, or
    /// `None` when `from == to` (the packet ejects locally).
    fn direction(&self, topo: Substrate, from: NodeId, to: NodeId) -> Option<Direction> {
        self.segments(topo, from, to).first_direction()
    }

    /// The next router on the route, or `None` when `from == to`.
    fn next_hop(&self, topo: Substrate, from: NodeId, to: NodeId) -> Option<NodeId> {
        let dir = self.direction(topo, from, to)?;
        Some(
            topo.neighbor(from, dir)
                .expect("routing directions always point at an existing link"),
        )
    }

    /// The router exactly `hops` hops along the route from `from` to `to`,
    /// or the destination itself when the route is shorter. This is the
    /// paper's *targeted router* rule — the wakeup target is the router
    /// `min(H, dist)` hops ahead (§4.1 step 1) — computed as a closed-form
    /// coordinate jump over the segment schedule, not an O(hops) walk.
    fn router_ahead(&self, topo: Substrate, from: NodeId, to: NodeId, hops: u16) -> NodeId {
        let mut cur = from;
        let mut left = hops;
        for (dir, n) in self.segments(topo, from, to).iter() {
            if left <= n {
                return topo.advance(cur, dir, left);
            }
            cur = topo.advance(cur, dir, n);
            left -= n;
        }
        cur
    }

    /// Returns `true` if `mid` lies on the route from `from` to `to`
    /// (endpoints included). Used to drop *implied* punch targets
    /// (§4.1 step 4). Closed-form per segment run.
    fn on_path(&self, topo: Substrate, from: NodeId, to: NodeId, mid: NodeId) -> bool {
        if mid == from {
            return true;
        }
        let mut cur = from;
        for (dir, n) in self.segments(topo, from, to).iter() {
            if let Some(k) = topo.steps_between(cur, mid, dir) {
                if k <= n {
                    return true;
                }
            }
            cur = topo.advance(cur, dir, n);
        }
        false
    }
}

/// The storable routing-function handle: which turn model a configuration
/// or spec routes with. `Copy`/`Eq`/`Hash`, like [`Substrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingKind {
    /// Dimension-ordered X-then-Y (the paper's routing; forbids `Y->X`).
    #[default]
    Xy,
    /// Dimension-ordered Y-then-X (forbids `X->Y`; transposes the punch
    /// codeword widths).
    Yx,
    /// West-first turn model: all westward travel happens first; turning
    /// *into* West is forbidden.
    WestFirst,
    /// North-last turn model: northward travel happens last; turning *out
    /// of* North is forbidden.
    NorthLast,
    /// Negative-first turn model: all West/North (negative) travel happens
    /// first; turns from a positive into a negative direction are
    /// forbidden.
    NegativeFirst,
}

impl RoutingKind {
    /// Every supported routing function, in stable order.
    pub const ALL: [RoutingKind; 5] = [
        RoutingKind::Xy,
        RoutingKind::Yx,
        RoutingKind::WestFirst,
        RoutingKind::NorthLast,
        RoutingKind::NegativeFirst,
    ];

    /// Stable tag used in artifact ids, content hashes and CLI parsing.
    /// Never rename a tag: artifact names and baselines depend on them.
    pub fn tag(&self) -> &'static str {
        match self {
            RoutingKind::Xy => "xy",
            RoutingKind::Yx => "yx",
            RoutingKind::WestFirst => "wf",
            RoutingKind::NorthLast => "nl",
            RoutingKind::NegativeFirst => "nf",
        }
    }

    /// Parses a [`RoutingKind::tag`] (long CLI spellings included).
    pub fn from_tag(tag: &str) -> Option<RoutingKind> {
        Some(match tag {
            "xy" => RoutingKind::Xy,
            "yx" => RoutingKind::Yx,
            "wf" | "westfirst" | "west-first" => RoutingKind::WestFirst,
            "nl" | "northlast" | "north-last" => RoutingKind::NorthLast,
            "nf" | "negfirst" | "negative-first" => RoutingKind::NegativeFirst,
            _ => return None,
        })
    }

    /// Human-readable name for errors and help text.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingKind::Xy => "XY",
            RoutingKind::Yx => "YX",
            RoutingKind::WestFirst => "west-first",
            RoutingKind::NorthLast => "north-last",
            RoutingKind::NegativeFirst => "negative-first",
        }
    }

    /// Checks that this turn model is deadlock-free on `topo`.
    ///
    /// Turn models break cycles by forbidding turns, which works on an
    /// acyclic channel graph (mesh, concentrated mesh). A torus closes
    /// every row and column into a ring that no turn restriction can cut,
    /// so only dimension-ordered routing — whose straight rings are handled
    /// by the multi-VC vnet layout — is admitted there.
    ///
    /// # Errors
    ///
    /// [`ConfigError::CyclicRouting`] for a forbidden combination.
    pub fn validate_on(&self, topo: Substrate) -> Result<(), ConfigError> {
        if topo.wraps() && !matches!(self, RoutingKind::Xy | RoutingKind::Yx) {
            return Err(ConfigError::CyclicRouting {
                routing: self.name(),
                topology: topo.kind_name(),
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Splits a signed delta into `(direction, hops)` runs for each axis.
fn axis_runs(dx: i32, dy: i32) -> ((Direction, u16), (Direction, u16)) {
    let x = if dx >= 0 {
        (Direction::East, dx as u16)
    } else {
        (Direction::West, (-dx) as u16)
    };
    let y = if dy >= 0 {
        (Direction::South, dy as u16)
    } else {
        (Direction::North, (-dy) as u16)
    };
    (x, y)
}

impl RoutingFunction for RoutingKind {
    fn segments(&self, topo: Substrate, from: NodeId, to: NodeId) -> Segments {
        let (dx, dy) = topo.delta(from, to);
        let ((xd, xn), (yd, yn)) = axis_runs(dx, dy);
        let mut s = Segments::default();
        match self {
            RoutingKind::Xy => {
                s.push(xd, xn);
                s.push(yd, yn);
            }
            RoutingKind::Yx => {
                s.push(yd, yn);
                s.push(xd, xn);
            }
            RoutingKind::WestFirst => {
                // Westward travel first; otherwise Y before East so the
                // route never turns into West.
                if xd == Direction::West {
                    s.push(xd, xn);
                    s.push(yd, yn);
                } else {
                    s.push(yd, yn);
                    s.push(xd, xn);
                }
            }
            RoutingKind::NorthLast => {
                // Northward travel last; otherwise South before X so the
                // route never turns out of North.
                if yd == Direction::North {
                    s.push(xd, xn);
                    s.push(yd, yn);
                } else {
                    s.push(yd, yn);
                    s.push(xd, xn);
                }
            }
            RoutingKind::NegativeFirst => {
                // Negative directions (West, North) first, in fixed W,N,E,S
                // order; a positive run never precedes a negative one.
                let (mut neg, mut pos) = (Segments::default(), Segments::default());
                for (d, n) in [(xd, xn), (yd, yn)] {
                    if matches!(d, Direction::West | Direction::North) {
                        neg.push(d, n);
                    } else {
                        pos.push(d, n);
                    }
                }
                for (d, n) in neg.iter().chain(pos.iter()) {
                    s.push(d, n);
                }
            }
        }
        debug_assert_eq!(s.total_hops(), topo.distance(from, to));
        s
    }

    fn turn_legal(&self, incoming: Direction, outgoing: Direction) -> bool {
        if outgoing == incoming.opposite() {
            return false; // U-turns are illegal under every model.
        }
        if outgoing == incoming {
            return true; // Continuing straight always is.
        }
        match self {
            RoutingKind::Xy => !(incoming.is_y() && outgoing.is_x()),
            RoutingKind::Yx => !(incoming.is_x() && outgoing.is_y()),
            RoutingKind::WestFirst => outgoing != Direction::West,
            RoutingKind::NorthLast => incoming != Direction::North,
            RoutingKind::NegativeFirst => {
                let positive = |d| matches!(d, Direction::East | Direction::South);
                let negative = |d| matches!(d, Direction::West | Direction::North);
                !(positive(incoming) && negative(outgoing))
            }
        }
    }
}

/// A substrate paired with the routing function that runs on it: the
/// `Copy` bundle everything route-aware stores.
///
/// `From<Mesh>`/`From<Substrate>` default the routing to [`RoutingKind::Xy`]
/// so pre-trait call sites (`PunchFabric::new(mesh, 3)`, …) keep compiling;
/// pass a `(topology, routing)` tuple to pick another turn model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteView {
    /// The substrate routes run over.
    pub topo: Substrate,
    /// The turn model that plans them.
    pub routing: RoutingKind,
}

impl RouteView {
    /// Bundles a substrate with a routing function.
    pub fn new(topo: impl Into<Substrate>, routing: RoutingKind) -> Self {
        RouteView {
            topo: topo.into(),
            routing,
        }
    }

    /// The output direction at `from` toward `to` (`None` when ejecting).
    #[inline]
    pub fn direction(&self, from: NodeId, to: NodeId) -> Option<Direction> {
        self.routing.direction(self.topo, from, to)
    }

    /// The next router on the route (`None` when `from == to`).
    #[inline]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        self.routing.next_hop(self.topo, from, to)
    }

    /// The router `min(hops, dist)` hops along the route (§4.1 step 1).
    #[inline]
    pub fn router_ahead(&self, from: NodeId, to: NodeId, hops: u16) -> NodeId {
        self.routing.router_ahead(self.topo, from, to, hops)
    }

    /// Whether `mid` lies on the route (endpoints included).
    #[inline]
    pub fn on_path(&self, from: NodeId, to: NodeId, mid: NodeId) -> bool {
        self.routing.on_path(self.topo, from, to, mid)
    }

    /// Whether the `incoming -> outgoing` turn is legal.
    #[inline]
    pub fn turn_legal(&self, incoming: Direction, outgoing: Direction) -> bool {
        self.routing.turn_legal(incoming, outgoing)
    }

    /// Minimal hop distance on the substrate.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        self.topo.distance(a, b)
    }
}

impl From<Mesh> for RouteView {
    fn from(m: Mesh) -> Self {
        RouteView::new(m, RoutingKind::Xy)
    }
}

impl From<Substrate> for RouteView {
    fn from(t: Substrate) -> Self {
        RouteView::new(t, RoutingKind::Xy)
    }
}

impl<T: Into<Substrate>> From<(T, RoutingKind)> for RouteView {
    fn from((t, r): (T, RoutingKind)) -> Self {
        RouteView::new(t, r)
    }
}

/// The XY-routing output direction at `from` for a packet headed to `to`,
/// or `None` when `from == to` (the packet ejects locally).
///
/// # Examples
///
/// ```
/// use punchsim_types::{Mesh, NodeId, Direction, routing::xy_direction};
///
/// let mesh = Mesh::new(8, 8);
/// // Packet at R26 headed to R31 travels east first (Figure 4).
/// assert_eq!(xy_direction(mesh, NodeId(26), NodeId(31)), Some(Direction::East));
/// ```
pub fn xy_direction(mesh: Mesh, from: NodeId, to: NodeId) -> Option<Direction> {
    RoutingKind::Xy.direction(mesh.into(), from, to)
}

/// The next router on the XY path from `from` to `to`, or `None` when
/// `from == to`.
pub fn xy_next_hop(mesh: Mesh, from: NodeId, to: NodeId) -> Option<NodeId> {
    RoutingKind::Xy.next_hop(mesh.into(), from, to)
}

/// The router exactly `hops` hops along the XY path from `from` to `to`.
///
/// If the path is shorter than `hops`, returns the destination `to` itself.
/// This is precisely the paper's *targeted router* rule: the wakeup target
/// is the router `min(H, dist)` hops ahead (§4.1 step 1).
pub fn xy_router_ahead(mesh: Mesh, from: NodeId, to: NodeId, hops: u16) -> NodeId {
    RoutingKind::Xy.router_ahead(mesh.into(), from, to, hops)
}

/// Returns `true` if `mid` lies on the XY path from `from` to `to`
/// (endpoints included). Used to drop *implied* punch targets (§4.1 step 4).
pub fn xy_on_path(mesh: Mesh, from: NodeId, to: NodeId, mid: NodeId) -> bool {
    RoutingKind::Xy.on_path(mesh.into(), from, to, mid)
}

/// An iterator over the routers of a route, excluding the source and
/// including the destination.
#[derive(Debug, Clone)]
pub struct RoutePath {
    view: RouteView,
    cur: NodeId,
    dst: NodeId,
}

/// Kept as an alias for the pre-trait name.
pub type XyPath = RoutePath;

impl Iterator for RoutePath {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.view.next_hop(self.cur, self.dst)?;
        self.cur = next;
        Some(next)
    }
}

/// The route from `from` to `to` under `view` as an iterator of
/// intermediate routers and the destination (the source is not yielded).
pub fn route_path(view: impl Into<RouteView>, from: NodeId, to: NodeId) -> RoutePath {
    RoutePath {
        view: view.into(),
        cur: from,
        dst: to,
    }
}

/// The XY route from `from` to `to` as an iterator of intermediate routers
/// and the destination (the source is not yielded).
///
/// # Examples
///
/// ```
/// use punchsim_types::{Mesh, NodeId, routing::xy_path};
///
/// let mesh = Mesh::new(8, 8);
/// let hops: Vec<_> = xy_path(mesh, NodeId(26), NodeId(36)).collect();
/// assert_eq!(hops, vec![NodeId(27), NodeId(28), NodeId(36)]);
/// ```
pub fn xy_path(mesh: Mesh, from: NodeId, to: NodeId) -> RoutePath {
    route_path(mesh, from, to)
}

/// Returns `true` if turning from travel direction `incoming` to `outgoing`
/// is legal under XY routing (Y->X turns are forbidden).
pub fn xy_turn_legal(incoming: Direction, outgoing: Direction) -> bool {
    RoutingKind::Xy.turn_legal(incoming, outgoing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Torus;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn x_before_y() {
        // R26 -> R29 goes straight east; R26 -> R36 goes east then south.
        let m = mesh8();
        let p: Vec<_> = xy_path(m, NodeId(26), NodeId(29)).collect();
        assert_eq!(p, vec![NodeId(27), NodeId(28), NodeId(29)]);
        let p: Vec<_> = xy_path(m, NodeId(26), NodeId(36)).collect();
        assert_eq!(p, vec![NodeId(27), NodeId(28), NodeId(36)]);
    }

    #[test]
    fn path_length_equals_distance() {
        let m = mesh8();
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                assert_eq!(xy_path(m, a, b).count(), m.distance(a, b) as usize);
            }
        }
    }

    #[test]
    fn router_ahead_respects_min_rule() {
        let m = mesh8();
        // Paper §4.1: packet with source R0, destination R7, currently at R3:
        // the targeted router for a 3-hop punch is R6.
        assert_eq!(xy_router_ahead(m, NodeId(3), NodeId(7), 3), NodeId(6));
        // Closer than H hops: the destination itself is the target.
        assert_eq!(xy_router_ahead(m, NodeId(5), NodeId(7), 3), NodeId(7));
        assert_eq!(xy_router_ahead(m, NodeId(7), NodeId(7), 3), NodeId(7));
    }

    #[test]
    fn paper_example_r26_to_r31_targets_r29() {
        // §4.1 step 1: "a packet currently at R26 with destination R31 knows
        // precisely that the targeted router is R29".
        let m = mesh8();
        assert_eq!(xy_router_ahead(m, NodeId(26), NodeId(31), 3), NodeId(29));
    }

    #[test]
    fn on_path_examples() {
        let m = mesh8();
        // R27 and R28 are along the path from R26 to R29 (§4.1 step 2).
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(27)));
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(28)));
        assert!(!xy_on_path(m, NodeId(26), NodeId(29), NodeId(35)));
        // R29 is along the path from R27 to R21 (§4.1 step 4).
        assert!(xy_on_path(m, NodeId(27), NodeId(21), NodeId(29)));
        // Endpoints count.
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(26)));
        assert!(xy_on_path(m, NodeId(26), NodeId(29), NodeId(29)));
    }

    #[test]
    fn on_path_matches_enumeration() {
        let m = Mesh::new(5, 5);
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                let path: Vec<_> = std::iter::once(a).chain(xy_path(m, a, b)).collect();
                for c in m.iter_nodes() {
                    assert_eq!(
                        xy_on_path(m, a, b, c),
                        path.contains(&c),
                        "a={a} b={b} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn turn_legality() {
        use Direction::*;
        // Paper §4.1 step 3: "Y+ to X+ turns are illegal".
        assert!(!xy_turn_legal(South, East));
        assert!(!xy_turn_legal(North, West));
        assert!(xy_turn_legal(East, South));
        assert!(xy_turn_legal(East, North));
        assert!(xy_turn_legal(East, East));
        assert!(!xy_turn_legal(East, West)); // U-turn
    }

    #[test]
    fn yx_transposes_xy() {
        let m = mesh8();
        let v = RouteView::new(m, RoutingKind::Yx);
        // R26 -> R36: YX goes south first (26 -> 34 -> 35 -> 36).
        let p: Vec<_> = route_path(v, NodeId(26), NodeId(36)).collect();
        assert_eq!(p, vec![NodeId(34), NodeId(35), NodeId(36)]);
        // YX forbids X->Y instead of Y->X.
        use Direction::*;
        assert!(!v.turn_legal(East, South));
        assert!(v.turn_legal(South, East));
    }

    /// Every routing kind, on every substrate it admits: the planned
    /// segments form a minimal, turn-legal, prefix-consistent route.
    #[test]
    fn all_kinds_plan_minimal_legal_routes() {
        let topos: Vec<Substrate> = vec![
            Mesh::new(5, 4).into(),
            Mesh::new(4, 5).into(),
            Torus::new(5, 4).into(),
        ];
        for topo in topos {
            for kind in RoutingKind::ALL {
                if kind.validate_on(topo).is_err() {
                    continue;
                }
                for a in topo.iter_nodes() {
                    for b in topo.iter_nodes() {
                        let v = RouteView::new(topo, kind);
                        // Walk the route hop by hop, checking legality.
                        let mut cur = a;
                        let mut hops = 0u16;
                        let mut prev: Option<Direction> = None;
                        while cur != b {
                            let d = v.direction(cur, b).expect("route not done");
                            if let Some(p) = prev {
                                assert!(
                                    v.turn_legal(p, d),
                                    "{kind:?} on {topo}: illegal {p}->{d} at {cur} ({a}->{b})"
                                );
                            }
                            // on_path sees every router the walk visits.
                            assert!(v.on_path(a, b, cur), "{kind:?} {a}->{b} misses {cur}");
                            cur = v.next_hop(cur, b).unwrap();
                            prev = Some(d);
                            hops += 1;
                            assert!(hops <= topo.distance(a, b), "{kind:?} {a}->{b} detours");
                        }
                        assert_eq!(hops, topo.distance(a, b), "{kind:?} {a}->{b} not minimal");
                        assert!(v.on_path(a, b, b));
                    }
                }
            }
        }
    }

    /// The closed-form `router_ahead` equals the hop-by-hop walk it
    /// replaced, for every kind, pair and horizon.
    #[test]
    fn router_ahead_matches_hop_walk() {
        let topos: Vec<Substrate> = vec![Mesh::new(5, 4).into(), Torus::new(4, 4).into()];
        for topo in topos {
            for kind in RoutingKind::ALL {
                if kind.validate_on(topo).is_err() {
                    continue;
                }
                for a in topo.iter_nodes() {
                    for b in topo.iter_nodes() {
                        for h in 0..=5u16 {
                            let mut cur = a;
                            for _ in 0..h {
                                match kind.next_hop(topo, cur, b) {
                                    Some(n) => cur = n,
                                    None => break,
                                }
                            }
                            assert_eq!(
                                kind.router_ahead(topo, a, b, h),
                                cur,
                                "{kind:?} on {topo}: {a}->{b} h={h}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn torus_routes_through_wrap_links() {
        let t: Substrate = Torus::new(8, 8).into();
        let v = RouteView::new(t, RoutingKind::Xy);
        // R0 -> R7 is one westward wrap hop, not seven east.
        assert_eq!(v.direction(NodeId(0), NodeId(7)), Some(Direction::West));
        assert_eq!(v.next_hop(NodeId(0), NodeId(7)), Some(NodeId(7)));
        assert_eq!(v.distance(NodeId(0), NodeId(63)), 2);
        // Targeted-router rule across a wrap: 3 hops ahead of R0 toward
        // R61 (3 west on the row ring).
        assert_eq!(v.router_ahead(NodeId(0), NodeId(61), 3), NodeId(5));
    }

    #[test]
    fn cyclic_combinations_are_rejected() {
        let torus: Substrate = Torus::new(4, 4).into();
        let mesh: Substrate = Mesh::new(4, 4).into();
        for kind in [
            RoutingKind::WestFirst,
            RoutingKind::NorthLast,
            RoutingKind::NegativeFirst,
        ] {
            assert!(matches!(
                kind.validate_on(torus),
                Err(ConfigError::CyclicRouting { .. })
            ));
            assert!(kind.validate_on(mesh).is_ok());
        }
        assert!(RoutingKind::Xy.validate_on(torus).is_ok());
        assert!(RoutingKind::Yx.validate_on(torus).is_ok());
    }

    #[test]
    fn routing_tags_roundtrip() {
        for kind in RoutingKind::ALL {
            assert_eq!(RoutingKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(
            RoutingKind::from_tag("westfirst"),
            Some(RoutingKind::WestFirst)
        );
        assert_eq!(RoutingKind::from_tag("bogus"), None);
        assert_eq!(RoutingKind::default(), RoutingKind::Xy);
    }
}
