//! Typed metrics for punchsim: registry, log-bucketed histograms,
//! per-router counter planes, a tick-phase wall-time profiler, and two
//! exposition formats (Prometheus text and a JSON snapshot merged into
//! the campaign `.timing.json` sidecars).
//!
//! # Zero-overhead contract
//!
//! Like `punchsim-obs` sinks, metrics *observe* the simulation and never
//! steer it. The network-side hooks are `Option`-gated so the disabled
//! path costs one well-predicted branch per tick, and everything a
//! registry exports is either deterministic (counters, histograms of
//! cycle values) or explicitly quarantined to the nondeterministic
//! timing sidecar (wall-time phase attribution). Enabling metrics must
//! leave every `BENCH_*.json` artifact byte-identical — CI pins this via
//! `scripts/metrics_gate.sh`.
//!
//! The crate is tier-1 and dependency-free (workspace crates only).

mod expo;
mod hist;
mod profile;
mod registry;

pub use expo::{validate_exposition, ExpoStats};
pub use hist::{LogHistogram, BUCKETS, SUB_BITS};
pub use profile::{Phase, PhaseProfiler};
pub use registry::{Plane, Registry};
