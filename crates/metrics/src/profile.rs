//! The tick-phase wall-time profiler.
//!
//! Attribution uses boundary timestamps: the profiler keeps one
//! `Instant` and every [`PhaseProfiler::mark`] charges the elapsed time
//! since the previous mark to the named phase, then advances the
//! boundary. One `Instant::now()` per phase transition, no nesting, no
//! unattributed gaps — the sum over all phases equals the wall time
//! from the first mark to the last, which is what lets the CI gate
//! demand that phase timings cover ≥90% of a run's measured wall-time.
//!
//! Everything here is wall-clock and therefore nondeterministic; phase
//! counters are exported only into registries bound for the
//! `.timing.json` sidecar, never into `BENCH_*.json` artifacts.

use std::time::Instant;

use crate::registry::Registry;

/// One slice of a simulation tick (or of the run loop around it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Time outside the network tick proper: the traffic harness, event
    /// heap, injection bookkeeping — everything between two ticks.
    Host,
    /// Struct kernel: link traversal / flit delivery scan.
    DeliverFlits,
    /// Struct kernel: credit return scan.
    DeliverCredits,
    /// Struct kernel: switch allocation over occupied routers.
    Allocate,
    /// Struct kernel: ejection delivery.
    Eject,
    /// Struct kernel: NI injection attempts.
    Inject,
    /// SoA kernel: rebuilding the structure-of-arrays mirror after a
    /// struct-path excursion.
    SoaRebuild,
    /// SoA kernel: phase A — the read-only word sweep (single-shard
    /// inline or sharded across row bands).
    SoaPhaseA,
    /// SoA kernel: the commit pass applying recorded decisions in
    /// router order.
    SoaCommit,
    /// Power-manager tick: gate accounting, punch fabric, sleep/wake
    /// decisions.
    PowerTick,
    /// Watchdog escalation scan + stall check.
    Watchdog,
    /// Quiescence fast-forward (closed-form quiet advance).
    FastForward,
    /// SoA kernel, pooled sharded ticks only: host wall time blocked at
    /// the worker pool's completion barrier after finishing its own
    /// shard (load imbalance across shards, not compute).
    PoolWait,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 13] = [
        Phase::Host,
        Phase::DeliverFlits,
        Phase::DeliverCredits,
        Phase::Allocate,
        Phase::Eject,
        Phase::Inject,
        Phase::SoaRebuild,
        Phase::SoaPhaseA,
        Phase::SoaCommit,
        Phase::PowerTick,
        Phase::Watchdog,
        Phase::FastForward,
        Phase::PoolWait,
    ];

    /// Stable snake_case name used as the `phase` label value.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Host => "host",
            Phase::DeliverFlits => "deliver_flits",
            Phase::DeliverCredits => "deliver_credits",
            Phase::Allocate => "allocate",
            Phase::Eject => "eject",
            Phase::Inject => "inject",
            Phase::SoaRebuild => "soa_rebuild",
            Phase::SoaPhaseA => "soa_phase_a",
            Phase::SoaCommit => "soa_commit",
            Phase::PowerTick => "power_tick",
            Phase::Watchdog => "watchdog",
            Phase::FastForward => "fast_forward",
            Phase::PoolWait => "pool_wait",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

const PHASES: usize = Phase::ALL.len();

/// Accumulated per-phase wall time and mark counts.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    nanos: [u64; PHASES],
    marks: [u64; PHASES],
    last: Option<Instant>,
}

impl PhaseProfiler {
    /// A profiler with no boundary set; the first mark only starts the
    /// clock.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Charges the time since the previous mark to `phase` and moves
    /// the boundary to now.
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        if let Some(last) = self.last {
            let i = phase.index();
            self.nanos[i] += now.duration_since(last).as_nanos() as u64;
            self.marks[i] += 1;
        }
        self.last = Some(now);
    }

    /// Drops the boundary so the next mark starts a fresh interval
    /// (used when leaving profiled code for an unbounded wait).
    pub fn detach(&mut self) {
        self.last = None;
    }

    /// Reattributes `nanos` of already-charged time from `from` to `to`
    /// (saturating at what `from` currently holds). For callers that
    /// measured an inner wait within a marked span — e.g. the shard
    /// pool's completion barrier inside the phase-A interval — and want
    /// it under its own phase without adding boundary timestamps to the
    /// hot path. The all-phase total (and thus the CI coverage ratio) is
    /// conserved exactly.
    pub fn transfer(&mut self, from: Phase, to: Phase, nanos: u64) {
        let moved = nanos.min(self.nanos[from.index()]);
        if moved == 0 {
            return;
        }
        self.nanos[from.index()] -= moved;
        self.nanos[to.index()] += moved;
        self.marks[to.index()] += 1;
    }

    /// Accumulated nanoseconds for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of intervals charged to `phase`.
    pub fn mark_count(&self, phase: Phase) -> u64 {
        self.marks[phase.index()]
    }

    /// Sum over every phase — the wall time between the first and last
    /// mark.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Zeroes all accumulators and drops the boundary.
    pub fn reset(&mut self) {
        *self = PhaseProfiler::default();
    }

    /// Exports per-phase counters into `reg` as
    /// `tick_phase_nanos{phase=...}` / `tick_phase_marks{phase=...}`
    /// (zero phases are skipped to keep the exposition tight).
    pub fn export(&self, reg: &mut Registry) {
        for p in Phase::ALL {
            let n = self.nanos(p);
            if n == 0 && self.mark_count(p) == 0 {
                continue;
            }
            let lbl = [("phase", p.name())];
            reg.inc(&Registry::key_with("tick_phase_nanos", &lbl), n);
            reg.inc(
                &Registry::key_with("tick_phase_marks", &lbl),
                self.mark_count(p),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_partition_elapsed_time() {
        let mut p = PhaseProfiler::new();
        p.mark(Phase::Host); // starts the clock, charges nothing
        assert_eq!(p.total_nanos(), 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.mark(Phase::PowerTick);
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.mark(Phase::Watchdog);
        assert!(p.nanos(Phase::PowerTick) >= 1_000_000);
        assert!(p.nanos(Phase::Watchdog) >= 500_000);
        assert_eq!(p.nanos(Phase::Host), 0);
        assert_eq!(
            p.total_nanos(),
            p.nanos(Phase::PowerTick) + p.nanos(Phase::Watchdog)
        );
        assert_eq!(p.mark_count(Phase::PowerTick), 1);

        p.detach();
        p.mark(Phase::Host);
        assert_eq!(p.nanos(Phase::Host), 0, "detach drops the interval");
    }

    #[test]
    fn export_emits_labeled_counters() {
        let mut p = PhaseProfiler::new();
        p.mark(Phase::Host);
        p.mark(Phase::SoaCommit);
        let mut reg = Registry::new();
        p.export(&mut reg);
        let text = reg.to_prometheus();
        assert!(text.contains("tick_phase_marks{phase=\"soa_commit\"} 1"));
        assert!(!text.contains("phase=\"fast_forward\""));
    }
}
