//! The typed metric registry: monotonic counters, gauges, log-bucketed
//! histograms and per-router counter planes, with deterministic merge
//! and two exporters (Prometheus text, JSON snapshot).

use std::collections::BTreeMap;

use punchsim_obs::json::Json;

use crate::hist::LogHistogram;

/// A per-router counter grid (one `u64` per `(x, y)` cell) — the heatmap
/// shape behind per-router off-cycle, punch, WU and escalation planes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    values: Vec<u64>,
}

impl Plane {
    /// A zeroed `width x height` plane.
    pub fn new(width: usize, height: usize) -> Self {
        Plane {
            width,
            height,
            values: vec![0; width * height],
        }
    }

    /// Grid width (columns / x).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows / y).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell value at `(x, y)` (0 outside the grid).
    pub fn get(&self, x: usize, y: usize) -> u64 {
        if x < self.width && y < self.height {
            self.values[y * self.width + x]
        } else {
            0
        }
    }

    /// Adds `delta` to cell `(x, y)`, growing the grid if needed.
    pub fn add(&mut self, x: usize, y: usize, delta: u64) {
        if x >= self.width || y >= self.height {
            self.grow(x + 1, y + 1);
        }
        self.values[y * self.width + x] += delta;
    }

    /// Copies a row-major `values` slice into the plane (cell-wise add).
    pub fn add_row_major(&mut self, width: usize, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                self.add(i % width, i / width, v);
            }
        }
    }

    /// Cell-wise sum of `other` into `self`, growing to the maximum of
    /// the two extents — coordinate-aligned, so merge order never
    /// matters.
    pub fn merge(&mut self, other: &Plane) {
        for y in 0..other.height {
            for x in 0..other.width {
                let v = other.values[y * other.width + x];
                if v != 0 {
                    self.add(x, y, v);
                }
            }
        }
    }

    /// Sum over every cell.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    fn grow(&mut self, min_w: usize, min_h: usize) {
        let w = self.width.max(min_w);
        let h = self.height.max(min_h);
        if w == self.width && h == self.height {
            return;
        }
        let mut next = vec![0u64; w * h];
        for y in 0..self.height {
            let src = &self.values[y * self.width..(y + 1) * self.width];
            next[y * w..y * w + self.width].copy_from_slice(src);
        }
        self.width = w;
        self.height = h;
        self.values = next;
    }
}

/// The metric registry. Keys are full series names and may embed
/// Prometheus-style labels directly: `tick_phase_nanos{phase="soa_commit"}`.
/// The part before `{` is the metric *family*; all series of one family
/// must share one type. `BTreeMap` storage makes iteration — and
/// therefore merge, exposition and the JSON snapshot — deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
    planes: BTreeMap<String, Plane>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.planes.is_empty()
    }

    /// Formats a series key with labels: `key_with("x", &[("a","1")])`
    /// is `x{a="1"}`.
    pub fn key_with(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut out = String::from(name);
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter back (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` (last write wins; merge keeps the larger
    /// key's value only when `self` has none).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().record(v);
    }

    /// The histogram `name`, creating it empty if absent.
    pub fn hist_mut(&mut self, name: &str) -> &mut LogHistogram {
        self.hists.entry(name.to_string()).or_default()
    }

    /// Reads a histogram back.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// The plane `name`, creating it zeroed at `width x height` if
    /// absent.
    pub fn plane_mut(&mut self, name: &str, width: usize, height: usize) -> &mut Plane {
        self.planes
            .entry(name.to_string())
            .or_insert_with(|| Plane::new(width, height))
    }

    /// Reads a plane back.
    pub fn plane(&self, name: &str) -> Option<&Plane> {
        self.planes.get(name)
    }

    /// Merges `other` into `self`: counters add, histograms merge
    /// elementwise, planes add cell-wise, gauges keep the first value
    /// seen (`self` wins). Every constituent operation is commutative
    /// over the data the simulator records, and iteration order is the
    /// key order, so a fold over any permutation of worker registries
    /// produces identical state — the campaign runner still merges in
    /// spec order for good measure.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.entry(k.clone()).or_insert(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
        for (k, p) in &other.planes {
            self.planes.entry(k.clone()).or_default().merge(p);
        }
    }

    /// Prometheus text exposition: `# TYPE` per family, counters and
    /// gauges as single samples, histograms as cumulative
    /// `_bucket{le=...}` series (non-empty buckets plus `+Inf`) with
    /// `_sum`/`_count`, planes as one counter sample per non-zero cell
    /// labelled `x`/`y`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, key: &str, ty: &str| {
            let family = family_of(key).to_string();
            if family != last_family {
                out.push_str("# TYPE ");
                out.push_str(&family);
                out.push(' ');
                out.push_str(ty);
                out.push('\n');
                last_family = family;
            }
        };
        for (k, v) in &self.counters {
            type_line(&mut out, k, "counter");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            type_line(&mut out, k, "gauge");
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.hists {
            type_line(&mut out, k, "histogram");
            let (base, labels) = split_key(k);
            for (le, cum) in h.cumulative_buckets() {
                out.push_str(&bucket_line(base, labels, &le.to_string(), cum));
            }
            out.push_str(&bucket_line(base, labels, "+Inf", h.count()));
            if labels.is_empty() {
                out.push_str(&format!("{base}_sum {}\n", h.sum()));
                out.push_str(&format!("{base}_count {}\n", h.count()));
            } else {
                out.push_str(&format!("{base}_sum{{{labels}}} {}\n", h.sum()));
                out.push_str(&format!("{base}_count{{{labels}}} {}\n", h.count()));
            }
        }
        for (k, p) in &self.planes {
            type_line(&mut out, k, "counter");
            let (base, labels) = split_key(k);
            for y in 0..p.height() {
                for x in 0..p.width() {
                    let v = p.get(x, y);
                    if v == 0 {
                        continue;
                    }
                    let mut lbl = String::new();
                    if !labels.is_empty() {
                        lbl.push_str(labels);
                        lbl.push(',');
                    }
                    lbl.push_str(&format!("x=\"{x}\",y=\"{y}\""));
                    out.push_str(&format!("{base}{{{lbl}}} {v}\n"));
                }
            }
        }
        out
    }

    /// JSON snapshot of the whole registry — the object merged into the
    /// campaign `.timing.json` sidecar under `"metrics"`. Histograms
    /// carry exact count/sum/min/max, the three headline percentiles and
    /// the non-empty cumulative buckets; planes carry full row-major
    /// cell grids for heatmap rendering.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.push(k, json_u64(*v));
        }
        root.push("counters", counters);
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.push(k, Json::Float(*v));
        }
        root.push("gauges", gauges);
        let mut hists = Json::obj();
        for (k, h) in &self.hists {
            let mut o = Json::obj();
            o.push("count", json_u64(h.count()));
            o.push("sum", json_u128(h.sum()));
            o.push("min", json_u64(h.min()));
            o.push("max", json_u64(h.max()));
            o.push("p50", json_u64(h.percentile(0.50)));
            o.push("p95", json_u64(h.percentile(0.95)));
            o.push("p99", json_u64(h.percentile(0.99)));
            let mut buckets = Json::Arr(Vec::new());
            if let Json::Arr(arr) = &mut buckets {
                for (le, cum) in h.cumulative_buckets() {
                    arr.push(Json::Arr(vec![json_u64(le), json_u64(cum)]));
                }
            }
            o.push("buckets", buckets);
            hists.push(k, o);
        }
        root.push("histograms", hists);
        let mut planes = Json::obj();
        for (k, p) in &self.planes {
            let mut o = Json::obj();
            o.push("width", Json::Int(p.width() as i64));
            o.push("height", Json::Int(p.height() as i64));
            let mut cells = Vec::with_capacity(p.width() * p.height());
            for y in 0..p.height() {
                for x in 0..p.width() {
                    cells.push(json_u64(p.get(x, y)));
                }
            }
            o.push("values", Json::Arr(cells));
            planes.push(k, o);
        }
        root.push("planes", planes);
        root
    }
}

/// The metric family: the series name up to the first `{`.
pub(crate) fn family_of(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Splits `name{a="1"}` into `("name", "a=\"1\"")`; bare names yield an
/// empty label string.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], key[i + 1..].trim_end_matches('}')),
        None => (key, ""),
    }
}

fn bucket_line(base: &str, labels: &str, le: &str, cum: u64) -> String {
    if labels.is_empty() {
        format!("{base}_bucket{{le=\"{le}\"}} {cum}\n")
    } else {
        format!("{base}_bucket{{{labels},le=\"{le}\"}} {cum}\n")
    }
}

fn json_u64(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Float(v as f64),
    }
}

fn json_u128(v: u128) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Float(v as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_grows_and_merges_by_coordinate() {
        let mut a = Plane::new(2, 2);
        a.add(0, 0, 5);
        a.add(3, 1, 7); // forces growth to 4x2
        assert_eq!(a.width(), 4);
        assert_eq!(a.get(0, 0), 5);
        assert_eq!(a.get(3, 1), 7);

        let mut b = Plane::new(2, 4);
        b.add(1, 3, 9);
        a.merge(&b);
        assert_eq!(a.width(), 4);
        assert_eq!(a.height(), 4);
        assert_eq!(a.get(1, 3), 9);
        assert_eq!(a.total(), 21);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |seed: u64| {
            let mut r = Registry::new();
            r.inc("flits_total", seed);
            r.observe("latency_cycles", seed * 10);
            r.observe("latency_cycles", seed * 100);
            r.plane_mut("off_cycles", 2, 2).add(
                (seed % 2) as usize,
                ((seed / 2) % 2) as usize,
                seed,
            );
            r.set_gauge("offered_load", 0.25);
            r
        };
        let parts = [mk(1), mk(2), mk(3), mk(4)];
        let mut fwd = Registry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Registry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.to_prometheus(), rev.to_prometheus());
        assert_eq!(fwd.to_json().render(), rev.to_json().render());
        assert_eq!(fwd.counter("flits_total"), 10);
        assert_eq!(fwd.hist("latency_cycles").unwrap().count(), 8);
        assert_eq!(fwd.plane("off_cycles").unwrap().total(), 10);
    }

    #[test]
    fn exposition_has_types_buckets_and_planes() {
        let mut r = Registry::new();
        r.inc("wu_assertions_total", 3);
        r.observe("latency_cycles", 7);
        r.observe("latency_cycles", 900);
        r.plane_mut("escalations", 2, 1).add(1, 0, 4);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE wu_assertions_total counter"));
        assert!(text.contains("# TYPE latency_cycles histogram"));
        assert!(text.contains("latency_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_cycles_sum 907"));
        assert!(text.contains("latency_cycles_count 2"));
        assert!(text.contains("escalations{x=\"1\",y=\"0\"} 4"));
        crate::validate_exposition(&text).expect("self-parse");
    }

    #[test]
    fn labeled_keys_share_a_family() {
        let mut r = Registry::new();
        r.inc(
            &Registry::key_with("tick_phase_nanos", &[("phase", "host")]),
            5,
        );
        r.inc(
            &Registry::key_with("tick_phase_nanos", &[("phase", "soa_commit")]),
            7,
        );
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE tick_phase_nanos counter").count(), 1);
        assert!(text.contains("tick_phase_nanos{phase=\"host\"} 5"));
        assert!(text.contains("tick_phase_nanos{phase=\"soa_commit\"} 7"));
    }
}
