//! A strict-enough parser for the Prometheus text exposition format,
//! used by `scripts/metrics_gate.sh` (via the CLI) and by the registry's
//! own tests to prove that everything the exporter emits is well-formed:
//! every sample line parses, histogram `_bucket` series are cumulative
//! and monotone in `le`, and every histogram ends with a `+Inf` bucket
//! matching its `_count`.

use std::collections::BTreeMap;

/// Summary of a validated exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpoStats {
    /// Number of sample lines (excluding `#` comments).
    pub samples: usize,
    /// Number of `# TYPE` declarations.
    pub families: usize,
    /// Number of histogram families checked for bucket monotonicity.
    pub histograms: usize,
}

/// Validates Prometheus text exposition. Returns summary statistics or
/// the first violation found (with its line number).
pub fn validate_exposition(text: &str) -> Result<ExpoStats, String> {
    let mut stats = ExpoStats::default();
    // (family+labels-without-le) -> [(le, cumulative)] in emission order.
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();

    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if rest.trim_start().starts_with("TYPE ") {
                stats.families += 1;
            }
            continue;
        }
        let (series, value) = split_sample(line)
            .ok_or_else(|| format!("line {no}: not `name[{{labels}}] value`: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {no}: bad value {value:?}"))?;
        stats.samples += 1;

        let (name, labels) = split_series(series)
            .ok_or_else(|| format!("line {no}: malformed labels in {series:?}"))?;
        if let Some(base) = name.strip_suffix("_bucket") {
            let (le, rest) =
                take_le(&labels).ok_or_else(|| format!("line {no}: _bucket without le label"))?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {no}: bad le {le:?}"))?
            };
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!("line {no}: bucket count {value} not a count"));
            }
            buckets
                .entry(format!("{base}|{rest}"))
                .or_default()
                .push((le, value as u64));
        } else if let Some(base) = name.strip_suffix("_count") {
            let rest = labels.join(",");
            counts.insert(format!("{base}|{rest}"), value as u64);
        }
    }

    for (key, series) in &buckets {
        stats.histograms += 1;
        for w in series.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram {key}: le not increasing"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {key}: cumulative count decreased"));
            }
        }
        let Some(&(last_le, last_cum)) = series.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!("histogram {key}: missing +Inf bucket"));
        }
        if let Some(&c) = counts.get(key) {
            if c != last_cum {
                return Err(format!(
                    "histogram {key}: +Inf bucket {last_cum} != _count {c}"
                ));
            }
        }
    }
    Ok(stats)
}

/// Splits a sample line into `(series, value)` at the last space that is
/// outside any label quotes.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let close = line.rfind('}');
    let split_from = close.map(|i| i + 1).unwrap_or(0);
    let rel = line[split_from..].find(' ')?;
    let at = split_from + rel;
    let (series, value) = (line[..at].trim(), line[at + 1..].trim());
    if series.is_empty() || value.is_empty() || value.contains(' ') {
        return None;
    }
    Some((series, value))
}

/// Splits `name{a="1",b="2"}` into `("name", vec!["a=\"1\"", ...])`.
/// Quoted values may not contain `"` or `,` (the exporter never emits
/// them), which keeps this parser trivial.
fn split_series(series: &str) -> Option<(String, Vec<String>)> {
    let Some(open) = series.find('{') else {
        if series.contains('}') {
            return None;
        }
        return Some((series.to_string(), Vec::new()));
    };
    let name = &series[..open];
    let body = series[open + 1..].strip_suffix('}')?;
    if name.is_empty() {
        return None;
    }
    let mut labels = Vec::new();
    if !body.is_empty() {
        for part in body.split(',') {
            let (k, v) = part.split_once('=')?;
            if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                return None;
            }
            labels.push(part.to_string());
        }
    }
    Some((name.to_string(), labels))
}

/// Removes the `le` label, returning `(le_value, remaining_labels_csv)`.
fn take_le(labels: &[String]) -> Option<(String, String)> {
    let mut le = None;
    let mut rest = Vec::new();
    for l in labels {
        if let Some(v) = l.strip_prefix("le=") {
            le = Some(v.trim_matches('"').to_string());
        } else {
            rest.push(l.clone());
        }
    }
    Some((le?, rest.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_exposition() {
        let text = "\
# TYPE flits_total counter
flits_total 42
# TYPE lat histogram
lat_bucket{le=\"15\"} 3
lat_bucket{le=\"31\"} 5
lat_bucket{le=\"+Inf\"} 5
lat_sum 99
lat_count 5
# TYPE off gauge
off{x=\"0\",y=\"1\"} 0.5
";
        let s = validate_exposition(text).expect("valid");
        assert_eq!(s.samples, 7);
        assert_eq!(s.families, 3);
        assert_eq!(s.histograms, 1);
    }

    #[test]
    fn rejects_violations() {
        assert!(validate_exposition("no_value\n").is_err());
        assert!(validate_exposition("x NaNish\n").is_err());
        assert!(validate_exposition("x_bucket{nope=\"1\"} 2\n").is_err());
        // Decreasing cumulative count.
        let dec = "x_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\nx_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(dec).is_err());
        // Missing +Inf.
        assert!(validate_exposition("x_bucket{le=\"1\"} 5\n").is_err());
        // +Inf disagrees with _count.
        let mism = "x_bucket{le=\"+Inf\"} 5\nx_count 6\n";
        assert!(validate_exposition(mism).is_err());
        // Malformed labels.
        assert!(validate_exposition("x{a=1} 2\n").is_err());
    }

    #[test]
    fn labeled_histograms_group_by_label_set() {
        let text = "\
lat_bucket{run=\"a\",le=\"1\"} 1
lat_bucket{run=\"a\",le=\"+Inf\"} 2
lat_bucket{run=\"b\",le=\"4\"} 7
lat_bucket{run=\"b\",le=\"+Inf\"} 7
lat_count{run=\"a\"} 2
lat_count{run=\"b\"} 7
";
        let s = validate_exposition(text).expect("valid");
        assert_eq!(s.histograms, 2);
    }

    #[test]
    fn rejects_nan_and_misordered_le() {
        let bad_le = "x_bucket{le=\"5\"} 1\nx_bucket{le=\"2\"} 2\nx_bucket{le=\"+Inf\"} 2\n";
        assert!(validate_exposition(bad_le).is_err());
    }
}
