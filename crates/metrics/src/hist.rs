//! Log-bucketed u64 histogram (HdrHistogram-style) with exact
//! min/max/sum/count side-channels, deterministic integer arithmetic
//! only, and elementwise merge.

/// Sub-bucket resolution: each power-of-two major group is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `1 / 2^SUB_BITS` (6.25%).
pub const SUB_BITS: u32 = 4;

const SUB: usize = 1 << SUB_BITS; // 16 sub-buckets per group

/// Total bucket count covering the full `0..=u64::MAX` range: group 0
/// holds the 16 exact values `0..16`; groups `1..=60` each hold 16
/// linear sub-buckets spanning `[16 << (g-1), 32 << (g-1))`.
pub const BUCKETS: usize = SUB * 61; // 976

/// A log-bucketed histogram of `u64` samples.
///
/// Bucket boundaries are fixed powers-of-two edges (independent of the
/// data), so two histograms built from the same multiset of samples are
/// bit-identical regardless of insertion order — the property the
/// deterministic cross-worker registry merge relies on. `min`, `max`,
/// `sum` and `count` are tracked exactly; quantiles are answered from
/// the bucket lower bound, clamped into `[min, max]`, so `p50/p95/p99`
/// are within one sub-bucket (≤6.25% relative) of the true order
/// statistic and `percentile(1.0)` returns the exact maximum.
#[derive(Clone, Default)]
pub struct LogHistogram {
    /// Per-bucket sample counts; empty until the first record so a
    /// default histogram costs nothing.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for value `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        // m = floor(log2 v) >= 4; group g = m - 3 in 1..=60; the top
        // SUB_BITS bits below the leading one select the sub-bucket.
        let m = 63 - v.leading_zeros();
        let g = (m - 3) as usize;
        let sub = ((v >> (m - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        g * SUB + sub
    }
}

/// Smallest value mapping to bucket `idx`.
#[inline]
fn lower_bound(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let g = idx / SUB;
        let s = (idx % SUB) as u64;
        (SUB as u64 + s) << (g - 1)
    }
}

/// Largest value mapping to bucket `idx` (inclusive).
#[inline]
fn upper_bound(idx: usize) -> u64 {
    if idx + 1 == BUCKETS {
        u64::MAX
    } else {
        lower_bound(idx + 1) - 1
    }
}

impl LogHistogram {
    /// An empty histogram. No bucket storage is allocated until the
    /// first [`record`](Self::record).
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the lower bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped
    /// into `[min, max]`. `q >= 1` returns the exact maximum; an empty
    /// histogram returns 0.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (elementwise; exact side-channels
    /// combine exactly). Merging is commutative and associative, so any
    /// merge order over the same histogram set yields identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            *self = other.clone();
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive_upper_bound, cumulative_count)`
    /// pairs in increasing order — the exact shape of a Prometheus
    /// histogram's `_bucket{le=...}` series (the `+Inf` bucket is the
    /// caller's to add with `count()`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((upper_bound(i), cum));
        }
        out
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16usize {
            assert_eq!(index_of(v as u64), v);
            assert_eq!(lower_bound(v), v as u64);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn power_of_two_edges_split_buckets() {
        // 2^k - 1 and 2^k land in different buckets at every group edge.
        for k in 4..64u32 {
            let lo = (1u64 << k) - 1;
            let hi = 1u64 << k;
            assert_ne!(index_of(lo), index_of(hi), "edge 2^{k}");
            assert_eq!(lower_bound(index_of(hi)), hi, "2^{k} starts a bucket");
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower/upper bounds map back to that bucket and
        // tile the u64 range without gaps.
        for idx in 0..BUCKETS {
            let lo = lower_bound(idx);
            let hi = upper_bound(idx);
            assert!(lo <= hi);
            assert_eq!(index_of(lo), idx);
            assert_eq!(index_of(hi), idx);
            if idx + 1 < BUCKETS {
                assert_eq!(lower_bound(idx + 1), hi + 1);
            }
        }
        assert_eq!(upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn extremes_zero_and_max() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(index_of(0), 0);
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX as u128);
    }

    #[test]
    fn percentiles_within_one_subbucket() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.percentile(q);
            assert!(got <= exact, "p{q} overshot: {got} > {exact}");
            let err = (exact - got) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB as f64, "p{q} err {err}");
        }
        assert_eq!(h.percentile(1.0), 10_000);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_matches_direct_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [0u64, 3, 17, 255, 256, 1 << 20, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 16, 1023, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.cumulative_buckets(), all.cumulative_buckets());

        // Merging into an empty histogram clones; merging an empty one
        // is a no-op.
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty.cumulative_buckets(), all.cumulative_buckets());
        all.merge(&LogHistogram::new());
        assert_eq!(empty.count(), all.count());
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 2, 40, 40, 40, 9_000, 1 << 33] {
            h.record(v);
        }
        let bs = h.cumulative_buckets();
        assert!(bs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(bs.last().unwrap().1, h.count());
    }
}
