//! Synthetic traffic patterns (§6.4 of the paper and the usual suspects).

use punchsim_types::{Coord, NodeId, SimRng, Substrate};

/// A synthetic destination-selection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every node equally likely (including self).
    UniformRandom,
    /// `(x, y) -> (y, x)` — the paper's most adversarial load (Figure 12c).
    Transpose,
    /// Bit-complement of the node index (corner-to-corner pressure).
    BitComplement,
    /// Bit-reversal of the node index.
    BitReverse,
    /// One-bit rotate (perfect shuffle) of the node index.
    Shuffle,
    /// Half-way around each dimension (`tornado`).
    Tornado,
    /// Nearest neighbour: one hop east (wraps to the row start).
    Neighbor,
    /// All traffic to a fixed hotspot node.
    Hotspot(NodeId),
}

impl TrafficPattern {
    /// The three patterns evaluated in Figure 12, in figure order.
    pub const FIGURE12: [TrafficPattern; 3] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
    ];

    /// Every parameter-free pattern (everything but `Hotspot`), the set a
    /// synthetic campaign sweeps.
    pub const SYNTHETIC: [TrafficPattern; 7] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Shuffle,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
    ];

    /// Stable machine-readable tag: CLI flag values, campaign spec ids and
    /// `BENCH_*.json` artifacts all use these. Never rename a tag — cached
    /// campaign results and checked-in baselines key on them.
    pub fn tag(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::BitReverse => "bitrev",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Hotspot(_) => "hotspot",
        }
    }

    /// Parses a [`TrafficPattern::tag`] back into a pattern (`Hotspot` is
    /// not parseable: its node parameter is not part of the tag).
    pub fn from_tag(tag: &str) -> Option<TrafficPattern> {
        TrafficPattern::SYNTHETIC
            .into_iter()
            .find(|p| p.tag() == tag)
    }

    /// Short label for figure output.
    pub fn label(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform-random",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::BitReverse => "bit-reverse",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Hotspot(_) => "hotspot",
        }
    }

    /// Picks the destination for a packet injected at `src`.
    ///
    /// Deterministic patterns ignore `rng`. Index-bit patterns assume the
    /// node count is a power of two (true for the evaluated 4x4/8x8/16x16
    /// meshes); for other sizes they fall back to a modulo mapping.
    pub fn destination(self, topo: impl Into<Substrate>, src: NodeId, rng: &mut SimRng) -> NodeId {
        let mesh: Substrate = topo.into();
        let n = mesh.nodes() as u16;
        let bits = n.trailing_zeros();
        match self {
            TrafficPattern::UniformRandom => NodeId(rng.random_range(0..n)),
            TrafficPattern::Transpose => {
                let c = mesh.coord(src);
                // Transpose assumes a square mesh; clamp otherwise.
                let x = c.y.min(mesh.width() - 1);
                let y = c.x.min(mesh.height() - 1);
                mesh.node(Coord::new(x, y))
            }
            TrafficPattern::BitComplement => NodeId((!src.0) & (n - 1)),
            TrafficPattern::BitReverse => {
                let r = src.0.reverse_bits() >> (16 - bits);
                NodeId(r % n)
            }
            TrafficPattern::Shuffle => {
                let s = ((src.0 << 1) | (src.0 >> (bits.max(1) - 1) as u16 & 1)) & (n - 1);
                NodeId(s % n)
            }
            TrafficPattern::Tornado => {
                let c = mesh.coord(src);
                let x = (c.x + mesh.width() / 2) % mesh.width();
                let y = (c.y + mesh.height() / 2) % mesh.height();
                mesh.node(Coord::new(x, y))
            }
            TrafficPattern::Neighbor => {
                let c = mesh.coord(src);
                let x = (c.x + 1) % mesh.width();
                mesh.node(Coord::new(x, c.y))
            }
            TrafficPattern::Hotspot(h) => h,
        }
    }
}

impl std::fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::Mesh;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = Mesh::new(8, 8);
        // R27 = (3,3) maps to itself; R26 = (2,3) maps to (3,2) = R19.
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Transpose.destination(m, NodeId(27), &mut r),
            NodeId(27)
        );
        assert_eq!(
            TrafficPattern::Transpose.destination(m, NodeId(26), &mut r),
            NodeId(19)
        );
    }

    #[test]
    fn bit_complement_is_involution() {
        let m = Mesh::new(8, 8);
        let mut r = rng();
        for src in m.iter_nodes() {
            let d = TrafficPattern::BitComplement.destination(m, src, &mut r);
            let back = TrafficPattern::BitComplement.destination(m, d, &mut r);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn all_destinations_in_mesh() {
        let m = Mesh::new(8, 8);
        let mut r = rng();
        for p in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
            TrafficPattern::Hotspot(NodeId(5)),
        ] {
            for src in m.iter_nodes() {
                let d = p.destination(m, src, &mut r);
                assert!(m.contains(d), "{p} from {src} gave {d}");
            }
        }
    }

    #[test]
    fn tornado_travels_half_way() {
        let m = Mesh::new(8, 8);
        let mut r = rng();
        let d = TrafficPattern::Tornado.destination(m, NodeId(0), &mut r);
        assert_eq!(m.coord(d), Coord::new(4, 4));
    }

    #[test]
    fn uniform_covers_whole_mesh() {
        let m = Mesh::new(4, 4);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = TrafficPattern::UniformRandom.destination(m, NodeId(0), &mut r);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tags_roundtrip() {
        for p in TrafficPattern::SYNTHETIC {
            assert_eq!(TrafficPattern::from_tag(p.tag()), Some(p));
        }
        assert_eq!(TrafficPattern::from_tag("hotspot"), None);
        assert_eq!(TrafficPattern::from_tag("nope"), None);
    }
}
