//! Open-loop synthetic-traffic simulation harness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use punchsim_core::build_power_manager;
use punchsim_noc::{Message, MsgClass, Network, NetworkReport, TickMode};
use punchsim_types::{Cycle, NodeId, SimConfig, SimError, SimRng, VnetId};

use crate::pattern::TrafficPattern;

/// Host-event kinds, ordered so a node's slack-2 forewarning sorts before
/// its injection within the same cycle — the order the historic per-node
/// scan processed them in.
const EV_NOTIFY: u8 = 0;
const EV_INJECT: u8 = 1;

/// Mix and process parameters for synthetic injection.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionConfig {
    /// Offered load in flits/node/cycle (the Figure 12 x-axis).
    pub rate_flits: f64,
    /// Fraction of packets that are multi-flit data packets; the rest are
    /// single-flit control packets (roughly the MESI mix).
    pub data_fraction: f64,
    /// Fraction of packets whose generation is known `slack2` cycles ahead
    /// (the paper's valid-bit: 1 for L2/directory-originated messages,
    /// 0 for L1-originated ones).
    pub slack2_fraction: f64,
    /// How many cycles ahead slack-2 forewarning fires.
    pub slack2_cycles: Cycle,
    /// Burstiness in `0.0..1.0`: 0 is a memoryless (Bernoulli) process;
    /// larger values draw inter-arrival gaps from a hyperexponential mix
    /// (short bursts separated by long quiet periods) with the same mean —
    /// closer to the clustered coherence traffic of real applications.
    pub burstiness: f64,
}

impl InjectionConfig {
    /// A default mix at the given flit rate.
    pub fn at_rate(rate_flits: f64) -> Self {
        InjectionConfig {
            rate_flits,
            data_fraction: 0.4,
            slack2_fraction: 0.8,
            slack2_cycles: 6,
            burstiness: 0.0,
        }
    }

    /// Mean flits per packet for this mix.
    pub fn avg_packet_flits(&self, ctrl: u8, data: u8) -> f64 {
        self.data_fraction * data as f64 + (1.0 - self.data_fraction) * ctrl as f64
    }
}

/// A complete synthetic-traffic experiment: a [`Network`] under the scheme
/// from [`SimConfig`], driven by Bernoulli arrivals of a [`TrafficPattern`].
///
/// # Examples
///
/// ```
/// use punchsim_traffic::{SyntheticSim, TrafficPattern};
/// use punchsim_types::{Mesh, SchemeKind, SimConfig};
///
/// let mut cfg = SimConfig::with_scheme(SchemeKind::ConvOptPg);
/// cfg.noc.topology = Mesh::new(4, 4).into();
/// let mut sim = SyntheticSim::new(cfg, TrafficPattern::UniformRandom, 0.05);
/// sim.run(3_000).unwrap();
/// assert!(sim.report().stats.packets_delivered > 0);
/// ```
#[derive(Debug)]
pub struct SyntheticSim {
    net: Network,
    pattern: TrafficPattern,
    inj: InjectionConfig,
    rng: SimRng,
    /// Per-node next scheduled arrival and whether slack-2 fires for it.
    next_arrival: Vec<(Cycle, bool)>,
    /// Min-heap of upcoming host events `(cycle, node, kind)`, so a busy
    /// tick touches only the nodes with something due instead of scanning
    /// all of `next_arrival` — on a 32x32 mesh that scan is 1024 checks
    /// per cycle of pure harness overhead. Entries are validated against
    /// `next_arrival` (the source of truth) when popped; a mismatch means
    /// the node rescheduled (or [`SyntheticSim::drain`] cancelled it) and
    /// the entry is stale, so it is dropped (lazy deletion).
    events: BinaryHeap<Reverse<(Cycle, u16, u8)>>,
    /// Per-packet Bernoulli probability per node per cycle.
    p_packet: f64,
    delivered_sink: u64,
}

impl SyntheticSim {
    /// Builds the experiment at `rate_flits` flits/node/cycle with the
    /// default mix.
    pub fn new(cfg: SimConfig, pattern: TrafficPattern, rate_flits: f64) -> Self {
        Self::with_injection(cfg, pattern, InjectionConfig::at_rate(rate_flits))
    }

    /// Builds the experiment with a custom injection mix.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the rate is negative.
    pub fn with_injection(cfg: SimConfig, pattern: TrafficPattern, inj: InjectionConfig) -> Self {
        assert!(inj.rate_flits >= 0.0, "negative injection rate");
        let pm = build_power_manager(&cfg).expect("invalid SimConfig");
        let mut net = Network::new(&cfg.noc, pm).expect("config validated above");
        if cfg.trace.enabled {
            net.set_sink(Box::new(punchsim_noc::obs::RingSink::new(
                cfg.trace.ring_capacity,
            )));
        }
        let avg = inj.avg_packet_flits(cfg.noc.ctrl_packet_flits, cfg.noc.data_packet_flits);
        // Concentrated topologies inject for `concentration` terminals per
        // router; plain meshes and tori have concentration 1, leaving the
        // probability bit-identical to the unconcentrated formula.
        let conc = cfg.noc.topology.concentration() as f64;
        let p_packet = (inj.rate_flits * conc / avg).min(1.0);
        let rng = SimRng::seed_from_u64(cfg.seed);
        let n = cfg.noc.topology.nodes();
        let mut sim = SyntheticSim {
            net,
            pattern,
            inj,
            next_arrival: vec![(0, false); n],
            events: BinaryHeap::with_capacity(2 * n),
            p_packet,
            rng,
            delivered_sink: 0,
        };
        for i in 0..n {
            let (at, slack2) = sim.draw_arrival(0);
            sim.next_arrival[i] = (at, slack2);
            sim.push_events(i, at, slack2, None);
        }
        // Re-seed deterministically after initialization order.
        sim.rng = SimRng::seed_from_u64(cfg.seed.wrapping_add(1));
        sim
    }

    /// The network under test (immutable inspection).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The network under test, mutably — e.g. to attach or detach an
    /// observability sink mid-experiment.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Draws the next arrival at or after `from`: geometric inter-arrival
    /// gaps, optionally mixed into a bursty hyperexponential with the same
    /// mean (see [`InjectionConfig::burstiness`]).
    fn draw_arrival(&mut self, from: Cycle) -> (Cycle, bool) {
        if self.p_packet <= 0.0 {
            return (Cycle::MAX, false);
        }
        let mean_gap = if self.p_packet >= 1.0 {
            1.0
        } else {
            1.0 / self.p_packet
        };
        // Hyperexponential mix: with probability b the gap is short
        // (mean/FACTOR, an in-burst arrival), otherwise long, scaled to
        // preserve the overall mean.
        const FACTOR: f64 = 8.0;
        let b = self.inj.burstiness.clamp(0.0, 0.99);
        let mean = if self.rng.random_f64() < b {
            mean_gap / FACTOR
        } else {
            mean_gap * (1.0 - b / FACTOR) / (1.0 - b)
        };
        let u: f64 = self.rng.random_f64();
        let gap = (-(1.0 - u).ln() * mean).ceil().max(1.0) as Cycle;
        let slack2 = self.rng.random_f64() < self.inj.slack2_fraction;
        (from + gap, slack2)
    }

    /// Enqueues the heap events for node `idx`'s freshly drawn arrival.
    ///
    /// The slack-2 forewarning fires on the cycle where
    /// `now + slack2_cycles == at`. The historic scan evaluated that
    /// condition from the cycle *after* the draw onwards (the draw
    /// happens after its own slot in the scan), so a mid-run draw only
    /// schedules a forewarning strictly after `drawn_at`; construction
    /// draws (`drawn_at == None`) are visible from cycle 0.
    fn push_events(&mut self, idx: usize, at: Cycle, slack2: bool, drawn_at: Option<Cycle>) {
        if at == Cycle::MAX {
            return;
        }
        self.events.push(Reverse((at, idx as u16, EV_INJECT)));
        if !slack2 {
            return;
        }
        let Some(fire) = at.checked_sub(self.inj.slack2_cycles) else {
            return;
        };
        if drawn_at.is_none_or(|now| fire > now) {
            self.events.push(Reverse((fire, idx as u16, EV_NOTIFY)));
        }
    }

    /// Advances one cycle: fire slack-2 forewarnings, inject due packets,
    /// tick the network, and drain deliveries.
    ///
    /// # Errors
    ///
    /// Propagates watchdog errors ([`SimError::Stall`],
    /// [`SimError::Invariant`]) from [`Network::tick`].
    pub fn tick(&mut self) -> Result<(), SimError> {
        let now = self.net.cycle();
        let topo = self.net.topology();
        // Pop every event due by `now` in (cycle, node, kind) order — the
        // exact order the historic all-nodes scan fired them in: ascending
        // node index, a node's forewarning before its injection. Stale
        // entries (the node rescheduled or was cancelled since the push)
        // fail validation against `next_arrival` and are dropped.
        while let Some(&Reverse((c, node16, kind))) = self.events.peek() {
            if c > now {
                break;
            }
            self.events.pop();
            let idx = node16 as usize;
            let (at, slack2) = self.next_arrival[idx];
            let node = NodeId(node16);
            if kind == EV_NOTIFY {
                if c == now && slack2 && now + self.inj.slack2_cycles == at {
                    // Slack 2: the node knows a packet is coming before the
                    // destination is known (PowerPunch-PG exploits this).
                    self.net.notify_future_injection(node)?;
                }
                continue;
            }
            if c == now && at == now {
                let dst = self.pattern.destination(topo, node, &mut self.rng);
                let class = if self.rng.random_f64() < self.inj.data_fraction {
                    MsgClass::Data
                } else {
                    MsgClass::Control
                };
                let vnet = VnetId(self.rng.random_range(0..3u8));
                self.net
                    .send(Message {
                        src: node,
                        dst,
                        vnet,
                        class,
                        payload: 0,
                        gen_cycle: now,
                    })
                    .expect("pattern destinations are always in-mesh");
                let (at, slack2) = self.draw_arrival(now);
                self.next_arrival[idx] = (at, slack2);
                self.push_events(idx, at, slack2, Some(now));
            }
        }
        self.net.tick()?;
        // Drain deliveries — but only scan the nodes when something was
        // actually delivered; on large meshes the common busy cycle
        // delivers nothing and this is the difference between O(1) and
        // O(nodes) of pure harness overhead per tick.
        if self.net.delivered_pending() > 0 {
            for idx in 0..self.next_arrival.len() {
                self.delivered_sink += self.net.take_delivered(NodeId(idx as u16)).len() as u64;
            }
        }
        Ok(())
    }

    /// Cycles until the host itself next has work to do: the earliest
    /// scheduled arrival or slack-2 forewarning across all nodes. `None`
    /// when skipping is not allowed (naive tick mode, or traffic still in
    /// flight) or the next host action is due this very cycle.
    ///
    /// Skipping the per-node scan is exact: between host events no
    /// arrival fires, no forewarning fires, and no RNG draw happens (the
    /// stream only advances when an arrival is consumed), so the skipped
    /// iterations are pure no-ops over `next_arrival`.
    fn host_skip_gap(&self) -> Option<u64> {
        if self.net.tick_mode() != TickMode::Fast || self.net.in_flight() != 0 {
            return None;
        }
        let now = self.net.cycle();
        let mut next = Cycle::MAX;
        for &(at, slack2) in &self.next_arrival {
            if at == Cycle::MAX {
                continue;
            }
            let mut c = at;
            if slack2 {
                // The forewarning fires exactly when `now + slack2 == at`;
                // a fire cycle already in the past never fires at all.
                let fire = at.saturating_sub(self.inj.slack2_cycles);
                if fire >= now {
                    c = c.min(fire);
                }
            }
            next = next.min(c);
        }
        if next == Cycle::MAX {
            // No arrival will ever fire again: any span is skippable.
            return Some(u64::MAX);
        }
        next.checked_sub(now).filter(|&gap| gap > 0)
    }

    /// Runs `cycles` cycles. In [`TickMode::Fast`] the harness skips its
    /// per-node arrival scan across host-idle gaps (handing the whole gap
    /// to [`Network::run`], which may fast-forward internally); observable
    /// behavior is identical to per-cycle ticking.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`SyntheticSim::tick`].
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let mut left = cycles;
        while left > 0 {
            if let Some(gap) = self.host_skip_gap() {
                let span = gap.min(left);
                self.net.run(span)?;
                left -= span;
                continue;
            }
            self.tick()?;
            left -= 1;
        }
        Ok(())
    }

    /// Stops injecting and ticks until every in-flight packet has drained,
    /// up to `max_cycles`. Returns the number of cycles it took.
    ///
    /// # Errors
    ///
    /// Propagates watchdog errors; returns the [`SimError::Stall`] report
    /// directly if the network cannot drain (which is exactly the condition
    /// the watchdog exists to catch).
    pub fn drain(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        // Cancel scheduled arrivals so only in-flight traffic remains.
        for a in &mut self.next_arrival {
            *a = (Cycle::MAX, false);
        }
        let mut used = 0;
        while self.net.in_flight() > 0 && used < max_cycles {
            self.tick()?;
            used += 1;
        }
        Ok(used)
    }

    /// Runs a warm-up window, resets statistics, then a measured window.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`SyntheticSim::tick`].
    pub fn run_experiment(&mut self, warmup: u64, measure: u64) -> Result<NetworkReport, SimError> {
        self.run(warmup)?;
        self.net.reset_stats();
        self.run(measure)?;
        Ok(self.report())
    }

    /// Statistics of the measured window.
    pub fn report(&self) -> NetworkReport {
        self.net.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punchsim_types::{Mesh, SchemeKind};

    fn cfg(scheme: SchemeKind, mesh: Mesh) -> SimConfig {
        let mut c = SimConfig::with_scheme(scheme);
        c.noc.topology = mesh.into();
        c
    }

    #[test]
    fn no_pg_delivers_with_sane_latency() {
        let mut sim = SyntheticSim::new(
            cfg(SchemeKind::NoPg, Mesh::new(8, 8)),
            TrafficPattern::UniformRandom,
            0.05,
        );
        let r = sim.run_experiment(2_000, 8_000).unwrap();
        assert!(r.stats.packets_delivered > 1_000);
        // Zero-load-ish latency in an 8x8 at 0.05 flits/node/cycle:
        // NI 3 + ~5.3 hops x 4 + ejection, plus mild queueing.
        let lat = r.stats.latency.mean();
        assert!((15.0..45.0).contains(&lat), "latency {lat}");
        assert_eq!(r.stats.pg_encounters.mean(), 0.0);
    }

    #[test]
    fn conv_pg_blocks_and_saves_static() {
        let mut no = SyntheticSim::new(
            cfg(SchemeKind::NoPg, Mesh::new(8, 8)),
            TrafficPattern::UniformRandom,
            0.02,
        );
        let rn = no.run_experiment(2_000, 8_000).unwrap();
        let mut conv = SyntheticSim::new(
            cfg(SchemeKind::ConvOptPg, Mesh::new(8, 8)),
            TrafficPattern::UniformRandom,
            0.02,
        );
        let rc = conv.run_experiment(2_000, 8_000).unwrap();
        assert!(
            rc.off_fraction() > 0.3,
            "off fraction {}",
            rc.off_fraction()
        );
        assert!(
            rc.stats.latency.mean() > rn.stats.latency.mean() * 1.2,
            "ConvOpt {} vs No-PG {}",
            rc.stats.latency.mean(),
            rn.stats.latency.mean()
        );
        assert!(rc.stats.pg_encounters.mean() > 1.0);
        assert!(rc.stats.wakeup_wait.mean() > 1.0);
    }

    #[test]
    fn power_punch_hides_most_blocking() {
        let mesh = Mesh::new(8, 8);
        let run = |scheme| {
            let mut s = SyntheticSim::new(cfg(scheme, mesh), TrafficPattern::UniformRandom, 0.02);
            s.run_experiment(2_000, 8_000).unwrap()
        };
        let no = run(SchemeKind::NoPg);
        let conv = run(SchemeKind::ConvOptPg);
        let pps = run(SchemeKind::PowerPunchSignal);
        let ppf = run(SchemeKind::PowerPunchFull);
        // Latency ordering of Figure 7.
        let (l_no, l_conv, l_pps, l_ppf) = (
            no.stats.latency.mean(),
            conv.stats.latency.mean(),
            pps.stats.latency.mean(),
            ppf.stats.latency.mean(),
        );
        assert!(l_conv > l_pps, "conv {l_conv} vs pp-signal {l_pps}");
        assert!(
            l_pps >= l_ppf - 1e-9,
            "pp-signal {l_pps} vs pp-full {l_ppf}"
        );
        assert!(l_ppf < l_no * 1.25, "pp-full {l_ppf} vs no-pg {l_no}");
        // Blocked-router counts (Figure 9 ordering).
        assert!(conv.stats.pg_encounters.mean() > pps.stats.pg_encounters.mean());
        // Wait cycles (Figure 10 ordering).
        assert!(conv.stats.wakeup_wait.mean() > ppf.stats.wakeup_wait.mean());
        // Punch still saves plenty of static energy.
        assert!(ppf.off_fraction() > 0.3, "off {}", ppf.off_fraction());
        assert!(ppf.pg.punch_hops > 0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let mut s = SyntheticSim::new(
                cfg(SchemeKind::PowerPunchFull, Mesh::new(4, 4)),
                TrafficPattern::Transpose,
                0.05,
            );
            let r = s.run_experiment(500, 2_000).unwrap();
            (
                r.stats.packets_delivered,
                r.stats.latency.mean(),
                r.pg.punch_hops,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn burstiness_preserves_mean_rate() {
        let run = |b: f64| {
            let mut inj = InjectionConfig::at_rate(0.02);
            inj.burstiness = b;
            let mut s = SyntheticSim::with_injection(
                cfg(SchemeKind::NoPg, Mesh::new(4, 4)),
                TrafficPattern::UniformRandom,
                inj,
            );
            let r = s.run_experiment(2_000, 20_000).unwrap();
            r.offered_load
        };
        let smooth = run(0.0);
        let bursty = run(0.6);
        assert!((bursty / smooth - 1.0).abs() < 0.15, "{smooth} vs {bursty}");
    }

    #[test]
    fn bursty_traffic_raises_latency_variance() {
        let run = |b: f64| {
            let mut inj = InjectionConfig::at_rate(0.05);
            inj.burstiness = b;
            let mut s = SyntheticSim::with_injection(
                cfg(SchemeKind::NoPg, Mesh::new(4, 4)),
                TrafficPattern::UniformRandom,
                inj,
            );
            let r = s.run_experiment(2_000, 15_000).unwrap();
            r.stats.latency.variance()
        };
        assert!(run(0.7) > run(0.0), "bursts must add queueing variance");
    }

    #[test]
    fn trace_config_attaches_flight_recorder() {
        let mut c = cfg(SchemeKind::PowerPunchFull, Mesh::new(4, 4));
        c.trace = punchsim_types::TraceConfig::enabled();
        let mut s = SyntheticSim::new(c, TrafficPattern::UniformRandom, 0.05);
        s.run(2_000).unwrap();
        let sink = s.network().sink().expect("trace.enabled attaches a sink");
        assert!(sink.recorded() > 0);
        let kinds: Vec<&str> = sink.snapshot().iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"inject"), "{kinds:?}");
        assert!(kinds.contains(&"punch-emit"), "{kinds:?}");
        // Detachable through network_mut for export.
        assert!(s.network_mut().take_sink().is_some());
        assert!(s.network().sink().is_none());
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut s = SyntheticSim::new(
            cfg(SchemeKind::NoPg, Mesh::new(4, 4)),
            TrafficPattern::UniformRandom,
            0.0,
        );
        s.run(1_000).unwrap();
        assert_eq!(s.report().stats.packets_injected, 0);
    }

    #[test]
    fn host_skip_matches_naive_ticking_exactly() {
        // Low rate on PowerPunchFull: long idle gaps (so both the host
        // skip and the network fast-forward actually engage) interleaved
        // with slack-2 forewarnings and real traffic.
        let run = |mode: TickMode| {
            let mut s = SyntheticSim::new(
                cfg(SchemeKind::PowerPunchFull, Mesh::new(4, 4)),
                TrafficPattern::UniformRandom,
                0.002,
            );
            s.network_mut().set_tick_mode(mode);
            let r = s.run_experiment(3_000, 12_000).unwrap();
            (
                s.network().cycle(),
                r.stats.packets_injected,
                r.stats.packets_delivered,
                r.stats.latency.mean().to_bits(),
                r.stats.wakeup_wait.mean().to_bits(),
                r.pg.clone(),
                s.delivered_sink,
            )
        };
        assert_eq!(run(TickMode::Fast), run(TickMode::Naive));
    }

    #[test]
    fn zero_rate_fast_mode_skips_to_the_end() {
        let mut s = SyntheticSim::new(
            cfg(SchemeKind::ConvOptPg, Mesh::new(8, 8)),
            TrafficPattern::UniformRandom,
            0.0,
        );
        s.network_mut().set_tick_mode(TickMode::Fast);
        s.run(5_000_000).unwrap();
        let r = s.report();
        assert_eq!(s.network().cycle(), 5_000_000);
        assert_eq!(r.stats.packets_injected, 0);
        // Every router slept once past the idle timeout and stayed off.
        assert!(r.off_fraction() > 0.99, "off {}", r.off_fraction());
    }
}
