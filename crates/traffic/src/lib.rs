//! Synthetic traffic generation for `punchsim`.
//!
//! Provides the traffic patterns of §6.4 of the Power Punch paper (uniform
//! random, transpose, bit-complement, plus the usual extras) and an
//! open-loop Bernoulli injection harness, [`SyntheticSim`], that drives a
//! network under any power-gating scheme across the full load range.
//!
//! # Examples
//!
//! ```
//! use punchsim_traffic::{SyntheticSim, TrafficPattern};
//! use punchsim_types::{Mesh, SchemeKind, SimConfig};
//!
//! let mut cfg = SimConfig::with_scheme(SchemeKind::PowerPunchFull);
//! cfg.noc.topology = Mesh::new(4, 4).into();
//! let mut sim = SyntheticSim::new(cfg, TrafficPattern::Transpose, 0.03);
//! let report = sim.run_experiment(1_000, 4_000).unwrap();
//! assert!(report.stats.packets_delivered > 0);
//! ```

pub mod pattern;
pub mod sim;

pub use pattern::TrafficPattern;
pub use sim::{InjectionConfig, SyntheticSim};
