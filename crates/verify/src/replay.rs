//! Counterexample replay: lowers a checker trace back into a live
//! simulation with an event sink attached, so the exact violating run can
//! be exported through the standard JSONL / Chrome-trace pipelines and
//! inspected in Perfetto.

use punchsim_noc::obs::{chrome_trace, to_jsonl, Stamped, VecSink};
use punchsim_types::{FaultChoice, SimError};

use crate::checker::Counterexample;
use crate::scenario::{build_network, VerifyConfig};

/// The replayed event stream of one counterexample.
#[derive(Debug)]
pub struct Replay {
    /// Every event recorded from injection through the violating cycle.
    pub events: Vec<Stamped>,
    /// The error the final tick produced, when the trace ends in one.
    pub error: Option<SimError>,
}

impl Replay {
    /// The events as JSON-lines, one event per line.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }

    /// The events as a Chrome trace (Perfetto-loadable) JSON document.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.events)
    }
}

/// Rebuilds `cfg`'s scenario with a recording sink and replays `ce`'s
/// choices cycle by cycle, capturing the violating error if the trace ends
/// in one.
///
/// # Errors
///
/// Returns scenario-construction errors verbatim. Replay `tick` errors are
/// the expected outcome and are captured in [`Replay::error`], not
/// returned.
pub fn replay(cfg: &VerifyConfig, ce: &Counterexample) -> Result<Replay, SimError> {
    let mut net = build_network(cfg, Some(Box::new(VecSink::new())))?;
    let mut error = None;
    for &choice in &ce.choices {
        if !matches!(choice, FaultChoice::None) {
            net.arm_fault_choice(choice);
        }
        if let Err(e) = net.tick() {
            error = Some(e);
            break;
        }
    }
    let events = net.take_sink().map(|s| s.snapshot()).unwrap_or_default();
    Ok(Replay { events, error })
}
